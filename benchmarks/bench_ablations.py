"""Benches: ablations of Falcon's design choices (DESIGN.md §5).

These are not paper figures; they probe the knobs the paper fixes
(K = 1.02, B = 10, BO's 20-observation window, GP-Hedge, 3–5 s sample
intervals) and check each setting's claimed rationale holds in the
model.
"""

from __future__ import annotations


from repro.experiments import ablations
from repro.units import Mbps


def test_ablation_k(benchmark, once):
    """K trades convergence headroom against stability (paper §3.1)."""
    points = once(benchmark, ablations.sweep_k, ks=(1.005, 1.02, 1.10), seed=0, duration=420.0)
    print()
    print(ablations.render_k(points))
    by_k = {p.K: p for p in points}

    # K=1.10: concave region ends at 2/ln(1.10) ~ 21 — the search parks
    # far below the optimum of 48.
    assert by_k[1.10].single_concurrency < 30
    # K=1.02 (the paper's choice) gets much closer to the optimum...
    assert by_k[1.02].single_concurrency > by_k[1.10].single_concurrency + 8
    # ...while keeping competing pairs fair.
    assert by_k[1.02].pair_jain >= 0.9
    # K=1.005 expects only 0.5% gain per worker: the pair over-provisions
    # relative to K=1.02.
    assert by_k[1.005].pair_total_concurrency >= by_k[1.02].pair_total_concurrency


def test_ablation_b(benchmark, once):
    """B=10 keeps loss ~1% at near-full utilisation (paper §3.1)."""
    points = once(benchmark, ablations.sweep_b, bs=(0.0, 10.0, 80.0), seed=0, duration=300.0)
    print()
    print(ablations.render_b(points))
    by_b = {p.B: p for p in points}

    # Without a loss term the agent tolerates more loss than with B=10.
    assert by_b[0.0].steady_loss >= by_b[10.0].steady_loss
    # The paper's B=10: loss stays ~1%, utilisation >90%.
    assert by_b[10.0].steady_loss <= 0.025
    assert by_b[10.0].steady_throughput_bps >= 85 * Mbps
    # A draconian B sacrifices concurrency (and with it some margin).
    assert by_b[80.0].steady_concurrency <= by_b[0.0].steady_concurrency


def test_ablation_bo_window(benchmark, once):
    """The 20-observation window adapts to shifts; full history lags."""
    points = once(benchmark, ablations.bo_window, windows=(20, 200), seed=0)
    print()
    for p in points:
        print(f"window={p.window}: before={p.before_bps/1e9:.1f}G after={p.after_bps/1e9:.1f}G "
              f"recovery={p.recovery:.2f}")
    windowed = next(p for p in points if p.window == 20)
    unbounded = next(p for p in points if p.window == 200)
    # Both survive, but the windowed surrogate re-converges at least as
    # well as the history-anchored one after the bottleneck halves —
    # and delivers most of the *new* ceiling (write capacity halved:
    # 28 -> 14 Gbps achievable).
    assert windowed.after_bps >= 0.9 * unbounded.after_bps
    assert windowed.after_bps >= 0.85 * 14e9


def test_ablation_acquisitions(benchmark, once):
    """GP-Hedge is competitive with the best single acquisition."""
    points = once(benchmark, ablations.acquisition_portfolio, seed=0, duration=360.0)
    print()
    for p in points:
        print(f"{p.name}: tput={p.steady_throughput_bps/1e9:.2f}G explore_std={p.exploration_std:.1f}")
    by_name = {p.name: p for p in points}
    best_single = max(
        by_name[n].steady_throughput_bps for n in ("ei-only", "pi-only", "ucb-only")
    )
    assert by_name["gp-hedge"].steady_throughput_bps >= 0.9 * best_single


def test_ablation_sample_interval(benchmark, once):
    """3-5 s sample transfers balance accuracy against search time."""
    points = once(
        benchmark, ablations.sample_interval, intervals=(1.0, 5.0, 10.0), seed=0, duration=400.0
    )
    print()
    for p in points:
        print(f"interval={p.interval}s: t85={p.time_to_85pct:.0f}s "
              f"steady={p.steady_throughput_bps/1e6:.0f} Mbps")
    by_iv = {p.interval: p for p in points}
    # Very long intervals slow convergence proportionally.
    assert by_iv[10.0].time_to_85pct >= by_iv[5.0].time_to_85pct
    # The paper's 5 s choice reaches a steady state as good as any.
    best = max(p.steady_throughput_bps for p in points)
    assert by_iv[5.0].steady_throughput_bps >= 0.85 * best
