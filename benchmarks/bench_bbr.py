"""Bench: BBR extension (§6 future work)."""

from __future__ import annotations

from repro.experiments import bbr_extension


def test_bbr_extension(benchmark, once):
    result = once(benchmark, bbr_extension.run, seed=0, duration=420.0)
    print()
    print(result.render())

    # Falcon is congestion-control-agnostic for a single transfer: the
    # black-box search lands in the same place over either transport
    # (differences are sampling noise in the flat utility region).
    ratio_single = result.single_bbr_bps / result.single_cubic_bps
    assert 0.75 <= ratio_single <= 1.30

    # Under competition the transport asymmetry shows (BBR weight 1.6),
    # but bounded: the utility's regret prevents a concurrency arms
    # race, it just can't equalise a transport-level advantage.
    assert 1.05 <= result.bbr_share_ratio <= 1.70
    assert result.mixed_cubic_concurrency <= 40
    assert result.mixed_bbr_concurrency <= 40
