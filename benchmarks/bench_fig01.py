"""Bench: Fig. 1 — concurrency's impact and the moving optimum."""

from __future__ import annotations

from repro.experiments import fig01_concurrency
from repro.units import Gbps


def test_fig01(benchmark, once):
    result = once(benchmark, fig01_concurrency.run, measure_time=15.0)
    print()
    print(result.render())

    # (a) Paper: concurrency=1 yields <8 Gbps (HPCLab) / <2 Gbps (XSEDE);
    # concurrent transfers raise throughput 3-15x.
    hpclab = result.curves["HPCLab"]
    xsede = result.curves["XSEDE"]
    assert hpclab[0].throughput_bps < 8 * Gbps
    assert xsede[0].throughput_bps < 2 * Gbps
    assert result.speedup("HPCLab") >= 3.0
    assert result.speedup("XSEDE") >= 3.0

    # Throughput must flatten or dip past the optimum, not keep rising.
    best_hpclab = max(p.throughput_bps for p in hpclab)
    assert hpclab[-1].throughput_bps <= best_hpclab

    # (b) Paper: the optimal concurrency is NOT one value for all
    # (dataset, network) pairs.
    assert len(set(result.optima.values())) >= 2
