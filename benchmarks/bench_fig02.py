"""Bench: Fig. 2 — state-of-the-art underperformance and unfairness."""

from __future__ import annotations

from repro.experiments import fig02_state_of_art
from repro.units import Gbps


def test_fig02(benchmark, once):
    result = once(benchmark, fig02_state_of_art.run, settle=200.0)
    print()
    print(result.render())

    # (a) Paper: Globus < 6 Gbps on the 40G path; HARP ~50% of achievable.
    assert result.globus_bps < 6.5 * Gbps
    assert 0.35 * result.achievable_bps <= result.harp_bps <= 0.75 * result.achievable_bps
    assert result.harp_bps > result.globus_bps

    # (b) Paper: the late-coming HARP gets ~2x the incumbent's share
    # by picking a setting that favours itself.
    assert result.harp_second_cc > result.harp_first_cc
    assert result.late_comer_ratio >= 1.5
