"""Bench: Fig. 4 — packet loss vs concurrency on the Emulab bottleneck."""

from __future__ import annotations

from repro.experiments import fig04_overhead
from repro.units import Mbps


def test_fig04(benchmark, once):
    result = once(benchmark, fig04_overhead.run, measure_time=20.0)
    print()
    print(result.render())

    # Paper: 10 concurrent transfers saturate the 100 Mbps link...
    assert result.throughput_at(10) >= 95 * Mbps
    # ...below 10 the loss stays under 2%...
    for n in (1, 4, 8):
        assert result.loss_at(n) < 0.02
    # ...and pushing to 32 buys no throughput but ~10% loss.
    assert result.throughput_at(32) <= result.throughput_at(10) * 1.02
    assert 0.05 <= result.loss_at(32) <= 0.13
    assert result.loss_at(32) >= 3 * result.loss_at(10)

    # Loss grows monotonically past saturation.
    losses = [result.loss_at(n) for n in (10, 12, 16, 20, 24, 28, 32)]
    assert losses == sorted(losses)
