"""Bench: Fig. 6 — linear vs nonlinear concurrency regret."""

from __future__ import annotations

from repro.experiments import fig06_utility_forms


def test_fig06(benchmark, once):
    result = once(benchmark, fig06_utility_forms.run, seed=1, duration=600.0)
    print()
    print(result.render())

    # (a) Paper: estimated peaks at ~48 (C=0.01), ~25 (C=0.02), 48 (K=1.02).
    assert abs(result.peak_linear_c001 - 48) <= 3
    assert abs(result.peak_linear_c002 - 25) <= 3
    assert abs(result.peak_nonlinear - 48) <= 3

    # (b) Paper: empirically, linear C=0.02 converges near 26 — well
    # short of the optimum — while the nonlinear form gets close to 48.
    assert result.empirical_linear_c002 <= 30
    assert result.empirical_nonlinear >= 35
    assert result.empirical_nonlinear > result.empirical_linear_c002 + 8

    # (c) Paper: with two competing agents, linear C=0.01 over-provisions
    # (36-38 workers each) while the nonlinear pair splits near 48 total.
    assert result.competing_linear_c001_total >= 1.15 * 48
    assert result.competing_nonlinear_total <= result.competing_linear_c001_total
