"""Bench: Fig. 7 — HC vs GD vs BO convergence speed (optimum = 48)."""

from __future__ import annotations

from repro.experiments import fig07_convergence
from repro.units import Mbps


def test_fig07(benchmark, once):
    result = once(benchmark, fig07_convergence.run, seed=0, duration=500.0)
    print()
    print(result.render())
    print(f"HC/GD slowdown: {result.slowdown('hc', 'gd'):.1f}x (paper ~7x)")

    hc, gd, bo = result.runs["hc"], result.runs["gd"], result.runs["bo"]

    # Paper: HC needs >250 s; GD and BO converge in tens of seconds.
    assert hc.time_to_85pct > 180.0
    assert gd.time_to_85pct < 120.0
    assert bo.time_to_85pct < 120.0
    assert result.slowdown("hc", "gd") >= 2.5
    assert result.slowdown("hc", "bo") >= 2.5

    # All three end up delivering most of the 1 Gbps link.
    for run in result.runs.values():
        assert run.steady_throughput_bps >= 600 * Mbps
        assert run.steady_concurrency >= 30
