"""Bench: Fig. 8 — Hill Climbing pairs share slowly and unfairly."""

from __future__ import annotations

from repro.experiments import fig08_hc_competition


def test_fig08(benchmark, once):
    result = once(benchmark, fig08_hc_competition.run, seed=0, duration=700.0)
    print()
    print(result.render())

    # Paper: right after the second transfer joins, the HC pair is far
    # from the fair split (the joiner is still crawling up from 1)
    # while a GD pair balances within the same window.
    assert result.hc_early_jain < 0.92
    assert result.gd_early_jain > result.hc_early_jain + 0.05

    # Given enough time even HC reaches near-equal shares (the utility
    # is symmetric) — slowness, not the equilibrium, is its failure.
    assert result.hc_late_jain > 0.9
