"""Bench: Fig. 9 — Falcon-GD on all four Table 1 testbeds."""

from __future__ import annotations

from repro.experiments import fig09_gd_networks


def test_fig09(benchmark, once):
    result = once(benchmark, fig09_gd_networks.run, seed=0, duration=300.0)
    print()
    print(result.render())

    # Paper's reported steady throughputs: ~full Emulab link, >25 Gbps
    # HPCLab, ~9.2 Gbps Campus Cluster, ~5.4 Gbps XSEDE.  Shape claim:
    # >=85% of the achievable rate everywhere, concurrency within 3 of
    # the analytic optimum, convergence within ~60 s.
    for run in result.runs.values():
        assert run.utilization >= 0.82, run.network
        assert abs(run.steady_concurrency - run.optimal_concurrency) <= 3, run.network
        assert run.time_to_85pct <= 90.0, run.network
