"""Bench: Fig. 10 — Falcon-BO on all four Table 1 testbeds."""

from __future__ import annotations

from repro.experiments import fig10_bo_networks


def test_fig10(benchmark, once):
    result = once(benchmark, fig10_bo_networks.run, seed=0, duration=300.0)
    print()
    print(result.render())

    # Paper: BO performs comparably to GD everywhere; after the 3-sample
    # random bootstrap it converges in a handful of intervals (faster
    # than GD's probe pairs), while its windowed GP keeps exploring.
    for run in result.runs.values():
        assert run.utilization >= 0.75, run.network
        assert run.time_to_85pct <= 90.0, run.network
        # BO's steady concurrency stays in the optimum's neighbourhood
        # despite exploration excursions.
        assert abs(run.steady_concurrency - run.optimal_concurrency) <= 6, run.network
