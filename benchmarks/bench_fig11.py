"""Bench: Fig. 11 — competing Falcon-GD agents (HPCLab join/leave)."""

from __future__ import annotations

from repro.experiments import fig11_gd_competition
from repro.units import Gbps


def test_fig11(benchmark, once):
    result = once(benchmark, fig11_gd_competition.run, seed=0, phase=150.0)
    print()
    print(result.render())

    one = result.phase("one")
    two = result.phase("two")
    three = result.phase("three")
    reclaim = result.phase("reclaim")

    # Paper: a lone transfer reaches >25 Gbps on HPCLab.
    assert one.aggregate_bps >= 24 * Gbps
    # Two transfers: 12-13 Gbps each, near-perfect fairness.
    assert two.jain >= 0.95
    assert all(10 * Gbps <= s <= 15 * Gbps for s in two.shares_bps)
    # Three transfers: 6-9 Gbps each, fairness holds, utilisation high.
    assert three.jain >= 0.90
    assert all(4.5 * Gbps <= s <= 10.5 * Gbps for s in three.shares_bps)
    assert three.aggregate_bps >= 0.65 * result.achievable_bps
    # Departure: survivors reclaim the freed capacity.
    assert reclaim.aggregate_bps >= 0.95 * two.aggregate_bps * 0.9
    assert reclaim.jain >= 0.90
