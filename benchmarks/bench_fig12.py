"""Bench: Fig. 12 — competing Falcon-BO agents (HPCLab join/leave)."""

from __future__ import annotations

from repro.experiments import fig12_bo_competition
from repro.units import Gbps


def test_fig12(benchmark, once):
    result = once(benchmark, fig12_bo_competition.run, seed=0, phase=150.0)
    print()
    print(result.render())

    one = result.phase("one")
    two = result.phase("two")
    three = result.phase("three")
    reclaim = result.phase("reclaim")

    # Paper: BO agents fluctuate more than GD while competing (they
    # don't settle on one concurrency) but their *average* shares are
    # nearly identical thanks to the strictly concave utility.
    assert one.aggregate_bps >= 23 * Gbps
    assert two.jain >= 0.92
    assert three.jain >= 0.88
    assert three.aggregate_bps >= 0.55 * result.achievable_bps
    assert reclaim.jain >= 0.88
