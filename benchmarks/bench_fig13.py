"""Bench: Fig. 13 — concurrency traces of competing Falcon-GD senders."""

from __future__ import annotations

from repro.experiments import fig13_concurrency_traces


def test_fig13(benchmark, once):
    result = once(benchmark, fig13_concurrency_traces.run, seed=0, phase=180.0)
    print()
    print(result.render())

    one = result.phase("one")
    two = result.phase("two")
    three = result.phase("three")
    reclaim = result.phase("reclaim")
    saturation = result.saturation_concurrency  # ~48-50

    # Paper: alone, the sender converges toward ~48.
    assert one.total_concurrency >= 0.6 * saturation
    # When the second joins, the first *reduces* its concurrency
    # (20-33 range in the paper) instead of holding 48.
    assert two.mean_concurrency[0] < one.mean_concurrency[0]
    assert two.mean_concurrency[0] <= 36
    # Total concurrency stays near just-enough, not 2x48.
    assert two.total_concurrency <= 1.5 * saturation
    # Three agents: each well below half the saturation point, loss low.
    assert three.total_concurrency <= 1.6 * saturation
    assert three.mean_loss < 0.03
    # Departure: survivors raise concurrency again.
    assert reclaim.total_concurrency >= 0.75 * saturation
