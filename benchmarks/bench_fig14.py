"""Bench: Fig. 14 — Falcon vs Globus vs HARP on three networks."""

from __future__ import annotations

from repro.experiments import fig14_comparison


def test_fig14(benchmark, once):
    result = once(benchmark, fig14_comparison.run, seed=0, duration=240.0)
    print()
    print(result.render())

    # Paper: Globus ~9 Gbps vs Falcon >22 Gbps in HPCLab; Globus
    # underperforms significantly everywhere (2-6x).
    for network in result.networks:
        assert result.advantage(network, over="globus") >= 1.8, network
    assert result.throughput("falcon", "HPCLab") >= 22e9
    assert result.throughput("globus", "HPCLab") <= 12e9

    # Paper: HARP 25-35% below Falcon in HPCLab; comparable on the
    # 10G Campus Cluster (its training class).
    assert result.advantage("HPCLab", over="harp") >= 1.2
    campus_gap = result.advantage("Campus Cluster", over="harp")
    assert 0.85 <= campus_gap <= 1.2

    # Falcon is never worse than ~10% of the best solution anywhere.
    for network in result.networks:
        best = max(result.throughput(s, network) for s in ("falcon", "harp", "globus"))
        assert result.throughput("falcon", network) >= 0.88 * best, network
