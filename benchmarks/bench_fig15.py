"""Bench: Fig. 15 — multi-parameter optimization per dataset profile."""

from __future__ import annotations

from repro.experiments import fig15_multiparam


def test_fig15(benchmark, once):
    result = once(benchmark, fig15_multiparam.run, seed=0, duration=400.0)
    print()
    print(result.render())

    small = result.runs["small"]
    large = result.runs["large"]
    mixed = result.runs["mixed"]

    # Paper: up to ~30% gain on small and mixed datasets (pipelining
    # hides per-file control stalls)...
    assert small.mp_gain >= 1.10
    assert mixed.mp_gain >= 1.10
    # ...and ~18% LOSS on large files (no pipelining upside, slower
    # 6-probe search, non-concave utility).
    assert large.mp_gain <= 1.0

    # Mechanism checks: MP found deep pipelining for small files and
    # kept parallelism lean (per-process I/O binds before stream caps).
    assert small.mp_params[2] >= 8
    assert large.mp_params[1] <= 2
