"""Bench: Fig. 16 — friendliness toward non-Falcon transfers."""

from __future__ import annotations

from repro.experiments import fig16_friendliness


def test_fig16(benchmark, once):
    result = once(benchmark, fig16_friendliness.run, seed=0)
    print()
    print(result.render())

    # Falcon variants leave the incumbents a substantial share; the
    # regret-free greedy tuner starves them.  (Paper's GD dented
    # Globus+HARP 15-20%; our incumbents hold more capacity to begin
    # with, so the measured dents are larger — the ordering is the
    # reproduced shape.  See EXPERIMENTS.md for the BO deviation.)
    for run in (result.gd, result.bo):
        assert run.baseline_after_bps >= 0.30 * run.baseline_before_bps
        assert run.tuner_bps > 5e9  # it does claim the spare capacity
    assert result.greedy.degradation >= result.gd.degradation + 0.10
    assert result.greedy.degradation >= 0.60

    # BO's bootstrap probes the full domain — its peak evaluated
    # concurrency far exceeds GD's incremental search.
    assert result.bo.tuner_peak_concurrency >= result.gd.tuner_peak_concurrency

    # The Falcon tuners stop near the utility optimum (~20), the greedy
    # one keeps pushing concurrency.
    assert result.greedy.tuner_concurrency >= result.gd.tuner_concurrency + 10
