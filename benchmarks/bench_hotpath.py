"""Fluid-step hot-path benchmark: 8 competing sessions x 64 workers.

Times the simulator core on the heaviest recurring shape in the
reproduction — many sessions with large worker pools arbitrated across
many shared resources every fluid step (the scenario behind Figs 8,
11, 12 and the competing-agent sweeps).  Eight site pairs cross one
saturated 10 Gbps backbone, so every step exercises demand caps,
iterative waterfilling over ~49 resources, per-link loss, and the
session advance for 512 workers.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full run
    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_hotpath.py --baseline # print only

Writes ``BENCH_hotpath.json`` with the measured numbers next to the
pre-PR baseline (captured on the same scenario before the topology
cache / vectorized advance landed) so the speedup is visible in-repo.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path as FsPath

from repro.hosts.dtn import DataTransferNode
from repro.hosts.nic import Nic
from repro.network.link import Link
from repro.network.path import Path
from repro.network.queue import DropTailLossModel, NoLossModel
from repro.sim.engine import SimulationEngine
from repro.storage.parallel_fs import ParallelFileSystem
from repro.testbeds.base import Testbed
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.transfer.session import TransferParams
from repro.units import GB, Gbps, milliseconds

#: Scenario shape (the acceptance scenario from ISSUE 1).
N_SESSIONS = 8
CONCURRENCY = 64

#: Pre-PR numbers for the default scenario (30 s sim, dt=0.1), measured
#: on the seed code (commit 865df62) on the reference container.  The
#: "speedup" field in BENCH_hotpath.json is current vs. this.
BASELINE_PRE_PR = {
    "wall_seconds": 2.330,
    "steps_per_second": 129.0,
}


def build_scenario(n_sessions: int = N_SESSIONS, concurrency: int = CONCURRENCY, dt: float = 0.1):
    """``n_sessions`` site pairs crossing one shared 10 Gbps backbone."""
    engine = SimulationEngine(dt=dt)
    network = FluidTransferNetwork(engine)
    backbone = Link(
        "backbone", 10 * Gbps, delay=milliseconds(10), loss_model=DropTailLossModel()
    )
    lossless = NoLossModel()
    sessions = []
    for i in range(n_sessions):
        storage = ParallelFileSystem(name=f"pfs-{i}")
        src = DataTransferNode(f"src-{i}", storage=storage, nic=Nic(40 * Gbps, name=f"nic-s{i}"))
        dst = DataTransferNode(
            f"dst-{i}",
            storage=ParallelFileSystem(name=f"pfs-{i}d"),
            nic=Nic(40 * Gbps, name=f"nic-d{i}"),
        )
        path = Path(
            links=(
                Link(f"edge-src-{i}", 40 * Gbps, delay=milliseconds(1), loss_model=lossless),
                backbone,
                Link(f"edge-dst-{i}", 40 * Gbps, delay=milliseconds(1), loss_model=lossless),
            ),
            name=f"path-{i}",
        )
        tb = Testbed(
            name=f"site-{i}",
            source=src,
            destination=dst,
            path=path,
            sample_interval=5.0,
            bottleneck="Network",
        )
        session = tb.new_session(
            uniform_dataset(256, 1 * GB),
            params=TransferParams(concurrency=concurrency, parallelism=2),
            repeat=True,
        )
        network.add_session(session)
        sessions.append(session)
    return engine, network, sessions


def run_bench(sim_time: float, dt: float = 0.1) -> dict:
    """Measure wall time and fluid steps/sec for the scenario."""
    engine, network, sessions = build_scenario(dt=dt)
    engine.enable_profiling()

    steps = [0]
    inner = engine.fluid_step

    def counting_step(now: float, step_dt: float) -> None:
        steps[0] += 1
        inner(now, step_dt)

    engine.fluid_step = counting_step

    t0 = time.perf_counter()
    engine.run_for(sim_time)
    wall = time.perf_counter() - t0

    result = {
        "sim_time": sim_time,
        "dt": dt,
        "fluid_steps": steps[0],
        "wall_seconds": round(wall, 4),
        "steps_per_second": round(steps[0] / wall, 1),
        "total_good_bytes": float(sum(s.total_good_bytes for s in sessions)),
    }
    profile = getattr(engine, "profile", None)
    if profile is not None and getattr(profile, "totals", None):
        result["subsystem_seconds"] = {
            name: round(seconds, 4) for name, seconds in sorted(profile.totals.items())
        }
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="short CI run, no JSON output")
    parser.add_argument("--sim-time", type=float, default=30.0, help="simulated seconds")
    parser.add_argument("--dt", type=float, default=0.1, help="fluid step size")
    parser.add_argument(
        "--baseline", action="store_true", help="print measurements without writing JSON"
    )
    parser.add_argument("--out", default="BENCH_hotpath.json", help="output path")
    args = parser.parse_args(argv)

    sim_time = 3.0 if args.smoke else args.sim_time
    result = run_bench(sim_time, dt=args.dt)
    print(
        f"{N_SESSIONS} sessions x {CONCURRENCY} workers, {sim_time:g}s sim: "
        f"{result['wall_seconds']:.3f}s wall, {result['steps_per_second']:.0f} steps/s"
    )
    for name, seconds in result.get("subsystem_seconds", {}).items():
        print(f"  {name:<14} {seconds:.4f}s")

    if args.smoke or args.baseline:
        return 0

    baseline = BASELINE_PRE_PR
    payload = {
        "scenario": {
            "sessions": N_SESSIONS,
            "concurrency": CONCURRENCY,
            "workers": N_SESSIONS * CONCURRENCY,
            "sim_time": sim_time,
            "dt": args.dt,
        },
        "baseline_pre_pr": baseline,
        "current": result,
    }
    if baseline.get("steps_per_second"):
        payload["speedup"] = round(
            result["steps_per_second"] / baseline["steps_per_second"], 2
        )
    FsPath(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
