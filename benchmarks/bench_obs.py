"""Tracing-overhead benchmark on the 8x64 hot-path scenario.

Measures what the observability layer costs, in two legs:

* **off** — no tracer established; every instrumentation hook is a
  single ``current_tracer() is None`` check.  The acceptance budget is
  <3% overhead vs. the pre-instrumentation baseline captured on the
  same scenario (``BASELINE_PRE_OBS`` below).
* **on** — full tracing to an in-memory exporter, reported for scale
  (this leg has no budget; you opted into recording every fluid step).

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_obs.py            # full run
    PYTHONPATH=src python benchmarks/bench_obs.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_obs.py --baseline # print only

Writes ``BENCH_obs.json`` with both legs next to the baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path as FsPath

sys.path.insert(0, str(FsPath(__file__).resolve().parent))

from bench_hotpath import CONCURRENCY, N_SESSIONS, build_scenario  # noqa: E402

from repro.obs import InMemoryExporter, use_tracing  # noqa: E402

#: Wall seconds for the default scenario (30 s sim, dt=0.1, best of 6,
#: no profiling) measured on the reference container at commit 39e5db1,
#: immediately before the observability hooks landed.  The off-leg
#: overhead in BENCH_obs.json is current vs. this.
BASELINE_PRE_OBS = {"wall_seconds": 0.1077}

#: Acceptance budget for the tracing-off leg, as a fraction.
OFF_BUDGET = 0.03


def run_leg(sim_time: float, dt: float = 0.1, traced: bool = False, repeats: int = 6) -> dict:
    """Best-of-``repeats`` wall time for one scenario run.

    ``sim_time``/``dt`` are simulated seconds; the returned
    ``wall_seconds`` is real time.  With ``traced`` the run records to
    an in-memory exporter and reports the event count.
    """
    best = float("inf")
    events = 0
    for _ in range(repeats):
        engine, network, sessions = build_scenario(dt=dt)
        if traced:
            sink = InMemoryExporter()
            with use_tracing(sink):
                t0 = time.perf_counter()
                engine.run_for(sim_time)
                wall = time.perf_counter() - t0
            events = len(sink.events)
        else:
            t0 = time.perf_counter()
            engine.run_for(sim_time)
            wall = time.perf_counter() - t0
        best = min(best, wall)
    leg = {"sim_time": sim_time, "dt": dt, "repeats": repeats, "wall_seconds": round(best, 4)}
    if traced:
        leg["events"] = events
    return leg


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="short CI run, no JSON output")
    parser.add_argument("--sim-time", type=float, default=30.0, help="simulated seconds")
    parser.add_argument("--repeats", type=int, default=6, help="take the best of N runs")
    parser.add_argument(
        "--baseline", action="store_true", help="print measurements without writing JSON"
    )
    parser.add_argument("--out", default="BENCH_obs.json", help="output path")
    args = parser.parse_args(argv)

    sim_time = 3.0 if args.smoke else args.sim_time
    repeats = 2 if args.smoke else args.repeats
    off = run_leg(sim_time, traced=False, repeats=repeats)
    on = run_leg(sim_time, traced=True, repeats=repeats)
    print(
        f"{N_SESSIONS} sessions x {CONCURRENCY} workers, {sim_time:g}s sim: "
        f"off {off['wall_seconds']:.4f}s, on {on['wall_seconds']:.4f}s "
        f"({on['events']} events)"
    )

    if args.smoke:
        # CI only checks the two legs run; the overhead budget is judged
        # on the full scenario where the baseline was captured.
        return 0

    overhead = off["wall_seconds"] / BASELINE_PRE_OBS["wall_seconds"] - 1.0
    print(
        f"tracing-off overhead vs pre-obs baseline "
        f"({BASELINE_PRE_OBS['wall_seconds']:.4f}s): {overhead:+.1%} "
        f"(budget {OFF_BUDGET:.0%})"
    )
    if args.baseline:
        return 0

    payload = {
        "scenario": {
            "sessions": N_SESSIONS,
            "concurrency": CONCURRENCY,
            "workers": N_SESSIONS * CONCURRENCY,
            "sim_time": sim_time,
            "dt": 0.1,
        },
        "baseline_pre_obs": BASELINE_PRE_OBS,
        "tracing_off": off,
        "tracing_on": on,
        "off_overhead": round(overhead, 4),
        "off_budget": OFF_BUDGET,
        "within_budget": overhead < OFF_BUDGET,
    }
    FsPath(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0 if overhead < OFF_BUDGET else 1


if __name__ == "__main__":
    raise SystemExit(main())
