"""Bench: system-overhead accounting (the §2 motivation, quantified)."""

from __future__ import annotations

from repro.experiments import overhead


def test_overhead(benchmark, once):
    result = once(benchmark, overhead.run, seed=0, duration=400.0)
    print()
    print(result.render())

    falcon = result.runs["falcon-gd"]
    greedy = result.runs["greedy"]
    fixed = result.runs["fixed-32"]

    # Falcon trades a sliver of goodput for a large resource saving.
    assert falcon.goodput_bytes >= 0.80 * greedy.goodput_bytes
    assert falcon.bytes_per_process_second >= 1.15 * greedy.bytes_per_process_second
    assert falcon.bytes_per_process_second >= 2.5 * fixed.bytes_per_process_second

    # Loss overhead orders exactly as the utility design predicts.
    assert falcon.loss_overhead < greedy.loss_overhead < fixed.loss_overhead
    assert falcon.loss_overhead < 0.01
    # The Fig. 4 anchor: hammering 32 workers wastes ~10% of the link.
    assert fixed.loss_overhead > 0.06
