"""Bench: related-work tuner comparison (§5, beyond the paper's figures)."""

from __future__ import annotations

from repro.experiments import related_work


def test_related_work(benchmark, once):
    result = once(benchmark, related_work.run, seed=0, duration=500.0)
    print()
    print(result.render())

    gd = result.runs["falcon-gd"]
    bo = result.runs["falcon-bo"]
    hc = result.runs["pcp (HC)"]
    gss = result.runs["gridftp-apt (GSS)"]
    sa = result.runs["probdata (SA)"]

    # §5: PCP's hill climbing "leads to suboptimal performance" — here,
    # slow convergence and no overhead restraint.
    assert hc.time_to_85pct > 3 * gd.time_to_85pct

    # GSS converges in O(log) samples — faster than HC — but with a
    # throughput-only objective it parks over-provisioned and lossy.
    assert gss.time_to_85pct < hc.time_to_85pct / 3
    assert gss.steady_concurrency > gd.steady_concurrency + 5
    assert gss.steady_loss > 5 * gd.steady_loss

    # ProbData's decaying gains leave it short of the optimum within
    # the horizon ("takes several hours to converge").
    assert sa.steady_throughput_bps < 0.95 * gss.steady_throughput_bps

    # Falcon holds just-enough concurrency at near-residual loss while
    # delivering within ~20% of the throughput-greedy tuners.
    for falcon in (gd, bo):
        assert falcon.steady_loss < 0.005
        assert falcon.steady_throughput_bps > 0.7 * gss.steady_throughput_bps
