"""Bench: robustness to ON/OFF background traffic (beyond the paper)."""

from __future__ import annotations

from repro.experiments import robustness


def test_robustness(benchmark, once):
    result = once(benchmark, robustness.run, seed=0, cycle=120.0, cycles=3)
    print()
    print(result.render())

    gd = result.runs["falcon-gd"]
    bo = result.runs["falcon-bo"]
    static = result.runs["static-20"]

    # Falcon-GD actually adapts: fewer workers while the background is
    # ON, more once it leaves, and reclaimed throughput.
    assert gd.on_concurrency < gd.off_concurrency - 2
    assert gd.reclaim_ratio >= 1.3
    assert bo.reclaim_ratio >= 1.1

    # The static setting never moves...
    assert abs(static.on_concurrency - static.off_concurrency) < 0.5
    # ...and pays for hammering the congested link with extra loss.
    assert gd.on_loss < static.on_loss
    # Falcon's OFF-phase throughput approaches the static optimum's.
    assert gd.off_throughput_bps >= 0.75 * static.off_throughput_bps
