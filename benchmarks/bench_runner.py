"""Evaluation-harness benchmark: serial vs fan-out vs cache replay.

Times one fixed batch of independent simulation tasks (the fig. 7
convergence runs at two seeds — real experiment workloads, not toys)
through the three execution modes of ``repro.runner``:

* **serial cold** — in-process, writing a fresh result cache;
* **parallel cold** — ``--jobs N`` process fan-out, cache disabled;
* **warm replay** — serial again over the now-populated cache, which
  must execute nothing.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_runner.py             # full run
    PYTHONPATH=src python benchmarks/bench_runner.py --smoke     # CI-sized
    PYTHONPATH=src python benchmarks/bench_runner.py --jobs 4

Writes ``BENCH_runner.json``.  Fan-out speedup is bounded by physical
cores — ``host.cpus`` is recorded alongside so the number can be read
honestly; cache replay skips the simulations entirely and its speedup
is core-count independent.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.experiments.fig07_convergence import KINDS, algorithm_run
from repro.runner import ResultCache, run_tasks, task

#: Two independent seeds per algorithm: 6 tasks, enough to keep an
#: 8-wide pool busy without making the serial leg take minutes.
SEEDS = (0, 1)


def build_tasks(duration: float):
    return [
        task(algorithm_run, kind=kind, seed=seed, duration=duration,
             label=f"fig07 {kind} seed={seed}")
        for kind in KINDS
        for seed in SEEDS
    ]


def timed(fn) -> tuple[float, object]:
    t0 = time.perf_counter()
    value = fn()
    return time.perf_counter() - t0, value


def run_bench(duration: float, jobs: int) -> dict:
    """Measure the three modes over an identical task batch."""
    tasks = build_tasks(duration)
    cache_dir = Path(tempfile.mkdtemp(prefix="bench-runner-cache-"))
    try:
        cache = ResultCache(cache_dir)
        serial_wall, serial_results = timed(
            lambda: run_tasks(tasks, jobs=1, cache=cache)
        )
        parallel_wall, parallel_results = timed(
            lambda: run_tasks(tasks, jobs=jobs, cache=None)
        )
        warm_wall, warm_results = timed(
            lambda: run_tasks(tasks, jobs=1, cache=cache)
        )
        assert parallel_results == serial_results, "fan-out changed results"
        assert warm_results == serial_results, "cache replay changed results"
        hits = cache.stats.hits
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "tasks": len(tasks),
        "duration": duration,
        "serial": {"wall_seconds": round(serial_wall, 3)},
        "parallel": {"wall_seconds": round(parallel_wall, 3), "jobs": jobs},
        "warm_cache": {"wall_seconds": round(warm_wall, 3), "hits": hits},
        "parallel_speedup": round(serial_wall / parallel_wall, 2),
        "cache_speedup": round(serial_wall / warm_wall, 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="short CI run, no JSON output")
    parser.add_argument("--jobs", type=int, default=8, help="fan-out width for the parallel leg")
    parser.add_argument("--duration", type=float, default=120.0, help="simulated seconds per task")
    parser.add_argument(
        "--baseline", action="store_true", help="print measurements without writing JSON"
    )
    parser.add_argument("--out", default="BENCH_runner.json", help="output path")
    args = parser.parse_args(argv)

    duration = 20.0 if args.smoke else args.duration
    result = run_bench(duration, jobs=args.jobs)
    print(
        f"{result['tasks']} tasks x {duration:g}s sim: "
        f"serial {result['serial']['wall_seconds']:.2f}s, "
        f"--jobs {args.jobs} {result['parallel']['wall_seconds']:.2f}s "
        f"({result['parallel_speedup']:.2f}x), "
        f"warm cache {result['warm_cache']['wall_seconds']:.3f}s "
        f"({result['cache_speedup']:.0f}x)"
    )

    if args.smoke or args.baseline:
        return 0

    payload = {
        "scenario": {
            "experiment": "fig07 algorithm_run",
            "kinds": list(KINDS),
            "seeds": list(SEEDS),
            "duration": duration,
        },
        "host": {"cpus": os.cpu_count(), "jobs": args.jobs},
        "measured": result,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
