"""Scale benchmark: the 256-session x 64-worker metro ring scenario.

Times the batched fluid engine (`repro.sim.batch.BatchStore`) against
the per-session reference path on the `repro.testbeds.presets.metro`
scenario — 16 shared sites, 16 384 workers, ~80 shared resources, every
ring link carrying dozens of overlapping sessions.  This is the scale
regime ROADMAP item 1 targets: per-session numpy dispatch dominates the
hot path (68% of wall time at 8x64 per ``BENCH_hotpath.json``) and
grows linearly with the session count, while the batched store advances
all sessions in one pass.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_scale.py            # full run
    PYTHONPATH=src python benchmarks/bench_scale.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_scale.py --baseline # print only

Writes ``BENCH_scale.json`` pinning all three engines on the same
scenario; the acceptance bar for the batched-engine PR is
``speedup >= 5``, and for the adaptive-stepping PR
``speedup_adaptive >= 5`` at ``total_good_bytes`` matching the
fixed-dt oracle within rtol 1e-6 (plus byte-identical same-seed
replay).

The ``--smoke`` mode runs short batched slices (fixed-dt and adaptive)
and exits nonzero on any of: the wall-clock budget, the adaptive
speedup floor, or the fixed-dt path regressing more than
``--baseline-tolerance`` below the steps/sec pinned in
``BENCH_scale.json``.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path as FsPath

from repro.sim.engine import SimulationEngine
from repro.testbeds.presets import metro
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.transfer.session import TransferParams
from repro.units import GB

#: Scenario shape (the acceptance scenario from ISSUE 6).
N_SITES = 16
SESSIONS_PER_SITE = 16
N_SESSIONS = N_SITES * SESSIONS_PER_SITE
CONCURRENCY = 64

#: Wall-clock budget for the CI smoke slice (seconds).  Generous — the
#: full batched run covers this scenario several times over within it —
#: so the gate only trips on order-of-magnitude regressions, not on a
#: noisy shared runner.
SMOKE_BUDGET_SECONDS = 120.0
SMOKE_SIM_TIME = 2.0
#: The adaptive path must beat the fixed-dt batched path by at least
#: this wall-clock factor in the smoke slice.  Deliberately below the
#: full-bench ``>= 5x`` acceptance bar: the smoke window is short, so
#: constant overheads weigh more and runner noise is larger.
SMOKE_ADAPTIVE_MIN_SPEEDUP = 3.0
#: Allowed fractional steps/sec regression of the fixed-dt smoke run
#: vs. the pinned BENCH_scale.json baseline (overridable on the CLI).
BASELINE_TOLERANCE = 0.10

#: Oracle agreement required of the adaptive run (matches the adaptive
#: parity test suite's bar).
ADAPTIVE_RTOL = 1e-6


def build_scenario(
    n_sites: int = N_SITES,
    sessions_per_site: int = SESSIONS_PER_SITE,
    concurrency: int = CONCURRENCY,
    dt: float = 0.1,
    batched: bool = True,
    adaptive: bool = False,
):
    """The metro ring with one repeating 1 GB-file session per testbed."""
    engine = SimulationEngine(dt=dt, adaptive=adaptive)
    network = FluidTransferNetwork(engine, batched=batched, adaptive=adaptive)
    sessions = []
    for tb in metro(n_sites=n_sites, sessions_per_site=sessions_per_site):
        session = tb.new_session(
            uniform_dataset(256, 1 * GB),
            params=TransferParams(concurrency=concurrency, parallelism=2),
            repeat=True,
        )
        network.add_session(session)
        sessions.append(session)
    return engine, network, sessions


class _TimedEngine:
    """One engine under measurement: counts steps, accumulates wall time."""

    def __init__(self, batched: bool, dt: float, adaptive: bool = False):
        self.batched = batched
        self.adaptive = adaptive
        self.engine, self.network, self.sessions = build_scenario(
            dt=dt, batched=batched, adaptive=adaptive
        )
        self.engine.enable_profiling()
        self.steps = 0
        self.wall = 0.0
        inner = self.engine.fluid_step

        def counting_step(now: float, step_dt: float) -> None:
            self.steps += 1
            inner(now, step_dt)

        self.engine.fluid_step = counting_step
        # Adaptive jumps bypass fluid_step; count them as (multi-)steps
        # through the jump hook so `steps` stays "fluid advances taken".
        inner_jump = self.engine.fluid_jump
        if inner_jump is not None:

            def counting_jump(now: float, h: float, n: int) -> None:
                self.steps += 1
                inner_jump(now, h, n)

            self.engine.fluid_jump = counting_jump

    def run(self, sim_time: float, timed: bool = True) -> None:
        t0 = time.perf_counter()
        self.engine.run_for(sim_time)
        if timed:
            self.wall += time.perf_counter() - t0
        else:
            # Warmup: drop the step count *and* the profile's subsystem
            # accumulators so the reported attributions cover exactly the
            # timed window — exclusive, and summing to <= wall_seconds.
            self.steps = 0
            self.engine.enable_profiling()

    def result(self, sim_time: float, dt: float, warmup: float) -> dict:
        result = {
            "batched": self.batched,
            "adaptive": self.adaptive,
            "sim_time": sim_time,
            "dt": dt,
            "warmup_sim_time": warmup,
            "fluid_steps": self.steps,
            "wall_seconds": round(self.wall, 4),
            "steps_per_second": round(self.steps / self.wall, 1),
            "total_good_bytes": float(sum(s.total_good_bytes for s in self.sessions)),
        }
        profile = getattr(self.engine, "profile", None)
        if profile is not None and getattr(profile, "totals", None):
            result["subsystem_seconds"] = {
                name: round(seconds, 4)
                for name, seconds in sorted(profile.totals.items())
            }
        return result

    def replay_key(self) -> list:
        """Everything a same-seed replay must reproduce byte-for-byte."""
        return [
            (
                s.total_good_bytes,
                s.total_lost_bytes,
                s.files_completed,
                s.rates.tolist(),
                s.file_done.tolist(),
                s.gap_left.tolist(),
            )
            for s in self.sessions
        ]


def run_bench(
    sim_time: float,
    dt: float = 0.1,
    batched: bool = True,
    warmup: float = 1.0,
    adaptive: bool = False,
) -> dict:
    """Measure steady-state wall time and fluid steps/sec for one engine.

    ``warmup`` simulated seconds run before the timer starts, so the
    measurement is steady-state throughput: the one-time topology build
    (identical for both engines, amortised over any real run) and the
    first cold waterfill are excluded from the timed window.
    """
    timed = _TimedEngine(batched, dt, adaptive=adaptive)
    timed.run(warmup, timed=False)
    timed.run(sim_time)
    return timed.result(sim_time, dt, warmup)


def run_adaptive_bench(sim_time: float, dt: float, warmup: float = 1.0) -> tuple[dict, list]:
    """The adaptive measurement plus its byte-exact replay key."""
    timed = _TimedEngine(batched=True, dt=dt, adaptive=True)
    timed.run(warmup, timed=False)
    timed.run(sim_time)
    return timed.result(sim_time, dt, warmup), timed.replay_key()




def _print_result(label: str, sim_time: float, result: dict) -> None:
    print(
        f"{N_SESSIONS} sessions x {CONCURRENCY} workers ({label}), "
        f"{sim_time:g}s sim: {result['wall_seconds']:.3f}s wall, "
        f"{result['fluid_steps']} advances, "
        f"{result['steps_per_second']:.1f} steps/s"
    )
    for name, seconds in result.get("subsystem_seconds", {}).items():
        print(f"  {name:<18} {seconds:.4f}s")


def _smoke(args) -> int:
    """CI guard: budget, adaptive speedup floor, fixed-dt baseline.

    The fixed-dt run is best-of-3: wall-clock noise on shared CI
    runners is one-sided (background load only ever slows a run down),
    so the fastest attempt is the honest estimate to hold against the
    pinned baseline, and a genuine regression still fails all three.
    """
    fixed = min(
        (run_bench(SMOKE_SIM_TIME, dt=args.dt, batched=True) for _ in range(3)),
        key=lambda r: r["wall_seconds"],
    )
    adaptive = run_bench(SMOKE_SIM_TIME, dt=args.dt, batched=True, adaptive=True)
    wall = fixed["wall_seconds"]
    speedup = wall / max(adaptive["wall_seconds"], 1e-9)
    print(
        f"metro smoke: {N_SESSIONS} sessions x {CONCURRENCY} workers, "
        f"{SMOKE_SIM_TIME:g}s sim in {wall:.2f}s wall "
        f"(budget {SMOKE_BUDGET_SECONDS:g}s); adaptive "
        f"{adaptive['wall_seconds']:.3f}s wall ({speedup:.1f}x, "
        f"floor {SMOKE_ADAPTIVE_MIN_SPEEDUP:g}x)"
    )
    failed = False
    if wall > SMOKE_BUDGET_SECONDS:
        print("FAIL: metro smoke exceeded the wall-clock budget")
        failed = True
    if speedup < SMOKE_ADAPTIVE_MIN_SPEEDUP:
        print(
            f"FAIL: adaptive smoke speedup {speedup:.2f}x below the "
            f"{SMOKE_ADAPTIVE_MIN_SPEEDUP:g}x floor"
        )
        failed = True
    rel_err = abs(adaptive["total_good_bytes"] - fixed["total_good_bytes"]) / max(
        fixed["total_good_bytes"], 1.0
    )
    if rel_err > ADAPTIVE_RTOL:
        print(f"FAIL: adaptive smoke diverged from fixed-dt (rel err {rel_err:.2e})")
        failed = True
    baseline_path = FsPath(args.out)
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        pinned = baseline.get("batched", {}).get("steps_per_second", 0.0)
        floor = pinned * (1.0 - args.baseline_tolerance)
        print(
            f"fixed-dt baseline: {fixed['steps_per_second']:.1f} steps/s vs "
            f"pinned {pinned:.1f} (floor {floor:.1f})"
        )
        if pinned and fixed["steps_per_second"] < floor:
            print(
                f"FAIL: fixed-dt smoke regressed more than "
                f"{args.baseline_tolerance:.0%} below {baseline_path}"
            )
            failed = True
    else:
        print(f"note: {baseline_path} missing, skipping baseline comparison")
    return 1 if failed else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short batched runs (fixed + adaptive); exit 1 on any perf guard",
    )
    parser.add_argument("--sim-time", type=float, default=20.0, help="simulated seconds")
    parser.add_argument("--dt", type=float, default=0.1, help="fluid step size")
    parser.add_argument(
        "--baseline", action="store_true", help="print measurements without writing JSON"
    )
    parser.add_argument(
        "--baseline-tolerance",
        type=float,
        default=BASELINE_TOLERANCE,
        help="allowed fractional steps/s regression vs the pinned JSON (smoke)",
    )
    parser.add_argument("--out", default="BENCH_scale.json", help="output path")
    args = parser.parse_args(argv)

    if args.smoke:
        return _smoke(args)

    # Measured sequentially, each engine with its working set resident
    # (interleaving the engines makes them evict each other's arrays
    # from cache, which penalises the batched path it is meant to measure).
    batched = run_bench(args.sim_time, dt=args.dt, batched=True)
    per_session = run_bench(args.sim_time, dt=args.dt, batched=False)
    adaptive, replay_a = run_adaptive_bench(args.sim_time, dt=args.dt)
    _, replay_b = run_adaptive_bench(args.sim_time, dt=args.dt)
    speedup = round(batched["steps_per_second"] / per_session["steps_per_second"], 2)
    # The adaptive engine takes a handful of large advances instead of
    # thousands of grid steps, so steps/s is meaningless there — the
    # comparison is wall clock over the same simulated window.
    speedup_adaptive = round(
        batched["wall_seconds"] / max(adaptive["wall_seconds"], 1e-9), 2
    )
    rel_err = abs(adaptive["total_good_bytes"] - batched["total_good_bytes"]) / max(
        batched["total_good_bytes"], 1.0
    )
    adaptive["good_bytes_rel_err_vs_fixed"] = float(f"{rel_err:.3e}")
    adaptive["matches_fixed_dt_rtol"] = ADAPTIVE_RTOL
    adaptive["replay_identical"] = replay_a == replay_b

    for label, result in (
        ("batched", batched),
        ("per-session", per_session),
        ("adaptive", adaptive),
    ):
        _print_result(label, args.sim_time, result)
    print(f"speedup: {speedup}x (batched vs per-session, steps/s)")
    print(
        f"speedup_adaptive: {speedup_adaptive}x (adaptive vs batched, wall; "
        f"rel err {rel_err:.2e}, replay identical: {adaptive['replay_identical']})"
    )
    if rel_err > ADAPTIVE_RTOL:
        print(f"FAIL: adaptive run diverged from the fixed-dt oracle (> {ADAPTIVE_RTOL:g})")
        return 1
    if not adaptive["replay_identical"]:
        print("FAIL: adaptive same-seed replay was not byte-identical")
        return 1

    if args.baseline:
        return 0

    payload = {
        "scenario": {
            "preset": "metro",
            "sites": N_SITES,
            "sessions": N_SESSIONS,
            "concurrency": CONCURRENCY,
            "workers": N_SESSIONS * CONCURRENCY,
            "sim_time": args.sim_time,
            "dt": args.dt,
        },
        "batched": batched,
        "per_session": per_session,
        "adaptive": adaptive,
        "speedup": speedup,
        "speedup_adaptive": speedup_adaptive,
    }
    FsPath(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
