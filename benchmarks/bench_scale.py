"""Scale benchmark: the 256-session x 64-worker metro ring scenario.

Times the batched fluid engine (`repro.sim.batch.BatchStore`) against
the per-session reference path on the `repro.testbeds.presets.metro`
scenario — 16 shared sites, 16 384 workers, ~80 shared resources, every
ring link carrying dozens of overlapping sessions.  This is the scale
regime ROADMAP item 1 targets: per-session numpy dispatch dominates the
hot path (68% of wall time at 8x64 per ``BENCH_hotpath.json``) and
grows linearly with the session count, while the batched store advances
all sessions in one pass.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_scale.py            # full run
    PYTHONPATH=src python benchmarks/bench_scale.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_scale.py --baseline # print only

Writes ``BENCH_scale.json`` pinning both engines on the same scenario;
the acceptance bar for the batched-engine PR is ``speedup >= 5``.

The ``--smoke`` mode runs a short batched-only slice and exits nonzero
if it misses the wall-clock budget — the CI guard against the batched
path silently regressing to per-session speeds.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path as FsPath

from repro.sim.engine import SimulationEngine
from repro.testbeds.presets import metro
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.transfer.session import TransferParams
from repro.units import GB

#: Scenario shape (the acceptance scenario from ISSUE 6).
N_SITES = 16
SESSIONS_PER_SITE = 16
N_SESSIONS = N_SITES * SESSIONS_PER_SITE
CONCURRENCY = 64

#: Wall-clock budget for the CI smoke slice (seconds).  Generous — the
#: full batched run covers this scenario several times over within it —
#: so the gate only trips on order-of-magnitude regressions, not on a
#: noisy shared runner.
SMOKE_BUDGET_SECONDS = 120.0
SMOKE_SIM_TIME = 2.0


def build_scenario(
    n_sites: int = N_SITES,
    sessions_per_site: int = SESSIONS_PER_SITE,
    concurrency: int = CONCURRENCY,
    dt: float = 0.1,
    batched: bool = True,
):
    """The metro ring with one repeating 1 GB-file session per testbed."""
    engine = SimulationEngine(dt=dt)
    network = FluidTransferNetwork(engine, batched=batched)
    sessions = []
    for tb in metro(n_sites=n_sites, sessions_per_site=sessions_per_site):
        session = tb.new_session(
            uniform_dataset(256, 1 * GB),
            params=TransferParams(concurrency=concurrency, parallelism=2),
            repeat=True,
        )
        network.add_session(session)
        sessions.append(session)
    return engine, network, sessions


class _TimedEngine:
    """One engine under measurement: counts steps, accumulates wall time."""

    def __init__(self, batched: bool, dt: float):
        self.batched = batched
        self.engine, self.network, self.sessions = build_scenario(dt=dt, batched=batched)
        self.engine.enable_profiling()
        self.steps = 0
        self.wall = 0.0
        inner = self.engine.fluid_step

        def counting_step(now: float, step_dt: float) -> None:
            self.steps += 1
            inner(now, step_dt)

        self.engine.fluid_step = counting_step

    def run(self, sim_time: float, timed: bool = True) -> None:
        t0 = time.perf_counter()
        self.engine.run_for(sim_time)
        if timed:
            self.wall += time.perf_counter() - t0
        else:
            self.steps = 0

    def result(self, sim_time: float, dt: float, warmup: float) -> dict:
        result = {
            "batched": self.batched,
            "sim_time": sim_time,
            "dt": dt,
            "warmup_sim_time": warmup,
            "fluid_steps": self.steps,
            "wall_seconds": round(self.wall, 4),
            "steps_per_second": round(self.steps / self.wall, 1),
            "total_good_bytes": float(sum(s.total_good_bytes for s in self.sessions)),
        }
        profile = getattr(self.engine, "profile", None)
        if profile is not None and getattr(profile, "totals", None):
            result["subsystem_seconds"] = {
                name: round(seconds, 4)
                for name, seconds in sorted(profile.totals.items())
            }
        return result


def run_bench(
    sim_time: float, dt: float = 0.1, batched: bool = True, warmup: float = 1.0
) -> dict:
    """Measure steady-state wall time and fluid steps/sec for one engine.

    ``warmup`` simulated seconds run before the timer starts, so the
    measurement is steady-state throughput: the one-time topology build
    (identical for both engines, amortised over any real run) and the
    first cold waterfill are excluded from the timed window.
    """
    timed = _TimedEngine(batched, dt)
    timed.run(warmup, timed=False)
    timed.run(sim_time)
    return timed.result(sim_time, dt, warmup)




def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short batched-only run; exit 1 if over the wall-clock budget",
    )
    parser.add_argument("--sim-time", type=float, default=20.0, help="simulated seconds")
    parser.add_argument("--dt", type=float, default=0.1, help="fluid step size")
    parser.add_argument(
        "--baseline", action="store_true", help="print measurements without writing JSON"
    )
    parser.add_argument("--out", default="BENCH_scale.json", help="output path")
    args = parser.parse_args(argv)

    if args.smoke:
        result = run_bench(SMOKE_SIM_TIME, dt=args.dt, batched=True)
        wall = result["wall_seconds"]
        print(
            f"metro smoke: {N_SESSIONS} sessions x {CONCURRENCY} workers, "
            f"{SMOKE_SIM_TIME:g}s sim in {wall:.2f}s wall "
            f"(budget {SMOKE_BUDGET_SECONDS:g}s)"
        )
        if wall > SMOKE_BUDGET_SECONDS:
            print("FAIL: metro smoke exceeded the wall-clock budget")
            return 1
        return 0

    # Measured sequentially, each engine with its working set resident
    # (interleaving the two engines makes them evict each other's arrays
    # from cache, which penalises the batched path it is meant to measure).
    batched = run_bench(args.sim_time, dt=args.dt, batched=True)
    per_session = run_bench(args.sim_time, dt=args.dt, batched=False)
    speedup = round(batched["steps_per_second"] / per_session["steps_per_second"], 2)
    for label, result in (("batched", batched), ("per-session", per_session)):
        print(
            f"{N_SESSIONS} sessions x {CONCURRENCY} workers ({label}), "
            f"{args.sim_time:g}s sim: {result['wall_seconds']:.3f}s wall, "
            f"{result['steps_per_second']:.1f} steps/s"
        )
        for name, seconds in result.get("subsystem_seconds", {}).items():
            print(f"  {name:<14} {seconds:.4f}s")
    print(f"speedup: {speedup}x")

    if args.baseline:
        return 0

    payload = {
        "scenario": {
            "preset": "metro",
            "sites": N_SITES,
            "sessions": N_SESSIONS,
            "concurrency": CONCURRENCY,
            "workers": N_SESSIONS * CONCURRENCY,
            "sim_time": args.sim_time,
            "dt": args.dt,
        },
        "batched": batched,
        "per_session": per_session,
        "speedup": speedup,
    }
    FsPath(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
