"""Control-plane overhead benchmark at 1k queued jobs.

What the control plane *adds* over direct ``FalconService.submit`` is
exactly its decision machinery: per-job admission (breaker check,
quota bucket, degradation/bound checks, enqueue) and per-job
scheduling (priority scan + weighted deficit round-robin pick).  The
launch, transfer, and completion paths are byte-for-byte the same
code.  So the benchmark times those two paths in isolation over a
1000-job queue — microsecond-scale work that measures stably — and
expresses the total as a fraction of the direct leg's end-to-end wall
time on the same workload:

* **direct** — 1000 one-file jobs through ``submit()`` to completion
  (the denominator; simulation dominates);
* **admission** — 1000 ``ControlPlane.submit`` calls into a held
  queue (4-tenant mix) minus the cost of the same 1000 direct
  ``submit`` enqueues;
* **scheduling** — 1000 WDRR picks draining that queue.

Acceptance budget: admission + scheduling ≤ 5% of the direct leg
(asserted here and in the CI smoke).  An end-to-end control-plane leg
is deliberately *not* the budget metric: at ~0.4 s per run this
container's timer noise is ±30%, far coarser than the effect.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_service.py            # full run
    PYTHONPATH=src python benchmarks/bench_service.py --smoke    # CI-sized

Writes ``BENCH_service.json``.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path as FsPath

from repro.service import (
    ControlPlane,
    ControlPolicy,
    FalconService,
    JobState,
    Priority,
    TenantSpec,
)
from repro.sim.engine import SimulationEngine
from repro.testbeds.presets import hpclab
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.units import GB, MB

#: Acceptance budget: control machinery as a fraction of the direct leg.
BUDGET = 0.05

TENANT_NAMES = ("t0", "t1", "t2", "t3")


def _fresh(max_active: int) -> tuple[SimulationEngine, FalconService]:
    engine = SimulationEngine(dt=0.1)
    network = FluidTransferNetwork(engine)
    service = FalconService(engine=engine, network=network, max_active=max_active, seed=0)
    return engine, service


def direct_leg(jobs: int) -> float:
    """Wall seconds for ``jobs`` one-file jobs through plain submit()."""
    engine, service = _fresh(max_active=4)
    tb = hpclab()
    datasets = [uniform_dataset(1, 64 * MB) for _ in range(jobs)]
    t0 = time.perf_counter()
    for i, dataset in enumerate(datasets):
        service.submit(tb, dataset, name=f"j{i}")
    while service.running():
        engine.run_until(engine.now + 50.0)
    wall = time.perf_counter() - t0
    completed = sum(1 for j in service.jobs if j.state is JobState.COMPLETED)
    if completed != jobs:
        raise AssertionError(f"direct leg finished {completed}/{jobs} jobs")
    return wall


def machinery(jobs: int) -> tuple[float, float, float]:
    """(admission, scheduling, direct-enqueue) seconds for ``jobs`` jobs.

    One huge job pins the single slot so nothing launches: the timed
    loops exercise pure decision machinery against a queue that grows
    to ``jobs`` deep, then drains through 1000 WDRR picks.
    """
    tb = hpclab()
    datasets = [uniform_dataset(1, 64 * MB) for _ in range(jobs)]

    engine, service = _fresh(max_active=1)
    service.submit(tb, uniform_dataset(1, 512 * GB), name="plug")
    plane = ControlPlane(service, ControlPolicy(max_queue=2 * jobs, preemption=False))
    for name in TENANT_NAMES:
        plane.register_tenant(TenantSpec(name, priority=Priority.NORMAL))
    t0 = time.perf_counter()
    for i, dataset in enumerate(datasets):
        plane.submit(tb, dataset, TENANT_NAMES[i % len(TENANT_NAMES)], name=f"j{i}")
    admission = time.perf_counter() - t0
    if plane.depth != jobs:
        raise AssertionError(f"queue held {plane.depth}/{jobs} jobs")
    t0 = time.perf_counter()
    for _ in range(jobs):
        plane._pick()
    scheduling = time.perf_counter() - t0

    engine, service = _fresh(max_active=1)
    service.submit(tb, uniform_dataset(1, 512 * GB), name="plug")
    t0 = time.perf_counter()
    for i, dataset in enumerate(datasets):
        service.submit(tb, dataset, name=f"j{i}")
    enqueue = time.perf_counter() - t0
    return admission, scheduling, enqueue


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="short CI run, no JSON output")
    parser.add_argument("--jobs", type=int, default=1000, help="queued jobs per leg")
    parser.add_argument("--repeats", type=int, default=3, help="take the best of N runs")
    parser.add_argument("--out", default="BENCH_service.json", help="output path")
    args = parser.parse_args(argv)

    jobs = 200 if args.smoke else args.jobs
    repeats = 2 if args.smoke else args.repeats
    machinery(min(jobs, 50))  # warm allocator and imports
    direct = min(direct_leg(jobs) for _ in range(repeats))
    admission = scheduling = enqueue = float("inf")
    for _ in range(repeats):
        a, s, e = machinery(jobs)
        admission, scheduling, enqueue = (
            min(admission, a),
            min(scheduling, s),
            min(enqueue, e),
        )
    added = max(admission - enqueue, 0.0) + scheduling
    overhead = added / direct
    per_job_us = added / jobs * 1e6
    print(
        f"{jobs} jobs: direct end-to-end {direct:.3f}s; control machinery "
        f"{added * 1e3:.2f}ms ({per_job_us:.1f}us/job) = {overhead:.2%} of direct "
        f"(budget {BUDGET:.0%})"
    )
    if args.smoke:
        return 0 if overhead < BUDGET else 1

    payload = {
        "scenario": {"jobs": jobs, "max_active": 4, "file_mb": 64, "tenants": len(TENANT_NAMES)},
        "direct_wall_seconds": round(direct, 4),
        "admission_seconds": round(admission, 5),
        "scheduling_seconds": round(scheduling, 5),
        "direct_enqueue_seconds": round(enqueue, 5),
        "machinery_per_job_us": round(per_job_us, 2),
        "overhead": round(overhead, 4),
        "budget": BUDGET,
        "within_budget": overhead < BUDGET,
    }
    FsPath(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0 if overhead < BUDGET else 1


if __name__ == "__main__":
    raise SystemExit(main())
