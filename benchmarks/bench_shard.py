"""Sharded data-plane benchmark: throughput scaling and routing cost.

The sharding contract (ISSUE 10) has two measurable halves:

* **scaling** — at an offered load sized to saturate several engines,
  a 4-shard :class:`~repro.service.sharding.ShardedControlPlane` must
  move >= 3x the admitted goodput of the identical 1-shard run over
  the same simulated window (near-linear: each shard is an independent
  engine, so the only loss is placement skew);
* **routing overhead** — what the sharded plane *adds* over the
  unsharded :class:`~repro.service.control.ControlPlane` is exactly
  the router: the placement decision, the side-effect-free home-shard
  verdict pre-check, and the ``job.route`` bookkeeping.  Measured in
  isolation (bench_service's held-queue technique: a plug job pins
  every shard's single slot so nothing launches) and expressed as a
  fraction of the 1-shard leg's end-to-end wall time.  Budget: <= 5%.

Run directly (not under pytest)::

    PYTHONPATH=src python benchmarks/bench_shard.py            # full run
    PYTHONPATH=src python benchmarks/bench_shard.py --smoke    # CI-sized

Writes ``BENCH_shard.json``.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path as FsPath

from repro.service import (
    ControlPlane,
    ControlPolicy,
    FalconService,
    JobState,
    ShardedControlPlane,
    TenantSpec,
    make_shards,
)
from repro.sim.engine import SimulationEngine
from repro.testbeds.presets import hpclab
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.units import GB, MB

#: Admitted goodput of the 4-shard run over the 1-shard run, >= this.
SCALING_FLOOR = 3.0
#: Routing machinery as a fraction of the 1-shard end-to-end wall.
OVERHEAD_BUDGET = 0.05
#: Shard count for the scaled leg (the ISSUE's 4-8 band, lower edge).
SHARDS = 4
#: Offered load as a multiple of the scaled fleet's aggregate capacity.
#: The run window is 2x the arrival horizon, so one shard can drain 2
#: capacity-units of the SHARDS * OVERSUBSCRIBE offered; this must be
#: high enough that the 1-shard leg stays saturated through the whole
#: window (2.4 * 4 = 9.6 units offered vs 2 drainable).
OVERSUBSCRIBE = 2.4


def goodput_leg(n_shards: int, jobs: int, horizon: float) -> tuple[float, int, float]:
    """(bytes moved, jobs completed, wall seconds) for one scaling leg.

    Both legs see the *same* offered load — ``OVERSUBSCRIBE`` times
    what ``SHARDS`` engines can move in ``horizon`` — submitted at a
    fixed cadence, then run to exactly ``2 * horizon`` of simulated
    time.  The 1-shard run saturates (bounded queue sheds the excess);
    the sharded run spreads it, so the completed-bytes ratio is the
    admitted-throughput scaling factor.
    """
    shards = make_shards(n_shards, seed=0, max_active=8)
    plane = ShardedControlPlane(shards, ControlPolicy(max_queue=64))
    plane.register_tenant(TenantSpec("bench"))
    proto = hpclab()
    capacity_bytes = proto.max_throughput() / 8.0 * horizon * SHARDS
    per_job = OVERSUBSCRIBE * capacity_bytes / jobs
    interval = horizon / jobs
    t0 = time.perf_counter()
    for i in range(jobs):
        plane.run_until(i * interval)
        plane.submit(hpclab, uniform_dataset(1, per_job), "bench", name=f"j{i}")
    plane.run_until(2.0 * horizon)
    wall = time.perf_counter() - t0
    moved = 0.0
    completed = 0
    for job in plane.jobs():
        if job.state is JobState.COMPLETED:
            completed += 1
            moved += job.report.bytes_moved
    return moved, completed, wall


def routing_machinery(jobs: int) -> tuple[float, float]:
    """(sharded, unsharded) admission seconds for ``jobs`` held jobs.

    Every shard's single slot is pinned by a plug job submitted
    directly to its service, so the timed loop exercises admission +
    routing only — no launches, no simulation steps.  The unsharded
    loop is the same admission pipeline without the router; the
    difference is the routing cost.
    """
    datasets = [uniform_dataset(1, 64 * MB) for _ in range(jobs)]

    shards = make_shards(SHARDS, seed=0, max_active=1)
    plane = ShardedControlPlane(shards, ControlPolicy(max_queue=2 * jobs, preemption=False))
    plane.register_tenant(TenantSpec("bench"))
    for shard in shards:
        shard.service.submit(shard.localize(hpclab), uniform_dataset(1, 512 * GB), name="plug")
    t0 = time.perf_counter()
    for i, dataset in enumerate(datasets):
        plane.submit(hpclab, dataset, "bench", name=f"j{i}")
    sharded = time.perf_counter() - t0
    if plane.depth != jobs:
        raise AssertionError(f"sharded queues held {plane.depth}/{jobs} jobs")

    engine = SimulationEngine(dt=0.1)
    network = FluidTransferNetwork(engine)
    service = FalconService(engine=engine, network=network, max_active=1, seed=0)
    tb = hpclab()
    service.submit(tb, uniform_dataset(1, 512 * GB), name="plug")
    flat = ControlPlane(service, ControlPolicy(max_queue=2 * jobs, preemption=False))
    flat.register_tenant(TenantSpec("bench"))
    t0 = time.perf_counter()
    for i, dataset in enumerate(datasets):
        flat.submit(tb, dataset, "bench", name=f"j{i}")
    unsharded = time.perf_counter() - t0
    if flat.depth != jobs:
        raise AssertionError(f"flat queue held {flat.depth}/{jobs} jobs")
    return sharded, unsharded


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="short CI run, no JSON output")
    parser.add_argument("--jobs", type=int, default=600, help="jobs in the scaling legs")
    parser.add_argument("--horizon", type=float, default=240.0, help="arrival window, sim seconds")
    parser.add_argument("--repeats", type=int, default=3, help="best-of-N for the timed loops")
    parser.add_argument("--out", default="BENCH_shard.json", help="output path")
    args = parser.parse_args(argv)

    jobs = 200 if args.smoke else args.jobs
    horizon = 120.0 if args.smoke else args.horizon
    repeats = 2 if args.smoke else args.repeats

    moved_1, done_1, wall_1 = goodput_leg(1, jobs, horizon)
    moved_n, done_n, wall_n = goodput_leg(SHARDS, jobs, horizon)
    scaling = moved_n / moved_1 if moved_1 > 0.0 else float("inf")
    rate_n = done_n / (2.0 * horizon) * 3600.0  # completed jobs per sim-hour

    routing_machinery(min(jobs, 50))  # warm allocator and imports
    sharded = unsharded = float("inf")
    for _ in range(repeats):
        s, u = routing_machinery(jobs)
        sharded, unsharded = min(sharded, s), min(unsharded, u)
    routing = max(sharded - unsharded, 0.0)
    overhead = routing / wall_1
    per_job_us = routing / jobs * 1e6

    print(
        f"scaling: {SHARDS} shards moved {moved_n / GB:.1f} GB vs {moved_1 / GB:.1f} GB "
        f"on 1 shard = {scaling:.2f}x (floor {SCALING_FLOOR:g}x); "
        f"{done_n} jobs completed ({rate_n:,.0f}/sim-hour)"
    )
    print(
        f"routing: {routing * 1e3:.2f}ms for {jobs} jobs ({per_job_us:.1f}us/job) "
        f"= {overhead:.2%} of the 1-shard wall ({wall_1:.3f}s, budget {OVERHEAD_BUDGET:.0%})"
    )
    ok = scaling >= SCALING_FLOOR and overhead <= OVERHEAD_BUDGET
    if args.smoke:
        return 0 if ok else 1

    payload = {
        "scenario": {
            "shards": SHARDS,
            "jobs": jobs,
            "horizon_s": horizon,
            "oversubscribe": OVERSUBSCRIBE,
            "max_active": 8,
        },
        "one_shard_bytes": round(moved_1, 0),
        "sharded_bytes": round(moved_n, 0),
        "sharded_completed": done_n,
        "completed_per_sim_hour": round(rate_n, 0),
        "scaling": round(scaling, 3),
        "scaling_floor": SCALING_FLOOR,
        "one_shard_wall_seconds": round(wall_1, 4),
        "sharded_wall_seconds": round(wall_n, 4),
        "routing_seconds": round(routing, 5),
        "routing_per_job_us": round(per_job_us, 2),
        "overhead": round(overhead, 4),
        "budget": OVERHEAD_BUDGET,
        "within_budget": ok,
    }
    FsPath(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
