"""Bench: regenerate Table 1 (testbed specifications)."""

from __future__ import annotations

from repro.experiments import table1_testbeds


def test_table1(benchmark, once):
    result = once(benchmark, table1_testbeds.run)
    print()
    print(result.render())

    by_name = {r.name: r for r in result.rows}
    # Paper-vs-measured: every row matches the published spec.
    for name, _storage, _bw, rtt_ms, bottleneck in table1_testbeds.PAPER_TABLE1:
        row = by_name[name]
        assert abs(row.rtt * 1e3 - rtt_ms) < 1e-6
        assert row.bottleneck == bottleneck
    # The calibrated optima that every other figure depends on.
    assert by_name["Emulab"].optimal_concurrency == 10
    assert by_name["HPCLab"].optimal_concurrency == 9
    assert by_name["XSEDE"].optimal_concurrency == 10
    assert by_name["Campus Cluster"].optimal_concurrency == 7
