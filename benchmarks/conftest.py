"""Benchmark harness configuration.

Every bench regenerates one of the paper's tables/figures: it runs the
experiment once under pytest-benchmark (wall-time of the simulation is
the benchmarked quantity), prints the same rows/series the paper
reports, and asserts the *shape* expectations from DESIGN.md §4 —
who wins, by roughly what factor, where crossovers fall.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once():
    """Fixture exposing the single-shot benchmark runner."""
    return run_once
