#!/usr/bin/env python
"""Competing transfers: three Falcon agents share HPCLab fairly.

Reproduces the paper's §4.2 storyline interactively: a second and third
independent transfer task join a running one; each agent — optimizing
only its *own* utility — backs off to its fair share, and survivors
reclaim capacity when a transfer finishes.  Compare with two HARP
agents, where the late-comer grabs ~2x the incumbent's share.

Run:  python examples/competing_transfers.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.fairness import jain_index
from repro.analysis.trace import TraceRecorder
from repro.baselines.harp import HarpController
from repro.core import FalconAgent, GradientDescent, attach_agent
from repro.sim.engine import SimulationEngine
from repro.testbeds.presets import hpclab
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.units import bps_to_gbps


def falcon_trio() -> None:
    print("=== three Falcon-GD agents, staggered joins ===")
    testbed = hpclab()
    engine = SimulationEngine(dt=0.1)
    network = FluidTransferNetwork(engine)
    recorder = TraceRecorder(engine, period=1.0)

    for i, start in enumerate((0.0, 150.0, 300.0)):
        session = testbed.new_session(uniform_dataset(1000), name=f"falcon-{i}", repeat=True)
        recorder.watch(session)
        engine.schedule_at(start, lambda s=session: network.add_session(s))
        agent = FalconAgent(
            session=session,
            optimizer=GradientDescent(lo=1, hi=32),
            rng=np.random.default_rng(100 + i),
        )
        attach_agent(engine, agent, interval=testbed.sample_interval, start_time=start)

    engine.run_for(450.0)

    for label, t0, t1, members in (
        ("one transfer ", 90, 150, [0]),
        ("two transfers", 240, 300, [0, 1]),
        ("three       ", 390, 450, [0, 1, 2]),
    ):
        shares = [
            recorder[f"falcon-{i}"].window(t0, t1).mean_throughput() for i in members
        ]
        pretty = " + ".join(f"{bps_to_gbps(s):.1f}" for s in shares)
        print(
            f"  {label}: {pretty} Gbps  "
            f"(total {bps_to_gbps(sum(shares)):.1f}, Jain {jain_index(np.array(shares)):.3f})"
        )


def harp_pair() -> None:
    print("\n=== two HARP agents: the late-comer advantage ===")
    testbed = hpclab()
    engine = SimulationEngine(dt=0.1)
    network = FluidTransferNetwork(engine)
    recorder = TraceRecorder(engine, period=1.0)

    controllers = []
    for i, start in enumerate((0.0, 120.0)):
        session = testbed.new_session(uniform_dataset(1000), name=f"harp-{i}", repeat=True)
        recorder.watch(session)
        engine.schedule_at(start, lambda s=session: network.add_session(s))
        controller = HarpController(session=session)
        controllers.append(controller)
        attach_agent(engine, controller, interval=testbed.sample_interval, start_time=start)

    engine.run_for(360.0)
    shares = [recorder[f"harp-{i}"].window(300, 360).mean_throughput() for i in range(2)]
    print(
        f"  incumbent: cc={controllers[0].chosen_concurrency}, "
        f"{bps_to_gbps(shares[0]):.1f} Gbps"
    )
    print(
        f"  late-comer: cc={controllers[1].chosen_concurrency}, "
        f"{bps_to_gbps(shares[1]):.1f} Gbps  "
        f"({shares[1] / shares[0]:.2f}x the incumbent)"
    )


if __name__ == "__main__":
    falcon_trio()
    harp_pair()
