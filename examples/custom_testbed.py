#!/usr/bin/env python
"""Building your own environment: model a site, then let Falcon tune it.

Walks through assembling a testbed from the substrate primitives — a
Lustre-like array, DTNs with 25G NICs, a two-hop WAN path — comparing a
naive fixed setting against Falcon, and injecting a mid-run storage
slowdown to show the online search adapting.

Run:  python examples/custom_testbed.py
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core import FalconAgent, GradientDescent, attach_agent
from repro.hosts.cpu import CpuModel
from repro.hosts.dtn import DataTransferNode
from repro.hosts.nic import Nic
from repro.network.link import Link
from repro.network.path import Path
from repro.network.queue import DropTailLossModel, NoLossModel
from repro.sim.engine import SimulationEngine
from repro.storage.parallel_fs import ParallelFileSystem
from repro.testbeds.base import Testbed
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.transfer.session import TransferParams
from repro.units import Gbps, bps_to_gbps, milliseconds


def build_site() -> Testbed:
    """A 25G-NIC site pair over a 100G backbone with a 20G access link."""
    lustre = ParallelFileSystem(
        name="lustre-site-a",
        per_process_read_bps=1.2 * Gbps,
        per_process_write_bps=1.2 * Gbps,
        aggregate_read_bps=18 * Gbps,
        aggregate_write_bps=16 * Gbps,
        contention=0.008,
        open_latency=1.5e-3,
    )
    ceph = ParallelFileSystem(
        name="ceph-site-b",
        per_process_read_bps=2.0 * Gbps,
        per_process_write_bps=1.0 * Gbps,
        aggregate_read_bps=24 * Gbps,
        aggregate_write_bps=14 * Gbps,
        contention=0.01,
        open_latency=2e-3,
    )
    src = DataTransferNode("site-a-dtn", storage=lustre, nic=Nic(25 * Gbps, "a-nic"),
                           cpu=CpuModel(cores=32))
    dst = DataTransferNode("site-b-dtn", storage=ceph, nic=Nic(25 * Gbps, "b-nic"),
                           cpu=CpuModel(cores=16))
    path = Path(
        links=(
            Link("access-a", 20 * Gbps, delay=milliseconds(1), loss_model=DropTailLossModel()),
            Link("backbone", 100 * Gbps, delay=milliseconds(12), loss_model=NoLossModel()),
            Link("access-b", 40 * Gbps, delay=milliseconds(2), loss_model=NoLossModel()),
        ),
        name="site-a->site-b",
    )
    return Testbed(
        name="CustomSite",
        source=src,
        destination=dst,
        path=path,
        sample_interval=5.0,
        bottleneck="Disk Write (then access link)",
    )


def main() -> None:
    testbed = build_site()
    print(testbed.describe())
    print(f"analytic optimum: n*={testbed.optimal_concurrency()}, "
          f"achievable {bps_to_gbps(testbed.max_throughput()):.1f} Gbps\n")

    engine = SimulationEngine(dt=0.1)
    network = FluidTransferNetwork(engine)

    # Naive fixed setting a user might pick: concurrency 4.
    fixed = testbed.new_session(
        uniform_dataset(500), name="fixed-4", repeat=True,
        params=TransferParams(concurrency=4),
    )
    network.add_session(fixed)
    engine.run_for(120.0)
    fixed_rate = fixed.monitor.take(concurrency=4).throughput_bps
    fixed.finished_at = engine.now
    network.remove_session(fixed)

    # Falcon on the same environment.
    session = testbed.new_session(uniform_dataset(500), name="falcon", repeat=True)
    network.add_session(session)
    agent = FalconAgent(
        session=session,
        optimizer=GradientDescent(lo=1, hi=40),
        rng=np.random.default_rng(0),
    )
    attach_agent(engine, agent, interval=testbed.sample_interval)
    engine.run_for(240.0)
    before = agent.throughputs()[-10:].mean()

    # Inject a storage hot spot: site B's write bandwidth halves.
    print("injecting destination-array slowdown at "
          f"t={engine.now:.0f}s (write capacity halved)...")
    storage = testbed.destination.storage
    testbed.destination.storage = replace(
        storage,
        per_process_write_bps=storage.per_process_write_bps / 2,
        aggregate_write_bps=storage.aggregate_write_bps / 2,
    )
    engine.run_for(240.0)
    after = agent.throughputs()[-10:].mean()
    cc_after = agent.concurrencies()[-10:].mean()

    print(f"\nfixed concurrency=4 : {bps_to_gbps(fixed_rate):6.2f} Gbps")
    print(f"Falcon (before shift): {bps_to_gbps(before):6.2f} Gbps "
          f"({before / fixed_rate:.1f}x the naive setting)")
    print(f"Falcon (after shift) : {bps_to_gbps(after):6.2f} Gbps at n~{cc_after:.0f} "
          "(re-converged to the degraded array's new optimum)")


if __name__ == "__main__":
    main()
