#!/usr/bin/env python
"""Friendliness: what Falcon's regret terms buy on a shared path.

The §4.5 timeline: Globus starts, HARP joins, then a tuner joins at
t=120 s.  Run the tuner three ways — Falcon-GD, Falcon-BO, and a
regret-free throughput-greedy agent — and compare what's left for the
incumbents.  The greedy agent demonstrates the counterfactual the
paper's utility design prevents.

Run:  python examples/friendliness.py
"""

from __future__ import annotations

from repro.experiments.fig16_friendliness import _run_one
from repro.units import bps_to_gbps


def main() -> None:
    print("Globus at t=0, HARP at t=50, tuner at t=120 (Stampede2->Comet)\n")
    print(f"{'tuner':8s} {'others before':>14s} {'others after':>13s} "
          f"{'degradation':>12s} {'tuner rate':>11s} {'tuner n':>8s}")
    for kind in ("gd", "bo", "greedy"):
        run = _run_one(kind, seed=0, falcon_join=120.0, settle=420.0)
        print(
            f"{run.algorithm:8s} {bps_to_gbps(run.baseline_before_bps):13.1f}G "
            f"{bps_to_gbps(run.baseline_after_bps):12.1f}G "
            f"{100 * run.degradation:11.0f}% "
            f"{bps_to_gbps(run.tuner_bps):10.1f}G "
            f"{run.tuner_concurrency:8.0f}"
        )
    print(
        "\nThe Falcon agents stop where the ~2%-per-worker utility gain "
        "dries up;\nthe greedy agent keeps escalating as long as it can "
        "steal share."
    )


if __name__ == "__main__":
    main()
