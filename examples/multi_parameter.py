#!/usr/bin/env python
"""Multi-parameter tuning: concurrency + parallelism + pipelining.

The §4.4 scenario: a Stampede2→Comet WAN transfer (40 Gbps, 60 ms) of a
lots-of-small-files dataset.  With pipelining stuck at 1, every file
pays two control-channel round trips (120 ms) — brutal when the average
file transfers in a few milliseconds.  Falcon_MP (conjugate gradient on
the Eq. 7 utility) discovers deep pipelining and lean parallelism.

Run:  python examples/multi_parameter.py
"""

from __future__ import annotations

import numpy as np

from repro.core import FalconAgent, GradientDescent, attach_agent
from repro.core.conjugate_gradient import ConjugateGradientOptimizer
from repro.core.utility import MultiParamUtility, NonlinearPenaltyUtility
from repro.sim.engine import SimulationEngine
from repro.testbeds.presets import stampede2_comet
from repro.transfer.dataset import small_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.transfer.session import TransferParams
from repro.units import GiB, bps_to_gbps


def run_variant(multi: bool, duration: float = 350.0) -> tuple[float, TransferParams]:
    testbed = stampede2_comet()
    engine = SimulationEngine(dt=0.1)
    network = FluidTransferNetwork(engine)
    dataset = small_dataset(total_bytes=20 * GiB, seed=3)
    session = testbed.new_session(
        dataset,
        name="mp" if multi else "single",
        repeat=True,
        # The single-parameter agent transfers with GridFTP's stock
        # pipelining; it never tunes it.
        params=TransferParams(concurrency=1, parallelism=1, pipelining=8),
    )
    network.add_session(session)

    if multi:
        agent = FalconAgent(
            session=session,
            optimizer=ConjugateGradientOptimizer(
                concurrency_bounds=(1, 40),
                parallelism_bounds=(1, 8),
                pipelining_bounds=(1, 64),
            ),
            utility=MultiParamUtility(),
            rng=np.random.default_rng(1),
        )
    else:
        agent = FalconAgent(
            session=session,
            optimizer=GradientDescent(lo=1, hi=40),
            utility=NonlinearPenaltyUtility(),
            rng=np.random.default_rng(1),
        )
    attach_agent(engine, agent, interval=testbed.sample_interval)
    engine.run_for(duration)
    tail = agent.throughputs()[-12:]
    return float(tail.mean()), session.params


def main() -> None:
    dataset = small_dataset(total_bytes=20 * GiB, seed=3)
    print(
        f"dataset: {dataset.file_count} files, mean "
        f"{dataset.mean_file_bytes / 2**20:.2f} MiB — control stalls dominate"
    )

    single_bps, single_params = run_variant(multi=False)
    mp_bps, mp_params = run_variant(multi=True)

    print(f"\nFalcon    (concurrency only): {bps_to_gbps(single_bps):6.2f} Gbps  "
          f"final n={single_params.concurrency}, p={single_params.parallelism}, "
          f"q={single_params.pipelining}")
    print(f"Falcon_MP (n, p, q jointly) : {bps_to_gbps(mp_bps):6.2f} Gbps  "
          f"final n={mp_params.concurrency}, p={mp_params.parallelism}, "
          f"q={mp_params.pipelining}")
    print(f"\nmulti-parameter gain: {mp_bps / single_bps:.2f}x "
          f"(paper reports up to ~1.3x on small files)")


if __name__ == "__main__":
    main()
