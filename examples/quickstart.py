#!/usr/bin/env python
"""Quickstart: tune one transfer with Falcon-GD on the HPCLab testbed.

Builds the 40 Gbps HPCLab environment from Table 1, starts a 1000x1GB
transfer, attaches a Falcon agent (Gradient Descent + the Eq. 4
utility), and prints the agent's decisions as it discovers that ~9
concurrent workers saturate the NVMe write array.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import FalconAgent, GradientDescent, NonlinearPenaltyUtility, attach_agent
from repro.sim.engine import SimulationEngine
from repro.testbeds.presets import hpclab
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.units import bps_to_gbps, format_rate


def main() -> None:
    # 1. The environment: hosts, storage, network (Table 1's HPCLab row).
    testbed = hpclab()
    print(testbed.describe())
    print(f"analytic optimum: {testbed.optimal_concurrency()} workers "
          f"-> {format_rate(testbed.max_throughput())}")

    # 2. The simulation: an engine plus the fluid executor that
    #    arbitrates all sessions across shared resources.
    engine = SimulationEngine(dt=0.1)
    network = FluidTransferNetwork(engine)

    # 3. The transfer: 1000 x 1 GB files (the paper's main workload).
    session = testbed.new_session(uniform_dataset(1000), name="quickstart")
    network.add_session(session)

    # 4. The agent: GD search + game-theory-inspired utility.  All
    #    pacing lives on the simulation clock — one decision per
    #    3-second sample interval.
    agent = FalconAgent(
        session=session,
        optimizer=GradientDescent(lo=1, hi=32),
        utility=NonlinearPenaltyUtility(),  # Eq. 4: B=10, K=1.02
        rng=np.random.default_rng(0),
    )
    attach_agent(engine, agent, interval=testbed.sample_interval)

    # 5. Run five simulated minutes and watch the search converge.
    engine.run_for(300.0)

    print("\n time   concurrency   throughput      utility")
    for record in agent.history:
        print(
            f"{record.time:6.0f}s {record.params.concurrency:8d}     "
            f"{bps_to_gbps(record.throughput_bps):8.2f} Gbps {record.utility:10.3f}"
        )

    tail = agent.throughputs()[-10:]
    print(
        f"\nsteady state: {bps_to_gbps(tail.mean()):.2f} Gbps "
        f"({100 * tail.mean() / testbed.max_throughput():.0f}% of achievable), "
        f"concurrency ~{agent.concurrencies()[-10:].mean():.0f} "
        f"(optimum {testbed.optimal_concurrency()})"
    )


if __name__ == "__main__":
    main()
