#!/usr/bin/env python
"""The Falcon transfer service: submit jobs, get tuned transfers back.

The paper's conclusion proposes deploying Falcon as a service so users
never touch tuning knobs.  This example drives the
:class:`repro.service.FalconService` facade: five jobs submitted
against HPCLab with a two-job concurrency limit — the service queues
the rest, runs each under its own Falcon agent, and reports per-job
statistics.  Jobs running simultaneously split the storage array fairly
without any broker, because every agent shares the same concave
utility.

Run:  python examples/transfer_service.py
"""

from __future__ import annotations

from repro.service import FalconService
from repro.sim.engine import SimulationEngine
from repro.testbeds.presets import hpclab
from repro.transfer.dataset import small_dataset, uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.units import GB, GiB, format_duration


def main() -> None:
    engine = SimulationEngine(dt=0.1)
    network = FluidTransferNetwork(engine)
    testbed = hpclab()
    service = FalconService(engine=engine, network=network, max_active=2, seed=7)

    jobs = [
        service.submit(testbed, uniform_dataset(120, 1 * GB), name="genomics-batch"),
        service.submit(testbed, uniform_dataset(200, 1 * GB), name="cosmology-snap"),
        service.submit(testbed, uniform_dataset(60, 1 * GB), name="detector-dump"),
        service.submit(testbed, small_dataset(total_bytes=8 * GiB, seed=1), name="logs-small"),
        service.submit(testbed, uniform_dataset(90, 1 * GB), name="climate-fields"),
    ]

    print("submitted 5 jobs (max_active=2):")
    for job in jobs:
        print(f"  {job.name}: {job.state.value}")

    engine.run_for(900.0)

    print("\ncompletion reports:")
    for job in service.jobs:
        wait = format_duration(job.queue_wait)
        print(f"  {job.name:15s} [{job.state.value}] queued {wait:>7s} | "
              f"{job.report.summary() if job.report else 'n/a'}")

    done = [j for j in service.jobs if j.report]
    total_bytes = sum(j.report.bytes_moved for j in done)
    makespan = max(j.finished_at for j in done)
    print(f"\n{len(done)} jobs, {total_bytes / 1e12:.2f} TB total, "
          f"makespan {format_duration(makespan)}")


if __name__ == "__main__":
    main()
