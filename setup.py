"""Setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable wheels cannot be built; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` with modern toolchains) work everywhere.
Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
