"""repro — a reproduction of Falcon (SC '21).

Falcon: online optimization of file transfers in high-speed networks.
The package bundles:

* ``repro.core`` — Falcon itself: the game-theory-inspired utility
  functions and the Hill Climbing / Gradient Descent / Bayesian online
  search algorithms;
* ``repro.sim`` / ``repro.network`` / ``repro.storage`` /
  ``repro.hosts`` / ``repro.transfer`` — the fluid simulation substrate
  standing in for the paper's physical testbeds;
* ``repro.testbeds`` — Table 1's environments as presets;
* ``repro.baselines`` — Globus, HARP, and PCP comparison points;
* ``repro.experiments`` — one module per paper figure/table;
* ``repro.analysis`` — fairness/convergence metrics and traces.
"""

__version__ = "1.0.0"

from repro.core import (
    BayesianOptimizer,
    FalconAgent,
    GradientDescent,
    HillClimbing,
    NonlinearPenaltyUtility,
    attach_agent,
)
from repro.sim.engine import SimulationEngine
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork

__all__ = [
    "__version__",
    "BayesianOptimizer",
    "FalconAgent",
    "GradientDescent",
    "HillClimbing",
    "NonlinearPenaltyUtility",
    "attach_agent",
    "SimulationEngine",
    "uniform_dataset",
    "FluidTransferNetwork",
]
