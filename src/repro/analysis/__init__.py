"""Analysis utilities: fairness metrics, convergence detection, traces, tables."""

from repro.analysis.convergence import convergence_time, steady_state
from repro.analysis.fairness import jain_index, share_ratio
from repro.analysis.tables import format_table
from repro.analysis.trace import SessionTrace, TraceRecorder

__all__ = [
    "convergence_time",
    "steady_state",
    "jain_index",
    "share_ratio",
    "format_table",
    "SessionTrace",
    "TraceRecorder",
]
