"""Terminal charts for traces.

The paper's figures are time series; without a plotting stack the next
best thing is a decent ASCII rendering, so experiment ``main()``s and
the CLI can show the *shape* of a trace (convergence ramps, join/leave
steps, probe oscillation) directly in the terminal.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: Eight-level block characters for sparklines.
_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line block-character rendering of a series.

    Values are down-sampled (by averaging buckets) to ``width`` points
    and scaled to the series' own min/max.
    """
    v = np.asarray(list(values), dtype=float)
    if v.size == 0:
        return ""
    v = _downsample(v, width)
    lo, hi = float(v.min()), float(v.max())
    if hi - lo < 1e-12:
        return _BLOCKS[0] * v.size
    levels = ((v - lo) / (hi - lo) * (len(_BLOCKS) - 1)).round().astype(int)
    return "".join(_BLOCKS[i] for i in levels)


def line_chart(
    series: dict[str, Sequence[float]],
    height: int = 10,
    width: int = 64,
    y_label: str = "",
) -> str:
    """A multi-series ASCII line chart.

    Each named series is drawn with its own marker character; the
    y-axis is annotated with the shared min/max.
    """
    if not series:
        return ""
    markers = "*+ox#@%&"
    arrays = {name: _downsample(np.asarray(list(v), dtype=float), width) for name, v in series.items()}
    arrays = {name: v for name, v in arrays.items() if v.size}
    if not arrays:
        return ""
    lo = min(float(v.min()) for v in arrays.values())
    hi = max(float(v.max()) for v in arrays.values())
    span = hi - lo if hi - lo > 1e-12 else 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, v) in enumerate(arrays.items()):
        marker = markers[idx % len(markers)]
        for x in range(v.size):
            y = int((v[x] - lo) / span * (height - 1))
            grid[height - 1 - y][x] = marker

    lines = []
    for row, cells in enumerate(grid):
        if row == 0:
            prefix = f"{hi:>10.3g} |"
        elif row == height - 1:
            prefix = f"{lo:>10.3g} |"
        else:
            prefix = " " * 10 + " |"
        lines.append(prefix + "".join(cells))
    lines.append(" " * 11 + "-" * width)
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(arrays)
    )
    lines.append(" " * 11 + legend + (f"   [{y_label}]" if y_label else ""))
    return "\n".join(lines)


def _downsample(v: np.ndarray, width: int) -> np.ndarray:
    """Average-bucket a series down to at most ``width`` points."""
    if v.size <= width:
        return v
    edges = np.linspace(0, v.size, width + 1).astype(int)
    return np.array([v[a:b].mean() for a, b in zip(edges[:-1], edges[1:]) if b > a])
