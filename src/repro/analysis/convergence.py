"""Convergence-time detection and steady-state statistics.

Used by the Fig. 7/8 benches to compare how long each search algorithm
takes to reach (and stay near) its final operating point.
"""

from __future__ import annotations

import numpy as np


def steady_state(values: np.ndarray, tail_fraction: float = 0.3) -> tuple[float, float]:
    """Mean and standard deviation of the trailing portion of a series.

    Parameters
    ----------
    values:
        Time-ordered samples.
    tail_fraction:
        Fraction of the series (from the end) treated as steady state.
    """
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        return 0.0, 0.0
    if not 0 < tail_fraction <= 1:
        raise ValueError("tail_fraction must be in (0, 1]")
    tail = v[int(np.floor(v.size * (1 - tail_fraction))) :]
    return float(tail.mean()), float(tail.std())


def convergence_time(
    times: np.ndarray,
    values: np.ndarray,
    target: float | None = None,
    tolerance: float = 0.15,
    hold: int = 3,
) -> float:
    """First time the series enters and *stays* within tolerance of target.

    Parameters
    ----------
    times, values:
        The series (equal length, time-ordered).
    target:
        Level considered "converged"; defaults to the steady-state mean.
    tolerance:
        Relative band around the target.
    hold:
        Number of consecutive in-band samples required — a single lucky
        sample during the search phase does not count as convergence.

    Returns
    -------
    float
        Convergence timestamp, or ``inf`` if the series never settles.
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if t.shape != v.shape:
        raise ValueError("times and values must align")
    if v.size == 0:
        return float("inf")
    if target is None:
        target, _ = steady_state(v)
    if target == 0:
        return float(t[0])
    band = np.abs(v - target) <= tolerance * abs(target)
    run = 0
    for i, ok in enumerate(band):
        run = run + 1 if ok else 0
        if run >= hold and _mostly(band[i:]):
            return float(t[i - hold + 1])
    return float("inf")


def _mostly(mask: np.ndarray, fraction: float = 0.8) -> bool:
    """True when at least ``fraction`` of the remaining samples hold."""
    return mask.size == 0 or float(mask.mean()) >= fraction


def time_to_fraction_of_max(
    times: np.ndarray, values: np.ndarray, fraction: float = 0.85
) -> float:
    """First time the series reaches ``fraction`` of its own maximum.

    A simpler, monotone notion of convergence speed used when the
    steady state is noisy (e.g. BO's continued exploration).
    """
    t = np.asarray(times, dtype=float)
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        return float("inf")
    threshold = fraction * float(v.max())
    hits = np.flatnonzero(v >= threshold)
    return float(t[hits[0]]) if hits.size else float("inf")
