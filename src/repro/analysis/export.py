"""Exporting experiment results to JSON and CSV.

Experiment ``run()`` functions return nested (frozen) dataclasses; a
release-quality toolkit needs those results to leave the process —
for plotting, archiving, or diffing across code versions.  The
functions here serialise any experiment result: dataclasses become
mappings, numpy scalars/arrays become plain Python, tuples become
lists, and dictionary keys are stringified.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import Any, Mapping, Sequence

import numpy as np


def to_plain(obj: Any) -> Any:
    """Recursively convert a result object to JSON-serialisable types."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_plain(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
    if isinstance(obj, np.ndarray):
        return [to_plain(v) for v in obj.tolist()]
    if isinstance(obj, (np.floating, np.integer, np.bool_)):
        return obj.item()
    if isinstance(obj, Mapping):
        return {_key(k): to_plain(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [to_plain(v) for v in obj]
    if isinstance(obj, float) and (obj != obj or obj in (float("inf"), float("-inf"))):
        return None if obj != obj else ("inf" if obj > 0 else "-inf")
    return obj


def _key(key: Any) -> str:
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def to_json(result: Any, indent: int = 2) -> str:
    """Serialise a result to a JSON string."""
    return json.dumps(to_plain(result), indent=indent, sort_keys=True)


def write_json(result: Any, path: str) -> None:
    """Write a result as JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_json(result))


def rows_to_csv(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render header + rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        writer.writerow([to_plain(cell) for cell in row])
    return buffer.getvalue()


def records_to_csv(records: Sequence[Any]) -> str:
    """CSV from a sequence of same-type dataclass instances.

    Column order follows the dataclass field order; nested values are
    JSON-encoded inline.
    """
    if not records:
        raise ValueError("need at least one record")
    first = records[0]
    if not dataclasses.is_dataclass(first):
        raise TypeError("records must be dataclass instances")
    fields = [f.name for f in dataclasses.fields(first)]
    rows = []
    for record in records:
        row = []
        for name in fields:
            value = to_plain(getattr(record, name))
            if isinstance(value, (dict, list)):
                value = json.dumps(value, sort_keys=True)
            row.append(value)
        rows.append(row)
    return rows_to_csv(fields, rows)


def write_csv(records: Sequence[Any], path: str) -> None:
    """Write dataclass records as CSV to ``path``."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        handle.write(records_to_csv(records))
