"""Fairness metrics for competing transfers.

The paper's fairness claims (§4.2) are about throughput shares of
simultaneously running transfer tasks; Jain's index is the standard
scalar summary (1.0 = perfectly equal, 1/n = one agent has everything).
"""

from __future__ import annotations

import numpy as np


def jain_index(allocations: np.ndarray) -> float:
    """Jain's fairness index ``(Σx)² / (n · Σx²)``.

    Returns 1.0 for an empty or all-zero allocation (nothing is unfair
    about nobody getting anything).
    """
    x = np.asarray(allocations, dtype=float)
    if x.size == 0:
        return 1.0
    if np.any(x < 0):
        raise ValueError("allocations must be non-negative")
    total_sq = x.sum() ** 2
    denom = x.size * (x * x).sum()
    if denom == 0:
        return 1.0
    return float(total_sq / denom)


def share_ratio(allocations: np.ndarray) -> float:
    """Max/min allocation ratio (1.0 = equal; inf if someone got zero)."""
    x = np.asarray(allocations, dtype=float)
    if x.size == 0:
        return 1.0
    lo = float(x.min())
    hi = float(x.max())
    if lo <= 0:
        return float("inf") if hi > 0 else 1.0
    return hi / lo
