"""Aligned text tables for bench output.

The benchmark harness prints each figure/table as rows of
paper-expectation vs measured value; this module is the tiny formatter
they share (no external table dependency).
"""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table.

    Every cell is ``str()``-ed; columns are left-aligned and padded to
    the widest entry.
    """
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        lines.append(line.rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> None:
    """Print a titled table with a blank line around it."""
    print(f"\n=== {title} ===")
    print(format_table(headers, rows))
    print()
