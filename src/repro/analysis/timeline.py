"""Reconstruct run timelines from a structured trace.

A JSONL trace (``repro trace <experiment>`` or any
:class:`~repro.obs.exporters.JsonlExporter` output) is a flat event
stream; this module folds it back into per-session time series —
throughput, utility, concurrency — plus a whole-trace summary table,
so a run can be plotted or diffed without re-simulating.

All times are simulation seconds, throughputs bits per second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.obs.events import (
    MonitorSampleTaken,
    OptimizerDecision,
    SessionComplete,
    SessionStart,
    TraceEvent,
    UtilityEvaluated,
)
from repro.obs.exporters import read_events


@dataclass
class SessionTimeline:
    """Time series for one session, folded from its trace events.

    ``sample_times``/``throughput_bps``/``loss_rate`` come from monitor
    samples (one point per decision interval); ``utilities`` aligns with
    ``utility_times``; ``concurrency`` is the step series of optimizer
    decisions.  Times are simulation seconds.
    """

    session: str
    started_at: float | None = None
    finished_at: float | None = None
    sample_times: list[float] = field(default_factory=list)
    throughput_bps: list[float] = field(default_factory=list)
    loss_rate: list[float] = field(default_factory=list)
    utility_times: list[float] = field(default_factory=list)
    utilities: list[float] = field(default_factory=list)
    decision_times: list[float] = field(default_factory=list)
    concurrency: list[int] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Seconds from session start to completion (0.0 if unknown)."""
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at


def build_timelines(events: Iterable[TraceEvent]) -> dict[str, SessionTimeline]:
    """Fold an event stream into per-session timelines.

    Sessions appear in first-seen order; events of types that carry no
    session (engine steps, faults, jobs) are ignored here — see
    :func:`summarize` for the whole-trace view.
    """
    timelines: dict[str, SessionTimeline] = {}

    def get(name: str) -> SessionTimeline:
        tl = timelines.get(name)
        if tl is None:
            tl = timelines[name] = SessionTimeline(session=name)
        return tl

    for ev in events:
        if isinstance(ev, SessionStart):
            get(ev.session).started_at = ev.time
        elif isinstance(ev, MonitorSampleTaken):
            tl = get(ev.session)
            tl.sample_times.append(ev.time)
            tl.throughput_bps.append(ev.throughput_bps)
            tl.loss_rate.append(ev.loss_rate)
        elif isinstance(ev, UtilityEvaluated):
            tl = get(ev.session)
            tl.utility_times.append(ev.time)
            tl.utilities.append(ev.utility)
        elif isinstance(ev, OptimizerDecision):
            tl = get(ev.session)
            tl.decision_times.append(ev.time)
            tl.concurrency.append(ev.concurrency)
        elif isinstance(ev, SessionComplete):
            get(ev.session).finished_at = ev.time
    return timelines


def load_timelines(path: str | Path) -> dict[str, SessionTimeline]:
    """Read a JSONL trace file and fold it into session timelines."""
    return build_timelines(read_events(path))


@dataclass(frozen=True)
class EventSummary:
    """One row of a trace summary: how often one event type fired."""

    type: str
    count: int
    #: Simulation time of the first and last occurrence, seconds.
    first: float = 0.0
    last: float = 0.0


def summarize(events: Sequence[TraceEvent]) -> list[EventSummary]:
    """Per-event-type counts and time spans, sorted by type name.

    The ``repro trace`` summary table is this list rendered; times are
    simulation seconds.
    """
    spans: dict[str, list[float]] = {}
    counts: dict[str, int] = {}
    for ev in events:
        counts[ev.type] = counts.get(ev.type, 0) + 1
        span = spans.get(ev.type)
        if span is None:
            spans[ev.type] = [ev.time, ev.time]
        else:
            if ev.time < span[0]:
                span[0] = ev.time
            if ev.time > span[1]:
                span[1] = ev.time
    return [
        EventSummary(type=name, count=counts[name], first=spans[name][0], last=spans[name][1])
        for name in sorted(counts)
    ]
