"""Per-second session traces.

Experiments need the continuous view the paper's figures plot —
throughput, concurrency, and loss per second per session — independent
of each agent's decision cadence.  A :class:`TraceRecorder` samples all
registered sessions at a fixed period on the simulation clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.engine import SimulationEngine
from repro.transfer.session import TransferSession


@dataclass
class SessionTrace:
    """Time series for one session."""

    name: str
    times: list[float] = field(default_factory=list)
    throughput_bps: list[float] = field(default_factory=list)
    concurrency: list[int] = field(default_factory=list)
    parallelism: list[int] = field(default_factory=list)
    loss_rate: list[float] = field(default_factory=list)

    def throughputs(self) -> np.ndarray:
        """Throughput series as an array (bps)."""
        return np.array(self.throughput_bps)

    def concurrencies(self) -> np.ndarray:
        """Concurrency series as an array."""
        return np.array(self.concurrency, dtype=float)

    def timestamps(self) -> np.ndarray:
        """Sample times as an array (seconds)."""
        return np.array(self.times)

    def losses(self) -> np.ndarray:
        """Loss-rate series as an array."""
        return np.array(self.loss_rate)

    def window(self, t0: float, t1: float) -> "SessionTrace":
        """Sub-trace restricted to ``t0 <= t < t1``."""
        out = SessionTrace(name=self.name)
        for i, t in enumerate(self.times):
            if t0 <= t < t1:
                out.times.append(t)
                out.throughput_bps.append(self.throughput_bps[i])
                out.concurrency.append(self.concurrency[i])
                out.parallelism.append(self.parallelism[i])
                out.loss_rate.append(self.loss_rate[i])
        return out

    def mean_throughput(self) -> float:
        """Average throughput over the trace (bps)."""
        return float(np.mean(self.throughput_bps)) if self.throughput_bps else 0.0


class TraceRecorder:
    """Samples registered sessions periodically on the engine clock.

    Besides the periodic series, the recorder keeps an *annotation*
    channel: timestamped discrete events (fault injections, retries,
    job restarts) that experiments plot as markers over the continuous
    traces.
    """

    def __init__(self, engine: SimulationEngine, period: float = 1.0) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        self.engine = engine
        self.period = period
        self.traces: dict[str, SessionTrace] = {}
        #: Discrete ``(time, kind, label)`` markers, in insertion order.
        self.events: list[tuple[float, str, str]] = []
        self._sessions: list[TransferSession] = []
        self._last_bytes: dict[str, tuple[float, float]] = {}
        engine.schedule_every(period, self._sample, name="trace-recorder")

    def annotate(self, time: float, kind: str, label: str = "") -> None:
        """Add one discrete event marker to the trace."""
        self.events.append((time, kind, label))

    def events_of(self, kind: str) -> list[tuple[float, str, str]]:
        """Annotation markers of one kind, in time order."""
        return sorted((e for e in self.events if e[1] == kind), key=lambda e: e[0])

    def watch(self, session: TransferSession) -> SessionTrace:
        """Start recording a session; returns its (live) trace."""
        if session.name in self.traces:
            raise ValueError(f"already watching {session.name!r}")
        trace = SessionTrace(name=session.name)
        self.traces[session.name] = trace
        self._sessions.append(session)
        self._last_bytes[session.name] = (self.engine.now, session.total_good_bytes)
        return trace

    def _sample(self) -> None:
        now = self.engine.now
        for session in self._sessions:
            if not session.active:
                continue
            trace = self.traces[session.name]
            # Goodput from byte deltas: the TCP rate sum overstates
            # gap-dominated (small-file) workloads, where workers hold
            # warm windows while stalled on control-channel round trips.
            last_t, last_b = self._last_bytes[session.name]
            span = now - last_t
            goodput = (
                (session.total_good_bytes - last_b) * 8.0 / span if span > 0 else 0.0
            )
            self._last_bytes[session.name] = (now, session.total_good_bytes)
            trace.times.append(now)
            trace.throughput_bps.append(goodput)
            trace.concurrency.append(session.params.concurrency)
            trace.parallelism.append(session.params.parallelism)
            trace.loss_rate.append(session.current_loss)

    def __getitem__(self, name: str) -> SessionTrace:
        return self.traces[name]
