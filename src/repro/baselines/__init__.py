"""Baseline transfer-optimization solutions the paper compares against.

* :mod:`globus` — the fixed, file-size-based heuristic of the Globus
  transfer service: robust, conservative, never adapts.
* :mod:`harp` — HARP (Arslan et al., SC'16 / TPDS'18): historical-
  analysis regression plus real-time probing; tunes once, maximises its
  own predicted throughput, no fairness mechanism.
* :mod:`pcp` — PCP (Yildirim et al.): pure hill climbing on raw
  throughput, the related-work strawman for slow convergence.
* :mod:`golden_section` — GridFTP-APT (Ito et al.): golden-section
  search, fast but freezes after convergence.
* :mod:`stochastic_approx` — ProbData (Yun et al.): Kiefer–Wolfowitz
  stochastic approximation with decaying gains.
"""

from repro.baselines.globus import GlobusController, globus_params
from repro.baselines.golden_section import GoldenSectionSearch
from repro.baselines.harp import HarpController, HistoricalModel
from repro.baselines.pcp import PcpController
from repro.baselines.stochastic_approx import StochasticApproximation

__all__ = [
    "GlobusController",
    "globus_params",
    "GoldenSectionSearch",
    "HarpController",
    "HistoricalModel",
    "PcpController",
    "StochasticApproximation",
]
