"""Globus transfer-service heuristic (paper §4.3 comparison).

Globus "relies on a heuristic solution to tune concurrency along with
parallelism and pipelining.  It uses fixed settings ... thus fails to
react to dynamic conditions" (§4.3).  The published heuristic keys the
setting off average file size — small files get deep pipelining and
little parallelism, large files the reverse — and keeps concurrency
low (2–3) to avoid congesting shared infrastructure.

The numbers below follow the Globus heuristic tiers cited by the HARP
papers; they reproduce the paper's measurements to first order (e.g.
~9 Gbps in HPCLab vs Falcon's 22+, <6 Gbps on the 40 Gbps
Stampede2–Comet path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.transfer.dataset import Dataset
from repro.transfer.session import TransferParams, TransferSession
from repro.units import MiB


def globus_params(dataset: Dataset) -> TransferParams:
    """The fixed setting Globus would pick for this dataset.

    Tiers (average file size):

    * < 50 MiB  → concurrency 2, parallelism 2, pipelining 20
    * < 250 MiB → concurrency 2, parallelism 4, pipelining 5
    * otherwise → concurrency 3, parallelism 8, pipelining 1
    """
    avg = dataset.mean_file_bytes
    if avg < 50 * MiB:
        return TransferParams(concurrency=2, parallelism=2, pipelining=20)
    if avg < 250 * MiB:
        return TransferParams(concurrency=2, parallelism=4, pipelining=5)
    return TransferParams(concurrency=3, parallelism=8, pipelining=1)


@dataclass
class GlobusController:
    """Fixed-setting controller: decide once, never change.

    Satisfies the same ``start()/decide(now)`` protocol as Falcon
    agents so experiments can schedule any mix of controllers.
    """

    session: TransferSession
    dataset: Dataset
    history: list[tuple[float, float]] = field(default_factory=list)

    def start(self) -> None:
        """Apply the heuristic setting."""
        self.session.set_params(globus_params(self.dataset))

    def decide(self, now: float) -> None:
        """Record throughput; Globus never re-tunes."""
        params = self.session.params
        sample = self.session.monitor.take(
            concurrency=params.concurrency,
            parallelism=params.parallelism,
            pipelining=params.pipelining,
        )
        if sample.duration > 0:
            self.history.append((now, sample.throughput_bps))
