"""Golden Section Search tuner (GridFTP-APT; Ito et al., §5 related work).

Ito et al. proposed Golden Section Search to automatically adjust the
number of parallel TCP connections for GridFTP.  GSS assumes a
unimodal objective over a bracket [lo, hi]: it evaluates the two
interior golden-ratio points, discards the losing third of the bracket,
and repeats until the bracket collapses.

Strengths and weaknesses the related-work comparison exercises:

* needs no gradient and converges in O(log) evaluations of the bracket
  width — faster than hill climbing for distant optima;
* but each decision is a full sample transfer, the bracket never
  reopens, so it *cannot adapt* once converged (the paper's core
  argument for continuous online search);
* and with a throughput-only objective it has no overhead regret.
"""

from __future__ import annotations

import math

from repro.core.optimizer import ConcurrencyOptimizer, Observation

#: 1/phi — the golden bracket-shrink ratio.
INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0


class GoldenSectionSearch(ConcurrencyOptimizer):
    """GSS over the concurrency axis, maximising the supplied utility.

    Parameters
    ----------
    lo, hi:
        Initial bracket (inclusive).
    tolerance:
        Bracket width at which the search freezes on the midpoint.
    """

    def __init__(self, lo: int = 1, hi: int = 64, tolerance: int = 2) -> None:
        super().__init__(lo, hi)
        if tolerance < 1:
            raise ValueError("tolerance must be >= 1")
        self.tolerance = int(tolerance)
        self._a = float(lo)
        self._b = float(hi)
        self._x1 = self._b - INV_PHI * (self._b - self._a)
        self._x2 = self._a + INV_PHI * (self._b - self._a)
        self._u1: float | None = None
        self._u2: float | None = None
        self._phase = "x1"  # evaluating x1, then x2, then shrink
        self._converged: int | None = None

    @property
    def converged_setting(self) -> int | None:
        """The frozen setting once the bracket has collapsed (else None)."""
        return self._converged

    def first_setting(self) -> int:
        return self.clamp(self._x1)

    def update(self, obs: Observation) -> int:
        if self._converged is not None:
            return self._converged

        if self._phase == "x1":
            self._u1 = obs.utility
            self._phase = "x2"
            return self.clamp(self._x2)

        self._u2 = obs.utility
        # Shrink toward the better interior point (maximisation).
        if self._u1 >= self._u2:
            self._b = self._x2
        else:
            self._a = self._x1
        if self._b - self._a <= self.tolerance:
            self._converged = self.clamp((self._a + self._b) / 2.0)
            return self._converged
        self._x1 = self._b - INV_PHI * (self._b - self._a)
        self._x2 = self._a + INV_PHI * (self._b - self._a)
        self._u1 = None
        self._u2 = None
        self._phase = "x1"
        return self.clamp(self._x1)

    def reset(self) -> None:
        self.__init__(self.lo, self.hi, self.tolerance)
