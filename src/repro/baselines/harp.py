"""HARP: historical analysis + real-time probing (paper §4.3, Fig. 2).

HARP (Arslan, Guner, Kosar — SC'16; TPDS'18) trains regression models
on *historical transfer logs* to predict throughput as a function of
(concurrency, parallelism, pipelining), refines the prediction with a
short real-time probing phase, then fixes the setting that maximises
its *own predicted throughput*.  Two structural properties follow, and
both are the paper's critique:

1. **History bias** — the paper's HARP instance was trained on 10 Gbps
   networks, so on 40 Gbps paths its throughput ceiling belief is a
   poor extrapolation and it settles ~50% below the achievable rate
   (Fig. 2a).
2. **No fairness mechanism** — its utility is pure throughput.  A
   late-coming HARP probes *under contention*, fits a slower-saturating
   throughput curve, and therefore picks a higher concurrency than the
   incumbent chose when the system was idle — grabbing an outsized
   share (Fig. 2b).

Our implementation distils that mechanism: a class-ceiling belief from
a :class:`HistoricalModel`, three probe intervals, a saturating-curve
fit ``T(c) = Tsat·c / (h + c)``, and the smallest concurrency whose
predicted throughput reaches 95% of the believed ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import curve_fit

from repro.transfer.session import TransferParams, TransferSession
from repro.units import Gbps


@dataclass(frozen=True)
class HistoricalModel:
    """HARP's trained belief about achievable throughput per network class.

    The defaults encode "trained on 10 Gbps networks":

    * 10G-class LAN logs (sub-ms RTT) achieved ~9.5 Gbps;
    * 10G-class WAN logs achieved ~5.2 Gbps;
    * anything faster is extrapolated as ``extrapolation_fraction`` of
      the link rate — the unreliable reach beyond the training data.
    """

    lan_ceiling_bps: float = 9.5 * Gbps
    wan_ceiling_bps: float = 5.2 * Gbps
    trained_capacity_bps: float = 12 * Gbps
    lan_extrapolation_fraction: float = 0.5
    wan_extrapolation_fraction: float = 0.35
    wan_rtt_threshold: float = 5e-3
    parallelism: int = 4
    pipelining: int = 4

    def ceiling(self, path_capacity_bps: float, rtt: float) -> float:
        """Believed achievable throughput for a path.

        WAN classes carry a lower fraction: the 10G training logs show
        long-RTT transfers achieving a smaller share of line rate, and
        the regression carries that ratio into its extrapolation.
        """
        wan = rtt >= self.wan_rtt_threshold
        if path_capacity_bps <= self.trained_capacity_bps:
            ceiling = self.wan_ceiling_bps if wan else self.lan_ceiling_bps
            return min(ceiling, path_capacity_bps)
        fraction = self.wan_extrapolation_fraction if wan else self.lan_extrapolation_fraction
        return fraction * path_capacity_bps


def _saturating(c: np.ndarray, t_sat: float, h: float) -> np.ndarray:
    """The regression form: hyperbolic saturation in concurrency."""
    return t_sat * c / (h + c)


def fit_throughput_curve(
    concurrencies: np.ndarray, throughputs_bps: np.ndarray
) -> tuple[float, float]:
    """Least-squares fit of ``T(c) = Tsat·c/(h+c)`` to probe results.

    Tsat is bounded at 2× the best observation — HARP's regression
    extrapolates, but not without limit.  Returns ``(t_sat, h)``.
    """
    c = np.asarray(concurrencies, dtype=float)
    t = np.asarray(throughputs_bps, dtype=float)
    t_max = float(t.max())
    if t_max <= 0:
        return 0.0, 1.0
    try:
        (t_sat, h), _ = curve_fit(
            _saturating,
            c,
            t,
            p0=[t_max * 1.2, float(c.mean())],
            bounds=([t_max * 0.5, 1e-3], [t_max * 2.0, 1e3]),
            maxfev=2000,
        )
    except RuntimeError:  # no convergence: fall back to linear belief
        per_worker = t_max / float(c[np.argmax(t)])
        return per_worker * 64.0, 64.0
    return float(t_sat), float(h)


def choose_concurrency(
    t_sat: float, h: float, ceiling_bps: float, cc_max: int = 32, target_fraction: float = 0.95
) -> int:
    """Smallest concurrency whose predicted throughput hits the target.

    Target is ``target_fraction × min(ceiling, Tsat)``.  If the fit can
    never reach it, return ``cc_max`` (throughput-maximising and
    monotone — HARP has no reason to stop early).
    """
    target = target_fraction * min(ceiling_bps, t_sat)
    if target <= 0:
        return 1
    for c in range(1, cc_max + 1):
        if _saturating(np.array([float(c)]), t_sat, h)[0] >= target:
            return c
    return cc_max


@dataclass
class HarpController:
    """Probe → fit → fix controller for one session.

    Parameters
    ----------
    session:
        The transfer to control.
    model:
        Historical beliefs.
    probe_ladder:
        Concurrency values evaluated during the probing phase, one
        sample interval each.
    cc_max:
        Hard concurrency cap.
    """

    session: TransferSession
    model: HistoricalModel = field(default_factory=HistoricalModel)
    probe_ladder: tuple[int, ...] = (2, 4, 8)
    cc_max: int = 32
    history: list[tuple[float, int, float]] = field(default_factory=list)
    chosen_concurrency: int | None = None
    _probe_results: list[tuple[int, float]] = field(default_factory=list)
    _probe_index: int = 0

    def start(self) -> None:
        """Begin the probing phase."""
        first = self.probe_ladder[0]
        self.session.set_params(
            TransferParams(
                concurrency=first,
                parallelism=self.model.parallelism,
                pipelining=self.model.pipelining,
            )
        )

    def decide(self, now: float) -> None:
        """One sample interval: record, and advance probe/fix state."""
        params = self.session.params
        sample = self.session.monitor.take(
            concurrency=params.concurrency,
            parallelism=params.parallelism,
            pipelining=params.pipelining,
        )
        if sample.duration <= 0:
            return
        self.history.append((now, params.concurrency, sample.throughput_bps))

        if self.chosen_concurrency is not None:
            return  # fixed for the rest of the transfer

        self._probe_results.append((params.concurrency, sample.throughput_bps))
        self._probe_index += 1
        if self._probe_index < len(self.probe_ladder):
            self.session.set_params(
                params.with_(concurrency=self.probe_ladder[self._probe_index])
            )
            return

        cc, tput = zip(*self._probe_results)
        t_sat, h = fit_throughput_curve(np.array(cc), np.array(tput))
        ceiling = self.model.ceiling(self.session.path.capacity, self.session.path.rtt)
        self.chosen_concurrency = choose_concurrency(t_sat, h, ceiling, self.cc_max)
        self.session.set_params(params.with_(concurrency=self.chosen_concurrency))
