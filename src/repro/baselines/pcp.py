"""PCP-style baseline: hill climbing on raw throughput (related work).

Yildirim et al.'s PCP "uses a simple hill climbing method to identify
the optimal value, thus leads to suboptimal performance in most cases"
(§5).  Composing our :class:`HillClimbing` search with the throughput-
only utility (Eq. 1) reproduces it, and gives the ablation benches a
regret-free adaptive baseline: it converges slowly *and*, because its
utility has no penalty terms, it keeps pushing concurrency as long as
any throughput gain is measurable.
"""

from __future__ import annotations

import numpy as np

from repro.core.agent import FalconAgent
from repro.core.hill_climbing import HillClimbing
from repro.core.utility import ThroughputUtility
from repro.transfer.session import TransferSession


class PcpController(FalconAgent):
    """A Falcon agent body with PCP's brain: HC over raw throughput."""

    def __init__(
        self,
        session: TransferSession,
        hi: int = 64,
        threshold: float = 0.03,
        jitter: float = 0.03,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(
            session=session,
            optimizer=HillClimbing(lo=1, hi=hi, threshold=threshold),
            utility=ThroughputUtility(),
            jitter=jitter,
            rng=rng,
        )
