"""Stochastic-approximation tuner (ProbData; Yun et al., §5 related work).

ProbData explores transfer settings with Kiefer–Wolfowitz stochastic
approximation: probe ``n ± c_k``, step along the finite-difference
gradient with gain ``a_k``, and *decay* both sequences

``a_k = a0 / (k + 1)^alpha``,  ``c_k = c0 / (k + 1)^gamma``

so the iterates provably converge under noise.  The decay is also why
the paper dismisses it: "it takes several hours to converge, which
makes it impractical" and the shrinking gains cannot track changing
conditions.  The related-work bench shows exactly that: early progress
comparable to GD, then a long asymptotic crawl, and no re-adaptation.
"""

from __future__ import annotations

from repro.core.optimizer import ConcurrencyOptimizer, Observation


class StochasticApproximation(ConcurrencyOptimizer):
    """Kiefer–Wolfowitz SA over the concurrency axis.

    Parameters
    ----------
    lo, hi:
        Search-domain bounds.
    start:
        Initial iterate.
    a0, alpha:
        Gain sequence scale and decay exponent.
    c0, gamma:
        Probe-offset sequence scale and decay exponent (offsets are
        rounded to >= 1 since concurrency is integral).
    """

    def __init__(
        self,
        lo: int = 1,
        hi: int = 64,
        start: int = 4,
        a0: float = 30.0,
        alpha: float = 0.8,
        c0: float = 4.0,
        gamma: float = 0.3,
    ) -> None:
        super().__init__(lo, hi)
        if a0 <= 0 or c0 <= 0:
            raise ValueError("gain scales must be positive")
        if not 0.5 < alpha <= 1.0:
            raise ValueError("alpha must lie in (0.5, 1] for convergence")
        self.a0, self.alpha = float(a0), float(alpha)
        self.c0, self.gamma = float(c0), float(gamma)
        self._x = float(self.clamp(start))
        self._k = 0
        self._phase = "low"
        self._u_low: float | None = None

    @property
    def iterate(self) -> float:
        """Current (continuous) iterate."""
        return self._x

    @property
    def step_count(self) -> int:
        """Completed SA iterations."""
        return self._k

    def _c_k(self) -> int:
        return max(1, round(self.c0 / (self._k + 1) ** self.gamma))

    def _a_k(self) -> float:
        return self.a0 / (self._k + 1) ** self.alpha

    def first_setting(self) -> int:
        return self.clamp(self._x - self._c_k())

    def update(self, obs: Observation) -> int:
        if self._phase == "low":
            self._u_low = obs.utility
            self._phase = "high"
            return self.clamp(self._x + self._c_k())

        u_low, u_high = self._u_low, obs.utility
        c = self._c_k()
        # Normalised finite-difference gradient (relative change per
        # concurrency unit), stepped with the decaying gain.
        gradient = (u_high - u_low) / (2.0 * c * max(abs(u_low), 1e-12))
        self._x = float(min(self.hi, max(self.lo, self._x + self._a_k() * gradient)))
        self._k += 1
        self._phase = "low"
        self._u_low = None
        return self.clamp(self._x - self._c_k())

    def reset(self) -> None:
        self._k = 0
        self._phase = "low"
        self._u_low = None
