"""Command-line interface.

Usage::

    python -m repro list-testbeds
    python -m repro list-experiments
    python -m repro run fig09                # regenerate one figure
    python -m repro trace fig07 --quick      # same, with an event trace
    python -m repro tune hpclab --optimizer bo --duration 240
    python -m repro lint src/repro           # repo-specific invariant checks

The CLI is a thin veneer over the library — everything it does is one
or two calls into ``repro.experiments`` / ``repro.core``.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Callable, Sequence

from repro.analysis.tables import format_table
from repro.experiments import REGISTRY
from repro.testbeds import presets
from repro.units import bps_to_gbps, format_rate, seconds_to_ms

#: CLI name -> testbed factory.
TESTBEDS: dict[str, Callable] = {
    "emulab": presets.emulab_fig4,
    "emulab48": presets.emulab_high_optimal,
    "xsede": presets.xsede,
    "hpclab": presets.hpclab,
    "campus": presets.campus_cluster,
    "stampede2-comet": presets.stampede2_comet,
}

#: CLI name -> experiment module (must expose main()).  Alias of the
#: library-level registry; kept under the historical CLI name.
EXPERIMENTS = REGISTRY


def cmd_list_testbeds(_args: argparse.Namespace) -> int:
    """Print the available testbed presets."""
    rows = []
    for name, factory in TESTBEDS.items():
        tb = factory()
        rows.append(
            (
                name,
                format_rate(tb.path.capacity, 0),
                f"{seconds_to_ms(tb.path.rtt):g}ms",
                tb.bottleneck,
                tb.optimal_concurrency(),
                format_rate(tb.max_throughput(), 1),
            )
        )
    print(format_table(["name", "bandwidth", "rtt", "bottleneck", "n*", "achievable"], rows))
    return 0


def cmd_list_experiments(_args: argparse.Namespace) -> int:
    """Print the runnable experiments with their docstring headline."""
    rows = []
    for name, module_path in EXPERIMENTS.items():
        module = importlib.import_module(module_path)
        headline = (module.__doc__ or "").strip().splitlines()[0]
        rows.append((name, headline))
    print(format_table(["experiment", "description"], rows))
    return 0


def _runner_pieces(args: argparse.Namespace):
    """(cache, progress) from the run subcommand's flags.

    Progress goes through a single :class:`ProgressWriter` so parallel
    task completions under ``--jobs N`` never interleave mid-line.
    """
    from repro.runner import ProgressWriter, ResultCache, default_cache_dir

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    return cache, ProgressWriter(sys.stderr)


def cmd_run(args: argparse.Namespace) -> int:
    """Run one experiment (or --all) and print the rendered tables."""
    if args.all:
        return _run_all(args)
    if args.experiment is None:
        print("pass an experiment name or --all; try `list-experiments`")
        return 2
    module_path = EXPERIMENTS.get(args.experiment)
    if module_path is None:
        print(f"unknown experiment {args.experiment!r}; try `list-experiments`")
        return 2
    from repro.runner import use_runner

    cache, progress = _runner_pieces(args)
    with use_runner(jobs=args.jobs, cache=cache, progress=progress):
        importlib.import_module(module_path).main()
    return 0


def _run_all(args: argparse.Namespace) -> int:
    """Regenerate every registered experiment through the suite runner."""
    import time

    from repro.runner.suite import run_suite

    cache, progress = _runner_pieces(args)
    names = list(EXPERIMENTS)
    start = time.perf_counter()
    outcomes = run_suite(
        names, quick=args.quick, jobs=args.jobs, cache=cache, progress=progress
    )
    for outcome in outcomes:
        print(f"== {outcome.name} ==")
        print(outcome.output)
        print()
    wall = time.perf_counter() - start
    replayed = sum(1 for o in outcomes if o.cached)
    print(
        f"{len(outcomes)} experiments in {wall:.1f}s "
        f"(jobs={args.jobs}, {replayed} from cache)",
        file=sys.stderr,
    )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one experiment under tracing; write JSONL, print a summary.

    The experiment executes serially and uncached (a pool worker's
    events would be lost and a cache replay emits none), so the trace
    covers every simulated event.  Same seed ⇒ byte-identical file.
    """
    module_path = EXPERIMENTS.get(args.experiment)
    if module_path is None:
        print(f"unknown experiment {args.experiment!r}; try `list-experiments`")
        return 2
    from repro.analysis.timeline import summarize
    from repro.obs import InMemoryExporter, JsonlExporter, use_tracing
    from repro.runner import use_runner
    from repro.runner.suite import render_experiment

    out = args.out or f"{args.experiment}.trace.jsonl"
    memory = InMemoryExporter()
    with JsonlExporter(out) as sink:
        with use_tracing(sink, memory) as tracer:
            with use_runner(jobs=1, cache=None):
                output = render_experiment(args.experiment, quick=args.quick)
    print(output)
    rows = [
        (s.type, s.count, f"{s.first:.1f}", f"{s.last:.1f}")
        for s in summarize(memory.events)
    ]
    print(format_table(["event", "count", "first[s]", "last[s]"], rows))
    counters = tracer.metrics.snapshot()["counters"]
    decisions = int(counters.get("optimizer.decisions", 0))
    print(
        f"{len(memory.events)} events ({decisions} optimizer decisions) -> {out}",
        file=sys.stderr,
    )
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Run an experiment and write its result as JSON."""
    module_path = EXPERIMENTS.get(args.experiment)
    if module_path is None:
        print(f"unknown experiment {args.experiment!r}; try `list-experiments`")
        return 2
    from repro.analysis.export import write_json

    module = importlib.import_module(module_path)
    result = module.run()
    out = args.out or f"{args.experiment}.json"
    write_json(result, out)
    print(f"wrote {out}")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    """Run Falcon on one testbed and report the outcome."""
    factory = TESTBEDS.get(args.testbed)
    if factory is None:
        print(f"unknown testbed {args.testbed!r}; try `list-testbeds`")
        return 2
    from repro.experiments.common import launch_falcon, make_context

    ctx = make_context(seed=args.seed)
    if args.profile:
        ctx.engine.enable_profiling()
    tb = factory()
    launched = launch_falcon(ctx, tb, kind=args.optimizer)
    injector = None
    if args.faults:
        from repro.faults import ChaosRng, FaultInjector, chaos_plan

        plan = chaos_plan(args.faults, horizon=args.duration, rng=ChaosRng(ctx.streams))
        injector = FaultInjector(
            ctx.engine, ctx.network, plan, streams=ctx.streams, recorder=ctx.recorder
        ).arm()
    ctx.engine.run_for(args.duration)
    agent = launched.controller
    tail = slice(max(0, len(agent.history) - 10), None)
    tputs = agent.throughputs()[tail]
    ccs = agent.concurrencies()[tail]
    print(f"{tb.name}: optimizer={args.optimizer} duration={args.duration:.0f}s")
    print(
        f"steady throughput {bps_to_gbps(float(tputs.mean())):.2f} Gbps "
        f"({100 * float(tputs.mean()) / tb.max_throughput():.0f}% of achievable), "
        f"concurrency ~{float(ccs.mean()):.0f} (optimum {tb.optimal_concurrency()})"
    )
    from repro.analysis.ascii_chart import sparkline

    print(f"throughput  {sparkline(launched.trace.throughput_bps)}")
    print(f"concurrency {sparkline(launched.trace.concurrency)}")
    if injector is not None:
        session = launched.session
        print(
            f"faults: {len(injector.records())} events, "
            f"{session.worker_crashes} worker crashes, "
            f"{session.files_requeued} files requeued, "
            f"{session.stalled_seconds:.1f}s stalled"
        )
        for rec in injector.log:
            print(f"  {rec}")
    if args.profile:
        print()
        print(ctx.engine.profile.report())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Falcon (SC'21) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-testbeds", help="show testbed presets").set_defaults(
        fn=cmd_list_testbeds
    )
    sub.add_parser("list-experiments", help="show runnable experiments").set_defaults(
        fn=cmd_list_experiments
    )

    run = sub.add_parser("run", help="regenerate paper figures/tables")
    run.add_argument(
        "experiment", nargs="?", default=None, help="experiment name (see list-experiments)"
    )
    run.add_argument("--all", action="store_true", help="run every registered experiment")
    run.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="process fan-out width (default 1)"
    )
    run.add_argument(
        "--no-cache", action="store_true", help="skip the content-addressed result cache"
    )
    run.add_argument(
        "--cache-dir", default=None, help="cache directory (default .repro-cache or $REPRO_CACHE_DIR)"
    )
    run.add_argument(
        "--quick", action="store_true", help="reduced-duration profile (CI-sized horizons)"
    )
    run.set_defaults(fn=cmd_run)

    trace = sub.add_parser("trace", help="run an experiment with event tracing")
    trace.add_argument("experiment", help="experiment name (see list-experiments)")
    trace.add_argument(
        "--out", default=None, help="trace path (default <name>.trace.jsonl)"
    )
    trace.add_argument(
        "--quick", action="store_true", help="reduced-duration profile (CI-sized horizons)"
    )
    trace.set_defaults(fn=cmd_trace)

    export = sub.add_parser("export", help="run an experiment and write JSON")
    export.add_argument("experiment", help="experiment name (see list-experiments)")
    export.add_argument("--out", default=None, help="output path (default <name>.json)")
    export.set_defaults(fn=cmd_export)

    tune = sub.add_parser("tune", help="run Falcon on a testbed")
    tune.add_argument("testbed", help="testbed name (see list-testbeds)")
    tune.add_argument("--optimizer", choices=("gd", "bo", "hc"), default="gd")
    tune.add_argument("--duration", type=float, default=300.0)
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument(
        "--profile",
        action="store_true",
        help="print per-subsystem wall-time counters after the run",
    )
    from repro.faults.presets import CHAOS_PRESETS

    tune.add_argument(
        "--faults",
        choices=sorted(CHAOS_PRESETS),
        default=None,
        help="inject a seeded chaos preset during the run",
    )
    tune.set_defaults(fn=cmd_tune)

    from repro.devtools.cli import add_lint_parser

    add_lint_parser(sub)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)
