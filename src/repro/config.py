"""Global simulation defaults.

These mirror the constants the paper states explicitly (sample-transfer
durations, utility coefficients) plus simulator-only knobs (fluid time
step, measurement jitter) that have no paper analogue but control the
fidelity/cost trade-off of the substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SimConfig:
    """Tunable simulation-wide parameters.

    Attributes
    ----------
    dt:
        Fluid-integration time step in seconds.  Flow rates are
        recomputed every ``dt``; 0.1 s resolves TCP ramping (hundreds of
        ms) without making 10-minute experiments slow.
    measurement_jitter:
        Standard deviation of the multiplicative Gaussian noise applied
        to *measured* throughput samples (the true fluid rates stay
        exact).  The paper's stability discussion (choice of K, BO vs GD
        fluctuations) only exists because real measurements are noisy.
    local_sample_interval:
        Sample-transfer evaluation window for local-area transfers
        (paper §4: 3 s).
    wide_sample_interval:
        Evaluation window for wide-area transfers (paper §4: 5 s).
    startup_ramp_rtts:
        Number of RTTs a fresh TCP stream needs to approach its
        equilibrium share (slow-start abstraction).
    min_ramp_time:
        Lower bound on the ramp time constant, seconds.  Keeps sub-ms
        RTT LAN flows from ramping unphysically fast.
    """

    dt: float = 0.1
    measurement_jitter: float = 0.02
    local_sample_interval: float = 3.0
    wide_sample_interval: float = 5.0
    startup_ramp_rtts: float = 20.0
    min_ramp_time: float = 0.25

    def with_(self, **kwargs) -> "SimConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: Default configuration used when none is supplied explicitly.
DEFAULT_CONFIG = SimConfig()

# ---------------------------------------------------------------------------
# Utility-function coefficients (paper §3.1).
# ---------------------------------------------------------------------------

#: Loss-penalty coefficient B (paper: "B = 10 works well with most
#: commonly used TCP variants").
DEFAULT_LOSS_PENALTY_B = 10.0

#: Nonlinear concurrency-regret base K (paper: "we set K = 1.02 ... to
#: strike a balance between stability and reduced upper limit").
DEFAULT_CONCURRENCY_BASE_K = 1.02

#: Linear concurrency-penalty coefficient C examples used in Fig. 6.
LINEAR_PENALTY_C_LOW = 0.01
LINEAR_PENALTY_C_HIGH = 0.02

# ---------------------------------------------------------------------------
# Search-algorithm defaults (paper §3.2).
# ---------------------------------------------------------------------------

#: Hill-Climbing relative-improvement threshold (paper: "3% by default").
HILL_CLIMBING_THRESHOLD = 0.03

#: Bayesian optimization: random-sampling bootstrap length (paper: 3).
BO_RANDOM_SAMPLES = 3

#: Bayesian optimization: sliding window of past observations (paper: 20).
BO_OBSERVATION_WINDOW = 20

#: Default upper bound of the concurrency search space.
DEFAULT_MAX_CONCURRENCY = 64
