"""Falcon core: utility functions, online optimizers, agents.

The public surface a downstream user needs:

* :class:`~repro.core.utility.NonlinearPenaltyUtility` — the paper's
  Eq. 4 utility (the default);
* :class:`~repro.core.hill_climbing.HillClimbing`,
  :class:`~repro.core.gradient_descent.GradientDescent`,
  :class:`~repro.core.bayesian.BayesianOptimizer` — the three online
  search algorithms (§3.2);
* :class:`~repro.core.conjugate_gradient.ConjugateGradientOptimizer` —
  multi-parameter search (§4.4);
* :class:`~repro.core.agent.FalconAgent` /
  :func:`~repro.core.controller.attach_agent` — binding an optimizer to
  a live transfer session.
"""

from repro.core.agent import FalconAgent
from repro.core.bayesian import BayesianOptimizer
from repro.core.conjugate_gradient import ConjugateGradientOptimizer
from repro.core.controller import attach_agent
from repro.core.gradient_descent import GradientDescent
from repro.core.hill_climbing import HillClimbing
from repro.core.optimizer import ConcurrencyOptimizer, MultiParamOptimizer, Observation
from repro.core.utility import (
    LinearPenaltyUtility,
    LossRegretUtility,
    MultiParamUtility,
    NonlinearPenaltyUtility,
    ThroughputUtility,
    concavity_limit,
)

__all__ = [
    "FalconAgent",
    "BayesianOptimizer",
    "ConjugateGradientOptimizer",
    "attach_agent",
    "GradientDescent",
    "HillClimbing",
    "ConcurrencyOptimizer",
    "MultiParamOptimizer",
    "Observation",
    "LinearPenaltyUtility",
    "LossRegretUtility",
    "MultiParamUtility",
    "NonlinearPenaltyUtility",
    "ThroughputUtility",
    "concavity_limit",
]
