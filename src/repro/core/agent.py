"""The Falcon agent: utility + optimizer bound to one transfer task.

Each competing transfer runs its *own* agent (the paper's "each Falcon
agent will enter a regret minimization dynamics").  An agent wakes once
per sample interval, converts the interval's measurements to a utility
value, feeds the optimizer, and applies the proposed setting for the
next interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.optimizer import ConcurrencyOptimizer, MultiParamOptimizer, Observation
from repro.core.utility import NonlinearPenaltyUtility, UtilityFunction
from repro.obs.events import MonitorSampleTaken, OptimizerDecision, UtilityEvaluated
from repro.obs.tracer import current_tracer
from repro.transfer.session import TransferParams, TransferSession


@dataclass(frozen=True)
class DecisionRecord:
    """One row of an agent's decision history.

    Attributes
    ----------
    time:
        Simulation time at which the decision was made (end of the
        evaluated interval).
    params:
        Setting that was evaluated during the interval.
    throughput_bps / loss_rate:
        Measured (jittered) interval performance.
    utility:
        Utility assigned to the interval.
    next_params:
        Setting chosen for the following interval.
    """

    time: float
    params: TransferParams
    throughput_bps: float
    loss_rate: float
    utility: float
    next_params: TransferParams


@dataclass
class FalconAgent:
    """Online tuner for one transfer session.

    Parameters
    ----------
    session:
        The transfer this agent controls.
    optimizer:
        A single-parameter (:class:`ConcurrencyOptimizer`) or
        multi-parameter (:class:`MultiParamOptimizer`) search.
    utility:
        Scoring function; all competing agents must share the same one
        for the equilibrium guarantee to hold.
    jitter:
        Measurement-noise level passed to the monitor.
    rng:
        Random stream for measurement jitter.
    """

    session: TransferSession
    optimizer: ConcurrencyOptimizer | MultiParamOptimizer
    utility: UtilityFunction = field(default_factory=NonlinearPenaltyUtility)
    jitter: float = 0.02
    rng: np.random.Generator | None = None
    history: list[DecisionRecord] = field(default_factory=list)

    def start(self) -> None:
        """Apply the optimizer's first setting to the session."""
        first = self.optimizer.first_setting()
        self._apply(first)

    def decide(self, now: float) -> None:
        """One decision tick: measure, score, ask, apply."""
        params = self.session.params
        sample = self.session.monitor.take(
            concurrency=params.concurrency,
            parallelism=params.parallelism,
            pipelining=params.pipelining,
            rng=self.rng,
            jitter=self.jitter,
        )
        if sample.duration <= 0:
            return
        tracer = current_tracer()
        if tracer is not None:
            tracer.emit(
                MonitorSampleTaken,
                session=self.session.name,
                duration_s=sample.duration,
                throughput_bps=sample.throughput_bps,
                loss_rate=sample.loss_rate,
                concurrency=params.concurrency,
                parallelism=params.parallelism,
                pipelining=params.pipelining,
                valid=sample.valid,
            )
            tracer.metrics.inc("monitor.samples")
        if not sample.valid:
            # The interval overlapped an infrastructure outage: the
            # reading reflects the fault, not the setting.  Feeding it
            # to GD/BO would send the search chasing a zero-throughput
            # cliff, so the tick is dropped (params stay, no history).
            if tracer is not None:
                tracer.metrics.inc("monitor.invalid_samples")
            return
        u = self.utility(sample)
        if tracer is not None:
            tracer.emit(
                UtilityEvaluated,
                session=self.session.name,
                utility=u,
                throughput_bps=sample.throughput_bps,
                loss_rate=sample.loss_rate,
            )
            tracer.metrics.observe("agent.utility", u)
        obs = Observation(params=params, utility=u, sample=sample)
        proposal = self.optimizer.update(obs)
        next_params = self._apply(proposal)
        if tracer is not None:
            tracer.emit(
                OptimizerDecision,
                session=self.session.name,
                optimizer=type(self.optimizer).__name__,
                concurrency=next_params.concurrency,
                parallelism=next_params.parallelism,
                pipelining=next_params.pipelining,
                utility=u,
            )
            tracer.metrics.inc("optimizer.decisions")
        self.history.append(
            DecisionRecord(
                time=now,
                params=params,
                throughput_bps=sample.throughput_bps,
                loss_rate=sample.loss_rate,
                utility=u,
                next_params=next_params,
            )
        )

    def _apply(self, proposal) -> TransferParams:
        if isinstance(proposal, TransferParams):
            next_params = proposal
        else:
            next_params = self.session.params.with_(concurrency=int(proposal))
        self.session.set_params(next_params)
        return next_params

    # -- convenience accessors for experiments -----------------------------------

    def utilities(self) -> np.ndarray:
        """Utility per decision, in time order."""
        return np.array([r.utility for r in self.history])

    def concurrencies(self) -> np.ndarray:
        """Evaluated concurrency per decision, in time order."""
        return np.array([r.params.concurrency for r in self.history])

    def throughputs(self) -> np.ndarray:
        """Measured throughput (bps) per decision, in time order."""
        return np.array([r.throughput_bps for r in self.history])

    def times(self) -> np.ndarray:
        """Decision timestamps."""
        return np.array([r.time for r in self.history])
