"""Bayesian Optimization for online transfer tuning (paper §3.2).

Built from scratch on numpy/scipy:

* :mod:`kernels` — RBF and Matérn-5/2 covariance functions;
* :mod:`gp` — Gaussian-process regression with Cholesky posteriors and
  marginal-likelihood hyperparameter fitting;
* :mod:`acquisition` — EI, PI, UCB acquisition functions;
* :mod:`gp_hedge` — the GP-Hedge portfolio that picks between them
  online with exponential weights (Auer et al.);
* :mod:`optimizer` — the BO loop: 3 random bootstrap samples, a
  20-observation sliding window, integer candidates.
"""

from repro.core.bayesian.acquisition import (
    expected_improvement,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.core.bayesian.gp import GaussianProcess
from repro.core.bayesian.gp_hedge import GPHedge
from repro.core.bayesian.kernels import Matern52Kernel, RBFKernel
from repro.core.bayesian.optimizer import BayesianOptimizer

__all__ = [
    "expected_improvement",
    "probability_of_improvement",
    "upper_confidence_bound",
    "GaussianProcess",
    "GPHedge",
    "Matern52Kernel",
    "RBFKernel",
    "BayesianOptimizer",
]
