"""Acquisition functions for Bayesian optimization (maximisation).

All three classics, operating on posterior (mean, std) arrays so the
GP is queried once per decision regardless of how many acquisitions
the GP-Hedge portfolio is running.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import norm


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """EI: expected amount by which a point beats the incumbent.

    Parameters
    ----------
    mean, std:
        GP posterior at the candidate points.
    best:
        Incumbent (best observed utility).
    xi:
        Exploration margin added to the incumbent.
    """
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    improvement = mean - best - xi
    z = improvement / std
    return improvement * norm.cdf(z) + std * norm.pdf(z)


def probability_of_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """PI: probability a point beats the incumbent by at least ``xi``."""
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    return norm.cdf((mean - best - xi) / std)


def upper_confidence_bound(
    mean: np.ndarray, std: np.ndarray, best: float = 0.0, kappa: float = 2.0
) -> np.ndarray:
    """UCB: optimism in the face of uncertainty, ``μ + κσ``.

    ``best`` is accepted (and ignored) so all acquisitions share one
    call signature.
    """
    return np.asarray(mean, dtype=float) + kappa * np.asarray(std, dtype=float)
