"""Gaussian-process regression.

A compact, numerically careful implementation sufficient for BO over a
small sliding window of observations (the paper limits the window to 20
points precisely so that "GP processing delay stays in the order of
milliseconds" — at that size a Cholesky factorisation is microseconds).

Targets are standardised internally; hyperparameters (length scale,
signal variance) are fitted by maximising the log marginal likelihood
over a small log-spaced grid, which is robust, deterministic, and cheap
for 1-D problems — gradient-based MLL optimisation would be overkill
and flakier under the noise levels transfer sampling produces.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from repro.core.bayesian.kernels import RBFKernel


class GaussianProcess:
    """GP posterior over a scalar function.

    Parameters
    ----------
    kernel:
        Covariance function (``RBFKernel`` or ``Matern52Kernel``).
    noise:
        Observation-noise standard deviation, in *standardised* target
        units (i.e. relative to the data's spread).
    """

    def __init__(self, kernel: RBFKernel | None = None, noise: float = 0.1) -> None:
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.kernel = kernel or RBFKernel()
        self.noise = float(noise)
        self._x: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._alpha: np.ndarray | None = None
        self._cho = None

    # -- fitting ---------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray, optimize: bool = True) -> "GaussianProcess":
        """Condition the GP on data; optionally refit hyperparameters.

        Parameters
        ----------
        x:
            ``(n,)`` or ``(n, d)`` inputs.
        y:
            ``(n,)`` targets.
        optimize:
            Grid-search the kernel hyperparameters by marginal
            likelihood before conditioning.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[0] == 1 and x.shape[1] > 1:
            x = x.T
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.size:
            raise ValueError("x and y disagree on sample count")
        if y.size == 0:
            raise ValueError("cannot fit a GP to zero observations")

        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        z = (y - self._y_mean) / self._y_std
        self._x = x

        if optimize and y.size >= 3:
            self.kernel = self._fit_hyperparams(x, z)

        k = self.kernel(x, x)
        k[np.diag_indices_from(k)] += self.noise**2 + 1e-8
        self._cho = cho_factor(k, lower=True)
        self._alpha = cho_solve(self._cho, z)
        return self

    def _fit_hyperparams(self, x: np.ndarray, z: np.ndarray):
        """Pick (length scale, variance) maximising log marginal likelihood."""
        span = float(x.max() - x.min()) or 1.0
        length_scales = span * np.array([0.05, 0.1, 0.2, 0.4, 0.8])
        variances = np.array([0.25, 1.0, 4.0])
        best, best_mll = self.kernel, -np.inf
        for ls in length_scales:
            for var in variances:
                candidate = self.kernel.with_params(length_scale=float(ls), variance=float(var))
                mll = self._log_marginal_likelihood(x, z, candidate)
                if mll > best_mll:
                    best, best_mll = candidate, mll
        return best

    def _log_marginal_likelihood(self, x: np.ndarray, z: np.ndarray, kernel) -> float:
        k = kernel(x, x)
        k[np.diag_indices_from(k)] += self.noise**2 + 1e-8
        try:
            cho = cho_factor(k, lower=True)
        except np.linalg.LinAlgError:
            return -np.inf
        alpha = cho_solve(cho, z)
        log_det = 2.0 * np.sum(np.log(np.diag(cho[0])))
        return float(-0.5 * z @ alpha - 0.5 * log_det - 0.5 * z.size * np.log(2 * np.pi))

    # -- prediction ---------------------------------------------------------------

    def predict(self, x_star: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at query points.

        Returns
        -------
        (mean, std):
            Arrays of shape ``(m,)`` in *original* target units.
        """
        if self._x is None:
            raise RuntimeError("predict() before fit()")
        x_star = np.atleast_2d(np.asarray(x_star, dtype=float))
        if x_star.shape[0] == 1 and x_star.shape[1] > 1 and self._x.shape[1] == 1:
            x_star = x_star.T
        k_star = self.kernel(x_star, self._x)
        mean_z = k_star @ self._alpha
        v = cho_solve(self._cho, k_star.T)
        var_z = self.kernel(x_star, x_star).diagonal() - np.einsum("ij,ji->i", k_star, v)
        var_z = np.maximum(var_z, 1e-12)
        mean = mean_z * self._y_std + self._y_mean
        std = np.sqrt(var_z) * self._y_std
        return mean, std

    @property
    def n_observations(self) -> int:
        """Number of conditioning points."""
        return 0 if self._x is None else self._x.shape[0]
