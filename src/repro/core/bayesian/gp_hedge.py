"""GP-Hedge: online acquisition-function portfolio.

The paper "utilizes the GP-Hedge algorithm to tune the hyperparameters
of BO, such as exploration-exploitation ratios and acquisition
functions, in real time", citing Auer et al.'s adversarial-bandit
exponential-weights scheme.  GP-Hedge (Hoffman, Brochu, de Freitas)
works as follows each round:

1. every acquisition function nominates its favourite candidate;
2. one nomination is sampled with probability ``softmax(η·g)`` over the
   portfolio's cumulative gains ``g``;
3. after the GP is updated, **every** nominee is scored by the new
   posterior mean at its nominated point, and gains are updated —
   so acquisitions that keep nominating good points gain influence even
   when not selected.

Gains decay geometrically so the portfolio adapts when network
conditions shift (consistent with Falcon's windowed GP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.bayesian.acquisition import (
    expected_improvement,
    probability_of_improvement,
    upper_confidence_bound,
)

AcquisitionFn = Callable[[np.ndarray, np.ndarray, float], np.ndarray]


@dataclass
class _Arm:
    name: str
    fn: AcquisitionFn
    gain: float = 0.0
    pending: float | None = None  # nominated candidate awaiting reward


class GPHedge:
    """Exponential-weights portfolio over acquisition functions.

    Parameters
    ----------
    acquisitions:
        Sequence of ``(name, fn)`` pairs; defaults to EI, PI, UCB.
    eta:
        Softmax temperature of the selection distribution.
    decay:
        Per-round multiplicative gain decay (1.0 = classic GP-Hedge).
    rng:
        Random generator for the softmax draw.
    """

    def __init__(
        self,
        acquisitions: Sequence[tuple[str, AcquisitionFn]] | None = None,
        eta: float = 1.0,
        decay: float = 0.9,
        rng: np.random.Generator | None = None,
    ) -> None:
        if acquisitions is None:
            acquisitions = [
                ("ei", expected_improvement),
                ("pi", probability_of_improvement),
                ("ucb", upper_confidence_bound),
            ]
        if not acquisitions:
            raise ValueError("need at least one acquisition function")
        if not 0 < decay <= 1:
            raise ValueError("decay must be in (0, 1]")
        self.eta = float(eta)
        self.decay = float(decay)
        self._arms = [_Arm(name, fn) for name, fn in acquisitions]
        # Seeded fallback: a bare default_rng() would draw OS entropy
        # and make unseeded runs irreproducible.
        # repro: lint-ok[F011]: documented library fallback; callers pass a
        # derived rng, and golden tests pin the seed-0 sequence.
        self._rng = rng or np.random.default_rng(0)

    @property
    def gains(self) -> dict[str, float]:
        """Current cumulative (decayed) gain per acquisition."""
        return {arm.name: arm.gain for arm in self._arms}

    def probabilities(self) -> np.ndarray:
        """Selection distribution over the portfolio."""
        g = np.array([arm.gain for arm in self._arms])
        z = self.eta * (g - g.max())
        w = np.exp(z)
        return w / w.sum()

    def propose(
        self, candidates: np.ndarray, mean: np.ndarray, std: np.ndarray, best: float
    ) -> tuple[float, str]:
        """One GP-Hedge round: nominate, select, remember nominations.

        Returns the selected candidate value and the name of the
        acquisition that nominated it.
        """
        candidates = np.asarray(candidates, dtype=float)
        for arm in self._arms:
            scores = arm.fn(mean, std, best)
            arm.pending = float(candidates[int(np.argmax(scores))])
        probs = self.probabilities()
        chosen = int(self._rng.choice(len(self._arms), p=probs))
        return self._arms[chosen].pending, self._arms[chosen].name

    def reward(self, posterior_mean_at: Callable[[float], float]) -> None:
        """Update gains with the new posterior mean at each nomination.

        Call after the GP has been refitted with the latest observation.
        """
        for arm in self._arms:
            if arm.pending is None:
                continue
            arm.gain = self.decay * arm.gain + float(posterior_mean_at(arm.pending))
            arm.pending = None
