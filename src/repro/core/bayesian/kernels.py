"""Covariance kernels for Gaussian-process surrogates.

Only what BO over a 1-D integer domain needs: stationary kernels with a
signal variance and a length scale, vectorised over sample matrices.
Inputs are ``(n, d)`` arrays; outputs are ``(n, m)`` Gram matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


def _sqdist(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances between row vectors."""
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.atleast_2d(np.asarray(b, dtype=float))
    # ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b  (vectorised, no copies)
    return np.maximum(
        0.0,
        (a * a).sum(axis=1)[:, None] + (b * b).sum(axis=1)[None, :] - 2.0 * (a @ b.T),
    )


@dataclass(frozen=True)
class RBFKernel:
    """Squared-exponential kernel ``σ² exp(−r²/2ℓ²)``.

    Attributes
    ----------
    length_scale:
        ℓ — correlation range in input units.
    variance:
        σ² — prior signal variance.
    """

    length_scale: float = 1.0
    variance: float = 1.0

    def __post_init__(self) -> None:
        if self.length_scale <= 0 or self.variance <= 0:
            raise ValueError("kernel hyperparameters must be positive")

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.variance * np.exp(-0.5 * _sqdist(a, b) / self.length_scale**2)

    def with_params(self, length_scale: float, variance: float) -> "RBFKernel":
        """Copy with new hyperparameters (used during MLL fitting)."""
        return replace(self, length_scale=length_scale, variance=variance)


@dataclass(frozen=True)
class Matern52Kernel:
    """Matérn ν=5/2 kernel — rougher than RBF, a common BO default.

    ``σ² (1 + √5 r/ℓ + 5r²/3ℓ²) exp(−√5 r/ℓ)``
    """

    length_scale: float = 1.0
    variance: float = 1.0

    def __post_init__(self) -> None:
        if self.length_scale <= 0 or self.variance <= 0:
            raise ValueError("kernel hyperparameters must be positive")

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        r = np.sqrt(_sqdist(a, b))
        z = np.sqrt(5.0) * r / self.length_scale
        return self.variance * (1.0 + z + z**2 / 3.0) * np.exp(-z)

    def with_params(self, length_scale: float, variance: float) -> "Matern52Kernel":
        """Copy with new hyperparameters (used during MLL fitting)."""
        return replace(self, length_scale=length_scale, variance=variance)
