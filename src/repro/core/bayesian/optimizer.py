"""The Bayesian-optimization concurrency search (paper §3.2).

Faithful to the paper's configuration:

* **3 random bootstrap samples** with a uniform prior over the domain —
  "we limit the random sampling phase to three samples" / "we set the
  prior distribution to uniform distribution to avoid bias";
* **Gaussian Process surrogate** over a sliding window of the **20 most
  recent observations**, which (i) keeps GP cost at milliseconds and
  (ii) forces periodic re-exploration so changed conditions are
  noticed;
* **GP-Hedge** portfolio choosing between EI / PI / UCB each round.

This random bootstrap over the full domain is exactly what makes BO
"more aggressive against non-Falcon transfers" (§4.5): it can probe
very high concurrency early, observe the resulting throughput grab,
and settle there.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.config import BO_OBSERVATION_WINDOW, BO_RANDOM_SAMPLES
from repro.core.bayesian.gp import GaussianProcess
from repro.core.bayesian.gp_hedge import GPHedge
from repro.core.bayesian.kernels import RBFKernel
from repro.core.optimizer import ConcurrencyOptimizer, Observation


class BayesianOptimizer(ConcurrencyOptimizer):
    """GP-surrogate search over the concurrency domain.

    Parameters
    ----------
    lo, hi:
        Inclusive search bounds.  The paper notes the upper bound is
        BO's one unavoidable user knob.
    window:
        Sliding-window length over past observations.
    random_samples:
        Bootstrap length before the surrogate takes over.
    noise:
        GP observation-noise level (standardised units); should track
        the measurement jitter.
    rng:
        Random generator (bootstrap draws + GP-Hedge selection).
    """

    def __init__(
        self,
        lo: int = 1,
        hi: int = 64,
        window: int = BO_OBSERVATION_WINDOW,
        random_samples: int = BO_RANDOM_SAMPLES,
        noise: float = 0.15,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(lo, hi)
        if window < 2:
            raise ValueError("window must be >= 2")
        if random_samples < 1:
            raise ValueError("random_samples must be >= 1")
        self.window = int(window)
        self.random_samples = int(random_samples)
        # Seeded fallback: a bare default_rng() would draw OS entropy
        # and make unseeded runs irreproducible.
        # repro: lint-ok[F011]: documented library fallback; callers pass a
        # derived rng, and golden tests pin the seed-0 sequence.
        self._rng = rng or np.random.default_rng(0)
        self._history: deque[tuple[int, float]] = deque(maxlen=self.window)
        self._bootstrap_left = self.random_samples
        self.hedge = GPHedge(rng=self._rng)
        self.gp = GaussianProcess(kernel=RBFKernel(), noise=noise)
        self.last_acquisition: str | None = None

    # -- helpers ---------------------------------------------------------------

    def _random_setting(self) -> int:
        return int(self._rng.integers(self.lo, self.hi + 1))

    def _candidates(self) -> np.ndarray:
        return np.arange(self.lo, self.hi + 1, dtype=float)

    @property
    def history(self) -> list[tuple[int, float]]:
        """The (concurrency, utility) sliding window, oldest first."""
        return list(self._history)

    # -- ConcurrencyOptimizer API ---------------------------------------------------

    def first_setting(self) -> int:
        return self._random_setting()

    def update(self, obs: Observation) -> int:
        self._history.append((obs.concurrency, obs.utility))

        if self._bootstrap_left > 0:
            self._bootstrap_left -= 1
            if self._bootstrap_left > 0:
                return self._random_setting()

        x = np.array([n for n, _ in self._history], dtype=float)
        y = np.array([u for _, u in self._history], dtype=float)
        if np.unique(x).size < 2:
            return self._random_setting()

        self.gp.fit(x[:, None], y, optimize=True)
        candidates = self._candidates()
        mean, std = self.gp.predict(candidates[:, None])
        best = float(y.max())

        # Reward last round's nominations against the refreshed posterior.
        self.hedge.reward(lambda v: self.gp.predict(np.array([[v]]))[0][0])

        proposal, self.last_acquisition = self.hedge.propose(candidates, mean, std, best)
        return self.clamp(proposal)

    def reset(self) -> None:
        self._history.clear()
        self._bootstrap_left = self.random_samples
        self.hedge = GPHedge(rng=self._rng)
        self.last_acquisition = None
