"""Conjugate-gradient multi-parameter search (paper §4.4).

Tunes (concurrency, parallelism, pipelining) jointly against the Eq. 7
utility.  The paper "adopted conjugate gradient descent which provides
efficient search for multi-parameter optimization problems" (citing
Dai & Yuan's nonlinear CG).

Structure per optimization cycle:

1. probe ``x ± e_i`` for each of the three dimensions via sample
   transfers (six probes — which is why the paper measures
   multi-parameter convergence taking up to 3× longer than the
   two-probe single-parameter GD);
2. estimate the gradient by central differences;
3. combine with the previous direction using the Polak–Ribière
   coefficient (clipped at zero, the standard restart rule);
4. move along the conjugate direction with a confidence-gated step,
   exactly like the single-parameter GD.

Pipelining is searched in log₂ space: its useful values span decades
(1..64) and its effect is multiplicative (each doubling halves the
per-file control stall).
"""

from __future__ import annotations

import numpy as np

from repro.core.optimizer import MultiParamOptimizer, Observation
from repro.transfer.session import TransferParams

#: Dimension order inside the internal coordinate vector.
_DIMS = ("concurrency", "parallelism", "pipelining")


class ConjugateGradientOptimizer(MultiParamOptimizer):
    """Polak–Ribière conjugate gradient over (n, p, log₂ q).

    Parameters
    ----------
    concurrency_bounds, parallelism_bounds, pipelining_bounds:
        Inclusive (lo, hi) integer bounds per parameter.
    start:
        Initial setting.
    theta_max, max_step:
        Confidence cap and per-move step cap (concurrency units in the
        internal coordinate space).
    """

    def __init__(
        self,
        concurrency_bounds: tuple[int, int] = (1, 64),
        parallelism_bounds: tuple[int, int] = (1, 8),
        pipelining_bounds: tuple[int, int] = (1, 64),
        start: TransferParams = TransferParams(concurrency=2, parallelism=1, pipelining=1),
        theta_max: float = 8.0,
        max_step: float = 12.0,
    ) -> None:
        for lo, hi in (concurrency_bounds, parallelism_bounds, pipelining_bounds):
            if not 1 <= lo <= hi:
                raise ValueError("bounds must satisfy 1 <= lo <= hi")
        self.bounds = {
            "concurrency": concurrency_bounds,
            "parallelism": parallelism_bounds,
            "pipelining": pipelining_bounds,
        }
        self.theta_max = float(theta_max)
        self.max_step = float(max_step)
        self._z = self._to_internal(start)
        self._theta = 1.0
        self._prev_gradient: np.ndarray | None = None
        self._prev_direction: np.ndarray | None = None
        self._probe_plan: list[tuple[int, int]] = []
        self._probe_utilities: dict[tuple[int, int], float] = {}
        self._plan_cursor = 0

    # -- coordinate transforms ---------------------------------------------------

    def _to_internal(self, params: TransferParams) -> np.ndarray:
        return np.array(
            [
                float(params.concurrency),
                float(params.parallelism),
                float(np.log2(params.pipelining)),
            ]
        )

    def _to_params(self, z: np.ndarray) -> TransferParams:
        values = {}
        for i, dim in enumerate(_DIMS):
            lo, hi = self.bounds[dim]
            raw = z[i] if dim != "pipelining" else 2.0 ** z[i]
            values[dim] = int(min(hi, max(lo, round(raw))))
        return TransferParams(**values)

    def _z_bounds(self, dim_index: int) -> tuple[float, float]:
        dim = _DIMS[dim_index]
        lo, hi = self.bounds[dim]
        if dim == "pipelining":
            return float(np.log2(lo)), float(np.log2(hi))
        return float(lo), float(hi)

    def _clamp_z(self, z: np.ndarray) -> np.ndarray:
        out = z.copy()
        for i in range(3):
            lo, hi = self._z_bounds(i)
            out[i] = min(hi, max(lo, out[i]))
        return out

    # -- probe plan -----------------------------------------------------------------

    def _new_plan(self) -> None:
        self._probe_plan = [(dim, sign) for dim in range(3) for sign in (-1, +1)]
        self._probe_utilities = {}
        self._plan_cursor = 0

    def _probe_setting(self, probe: tuple[int, int]) -> TransferParams:
        dim, sign = probe
        z = self._z.copy()
        lo, hi = self._z_bounds(dim)
        z[dim] = min(hi, max(lo, z[dim] + sign))
        return self._to_params(z)

    @property
    def center(self) -> TransferParams:
        """Current search center."""
        return self._to_params(self._z)

    # -- MultiParamOptimizer API -------------------------------------------------------

    def first_setting(self) -> TransferParams:
        self._new_plan()
        return self._probe_setting(self._probe_plan[0])

    def update(self, obs: Observation) -> TransferParams:
        probe = self._probe_plan[self._plan_cursor]
        self._probe_utilities[probe] = obs.utility
        self._plan_cursor += 1

        if self._plan_cursor < len(self._probe_plan):
            return self._probe_setting(self._probe_plan[self._plan_cursor])

        self._move()
        self._new_plan()
        return self._probe_setting(self._probe_plan[0])

    def _move(self) -> None:
        gradient = np.zeros(3)
        scale = 0.0
        for dim in range(3):
            u_low = self._probe_utilities[(dim, -1)]
            u_high = self._probe_utilities[(dim, +1)]
            gradient[dim] = (u_high - u_low) / 2.0
            scale = max(scale, abs(u_low), abs(u_high))
        if scale > 0:
            gradient /= scale  # relative rate of change per unit coordinate

        direction = gradient.copy()
        if self._prev_gradient is not None and self._prev_direction is not None:
            denom = float(self._prev_gradient @ self._prev_gradient)
            if denom > 1e-18:
                beta = float(gradient @ (gradient - self._prev_gradient)) / denom
                beta = max(0.0, beta)  # Polak-Ribière+ restart rule
                direction = gradient + beta * self._prev_direction

        aligned = self._prev_gradient is not None and float(gradient @ self._prev_gradient) > 0
        self._theta = min(self.theta_max, self._theta * 2.0) if aligned else 1.0

        # Step scaled by the current concurrency so early moves are
        # proportional (same normalisation as single-parameter GD).
        step = self._theta * direction * max(self._z[0], 1.0)
        norm = float(np.linalg.norm(step))
        if norm > self.max_step:
            step *= self.max_step / norm
        self._z = self._clamp_z(self._z + step)
        self._prev_gradient = gradient
        self._prev_direction = direction
