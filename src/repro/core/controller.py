"""Binding agents to the simulation clock.

:func:`attach_agent` wires a :class:`~repro.core.agent.FalconAgent`
into a :class:`~repro.sim.engine.SimulationEngine`: the agent's first
setting is applied immediately and a periodic decision event runs until
the session completes.  The same helper drives baseline controllers
(anything exposing ``start()`` and ``decide(now)``).
"""

from __future__ import annotations

from typing import Protocol

from repro.sim.engine import SimulationEngine
from repro.transfer.session import TransferSession


class SessionController(Protocol):
    """Anything that tunes a session on a periodic tick."""

    session: TransferSession

    def start(self) -> None:
        """Apply the initial setting."""
        ...

    def decide(self, now: float) -> None:
        """One periodic decision."""
        ...


def attach_agent(
    engine: SimulationEngine,
    controller: SessionController,
    interval: float,
    start_time: float = 0.0,
) -> None:
    """Start a controller now (or at ``start_time``) and tick it periodically.

    The periodic event stops itself once the controlled session
    finishes.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")

    def kickoff() -> None:
        controller.start()

        def tick() -> None:
            if not controller.session.active:
                raise StopIteration
            controller.decide(engine.now)

        engine.schedule_every(interval, tick, name=f"decide:{controller.session.name}")

    if start_time <= engine.now:
        kickoff()
    else:
        engine.schedule_at(start_time, kickoff, name=f"start:{controller.session.name}")
