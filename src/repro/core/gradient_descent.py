"""Online Gradient Descent search (paper §3.2).

Because the Eq. 4 utility is strictly concave over the working range,
gradient ascent converges geometrically.  The gradient is *estimated*
with two sample transfers around the current point: evaluate ``n − ε``
then ``n + ε`` (ε = 1, concurrency is integral), compute

``γ = (u(n+ε) − u(n−ε)) / (2ε)``

normalise it to a relative rate of change ``Δ = γ / |u(n−ε)|``, and move
``n_new = n + θ·Δ·n`` where the learning factor θ grows while the
gradient keeps its sign in consecutive rounds and resets when it flips
— the paper's "monotonically increasing learning factor to gradually
build confidence over search direction".

We grow θ geometrically (doubling, capped) rather than by +1: with
sample transfers costing 3–5 s each, additive growth cannot reach a
distant optimum (e.g. 48) within the paper's reported 20–30 s
convergence window; doubling preserves the paper's qualitative design
(confidence-gated acceleration) at the paper's reported timescale.

Even after convergence the optimizer keeps cycling ``n−1, n+1`` probes
— Fig. 9's concurrency trace "bounces between 9 and 11" for exactly
this reason — so it notices when conditions change.
"""

from __future__ import annotations

from repro.core.optimizer import ConcurrencyOptimizer, Observation


class GradientDescent(ConcurrencyOptimizer):
    """Two-point finite-difference gradient ascent with adaptive step.

    Parameters
    ----------
    lo, hi:
        Search-domain bounds.
    start:
        Initial center point (paper's traces start near 2).
    epsilon:
        Probe offset; 1 because concurrency is integral.
    theta_max:
        Cap on the learning factor.
    max_step:
        Cap on a single move, in concurrency units; bounds the damage a
        jittered sample can do ("avoiding arbitrarily large steps due
        to sampling errors").
    """

    def __init__(
        self,
        lo: int = 1,
        hi: int = 64,
        start: int = 2,
        epsilon: int | None = None,
        theta_max: float = 16.0,
        max_step: float = 16.0,
    ) -> None:
        super().__init__(lo, hi)
        if epsilon is not None and epsilon < 1:
            raise ValueError("epsilon must be >= 1")
        self.epsilon = None if epsilon is None else int(epsilon)
        self.theta_max = float(theta_max)
        self.max_step = float(max_step)
        # The center is kept as a float: sub-unit moves must be able
        # to accumulate across rounds (rounding every move would
        # swallow the small drift that finishes convergence).
        self._center = float(self.clamp(start))
        self._theta = 1.0
        self._last_sign = 0
        self._phase = "low"  # alternates: probe low, probe high, move
        self._u_low: float | None = None

    def first_setting(self) -> int:
        return self._probe_low()

    def _eps(self) -> int:
        """Probe offset at the current center.

        With a fixed ε=1 the utility difference between the probes
        shrinks like 1/n and disappears into measurement jitter at
        large optima; scaling ε with the center keeps the probe signal
        a roughly constant multiple of the noise floor.  (The paper
        uses ε=1 on real testbeds; this is the simulator-noise-aware
        generalisation, and ε=1 behaviour is recovered by passing
        ``epsilon=1``.)
        """
        if self.epsilon is not None:
            return self.epsilon
        return max(1, round(self._center / 16))

    def _center_int(self) -> int:
        return self.clamp(self._center)

    def _probe_low(self) -> int:
        return self.clamp(self._center_int() - self._eps())

    def _probe_high(self) -> int:
        return self.clamp(self._center_int() + self._eps())

    @property
    def center(self) -> int:
        """Current search center (the believed optimum)."""
        return self._center_int()

    @property
    def theta(self) -> float:
        """Current learning factor."""
        return self._theta

    def update(self, obs: Observation) -> int:
        if self._phase == "low":
            self._u_low = obs.utility
            self._phase = "high"
            return self._probe_high()

        # High-probe observation: complete the gradient estimate.
        u_low, u_high = self._u_low, obs.utility
        self._phase = "low"
        self._u_low = None

        low, high = self._probe_low(), self._probe_high()
        span = max(high - low, 1)
        gamma = (u_high - u_low) / span
        delta = gamma / max(abs(u_low), 1e-12)

        sign = 0 if delta == 0 else (1 if delta > 0 else -1)
        if sign != 0 and sign == self._last_sign:
            self._theta = min(self.theta_max, self._theta * 2.0)
        else:
            self._theta = 1.0
        self._last_sign = sign

        step = self._theta * delta * self._center
        step = max(-self.max_step, min(self.max_step, step))
        self._center = float(min(self.hi, max(self.lo, self._center + step)))
        return self._probe_low()

    def reset(self) -> None:
        self._theta = 1.0
        self._last_sign = 0
        self._phase = "low"
        self._u_low = None
