"""Hill Climbing search (paper §3.2).

The search walks the concurrency axis one step at a time: keep moving
in the current direction while the relative utility change

``γ = (u_new − u_prev) / |u_prev|``

exceeds a non-negative threshold (3% by default); otherwise reverse.
Even after finding the optimum the walker keeps evaluating neighbours
— the paper requires continuous search to adapt to change — so at
steady state it oscillates around the peak.

The fixed ±1 step is exactly why the paper measures Hill Climbing
taking ~7× longer than GD/BO to reach a distant optimum (Fig. 7), and
why its transient is so long that competing HC agents fail to reach a
fair share within a practical horizon (Fig. 8).
"""

from __future__ import annotations

from repro.core.optimizer import ConcurrencyOptimizer, Observation


class HillClimbing(ConcurrencyOptimizer):
    """±1-step online hill climbing on the utility.

    Parameters
    ----------
    lo, hi:
        Search-domain bounds.
    threshold:
        Minimum relative improvement to keep the current direction.
        The paper quotes 3% as its default
        (:data:`repro.config.HILL_CLIMBING_THRESHOLD`); with the Eq. 4
        utility the marginal gain per step is ``1/n − ln K`` and falls
        below 3% already around n≈20, so a 3% threshold parks the
        walker far short of large optima.  We default to 0 ("continue
        while improving", the smallest value the paper's "non-negative
        threshold" wording permits) and let experiments opt into 3%.
    start:
        Initial concurrency (paper starts at the minimum, 1).
    """

    def __init__(
        self,
        lo: int = 1,
        hi: int = 64,
        threshold: float = 0.0,
        start: int | None = None,
    ) -> None:
        super().__init__(lo, hi)
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self.start = self.clamp(start if start is not None else lo)
        self._direction = +1
        self._prev_utility: float | None = None
        self._current = self.start

    def first_setting(self) -> int:
        return self._current

    def update(self, obs: Observation) -> int:
        u = obs.utility
        if self._prev_utility is not None:
            gamma = (u - self._prev_utility) / max(abs(self._prev_utility), 1e-12)
            if gamma <= self.threshold:
                self._direction = -self._direction
        self._prev_utility = u
        proposal = self.clamp(obs.concurrency + self._direction)
        if proposal == obs.concurrency:  # pinned at a domain edge: bounce
            self._direction = -self._direction
            proposal = self.clamp(obs.concurrency + self._direction)
        self._current = proposal
        return proposal

    def reset(self) -> None:
        self._direction = +1
        self._prev_utility = None
        self._current = self.start
