"""Optimizer interfaces shared by the three search algorithms.

The agent/optimizer contract is sample-synchronous: once per sample
interval the agent hands the optimizer the :class:`Observation` for the
setting that was just evaluated, and the optimizer returns the next
setting to try.  Optimizers never sleep or block — all pacing lives in
the simulation clock — which is also how the real Falcon separates its
measurement thread from the transfer processes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.transfer.metrics import IntervalSample
from repro.transfer.session import TransferParams


@dataclass(frozen=True)
class Observation:
    """The outcome of evaluating one setting for one sample interval.

    Attributes
    ----------
    params:
        The setting that was in force during the interval.
    utility:
        Scalar score from the agent's utility function.
    sample:
        The raw interval measurement (throughput, loss, duration).
    """

    params: TransferParams
    utility: float
    sample: IntervalSample

    @property
    def concurrency(self) -> int:
        """Concurrency evaluated by this observation."""
        return self.params.concurrency


class ConcurrencyOptimizer(ABC):
    """Single-parameter online search over the concurrency level.

    Parameters
    ----------
    lo, hi:
        Inclusive search-domain bounds.
    """

    def __init__(self, lo: int = 1, hi: int = 64) -> None:
        if not 1 <= lo <= hi:
            raise ValueError(f"invalid domain [{lo}, {hi}]")
        self.lo = int(lo)
        self.hi = int(hi)

    def clamp(self, n: float) -> int:
        """Round and clip a proposal into the search domain."""
        return int(min(self.hi, max(self.lo, round(n))))

    @abstractmethod
    def first_setting(self) -> int:
        """Concurrency to evaluate in the very first interval."""

    @abstractmethod
    def update(self, obs: Observation) -> int:
        """Digest an observation; return the next concurrency to try."""

    def reset(self) -> None:
        """Forget accumulated state (used on major condition changes)."""


class MultiParamOptimizer(ABC):
    """Multi-parameter online search over (concurrency, parallelism, pipelining)."""

    @abstractmethod
    def first_setting(self) -> TransferParams:
        """Setting to evaluate in the very first interval."""

    @abstractmethod
    def update(self, obs: Observation) -> TransferParams:
        """Digest an observation; return the next setting to try."""
