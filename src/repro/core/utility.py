"""Falcon's game-theory-inspired utility functions (paper §3.1).

The progression the paper walks through, all implemented here:

* Eq. 1 — throughput-only utility ``u = n·t``.  Not strictly concave
  (``u'' = 0``), so it cannot guarantee fair convergence.
* Eq. 2 — loss regret: ``u = n·t − n·t·L·B``.  Fair when the bottleneck
  is a lossy network link, but blind to concurrency overhead on
  sender-limited paths where ``L ≈ 0``.
* Eq. 3 — linear concurrency penalty:
  ``u = n·t − n·t·L·B − n·t·n·C``.  Either punishes too hard (high C →
  converges below the optimum) or too softly (low C → jitter-sensitive,
  over-provisions under competition) — Fig. 6.
* Eq. 4 — **nonlinear penalty** (the one Falcon uses):
  ``u = n·t / K^n − n·t·L·B``.  Requires ~(K−1) relative throughput
  gain per added worker; strictly concave for ``n < 2/ln K``.
* Eq. 7 — multi-parameter form penalising total streams ``n·p``.

Throughput enters in Gbps so the coefficients match the paper's
magnitudes (B=10 with loss as a fraction; K=1.02).

All utilities are frozen dataclasses: pure functions of a sample, safe
to share between agents (a requirement of the Nash-equilibrium argument
— all agents must use the *same* symmetric utility).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

from repro.config import (
    DEFAULT_CONCURRENCY_BASE_K,
    DEFAULT_LOSS_PENALTY_B,
    LINEAR_PENALTY_C_HIGH,
)
from repro.transfer.metrics import IntervalSample
from repro.units import Gbps


class UtilityFunction(Protocol):
    """Scores one sample interval; higher is better."""

    def __call__(self, sample: IntervalSample) -> float:
        """Utility of the interval's observed performance."""
        ...


def _n_t_gbps(sample: IntervalSample) -> tuple[int, float]:
    """Concurrency and per-worker throughput (Gbps) from a sample."""
    return sample.concurrency, sample.per_worker_bps / Gbps


@dataclass(frozen=True)
class ThroughputUtility:
    """Eq. 1: ``u = n·t`` — aggregate throughput, no regret terms.

    Included as the strawman the paper argues against: its second
    derivative is zero, so competing agents maximising it have no
    incentive to back off.
    """

    def __call__(self, sample: IntervalSample) -> float:
        n, t = _n_t_gbps(sample)
        return n * t


@dataclass(frozen=True)
class LossRegretUtility:
    """Eq. 2: ``u = n·t − n·t·L·B``.

    Attributes
    ----------
    B:
        Loss-penalty coefficient; 10 keeps loss below ~1% while holding
        >95% utilisation for Cubic/Reno/HSTCP (paper's finding).
    """

    B: float = DEFAULT_LOSS_PENALTY_B

    def __call__(self, sample: IntervalSample) -> float:
        n, t = _n_t_gbps(sample)
        return n * t - n * t * sample.loss_rate * self.B


@dataclass(frozen=True)
class LinearPenaltyUtility:
    """Eq. 3: ``u = n·t − n·t·L·B − n·t·n·C`` (linear concurrency regret).

    Kept for the Fig. 6 comparison; Falcon does not use it.
    """

    B: float = DEFAULT_LOSS_PENALTY_B
    C: float = LINEAR_PENALTY_C_HIGH

    def __call__(self, sample: IntervalSample) -> float:
        n, t = _n_t_gbps(sample)
        return n * t - n * t * sample.loss_rate * self.B - n * t * n * self.C


@dataclass(frozen=True)
class NonlinearPenaltyUtility:
    """Eq. 4: ``u = n·t / K^n − n·t·L·B`` — Falcon's utility.

    Attributes
    ----------
    B:
        Loss-penalty coefficient (default 10).
    K:
        Concurrency-regret base.  Each added worker must deliver about
        ``K − 1`` relative throughput gain to raise utility.  1.02
        balances noise resilience against the concave-region limit
        ``n < 2/ln K ≈ 101``.
    """

    B: float = DEFAULT_LOSS_PENALTY_B
    K: float = DEFAULT_CONCURRENCY_BASE_K

    def __post_init__(self) -> None:
        if self.K <= 1.0:
            raise ValueError("K must exceed 1 (otherwise there is no regret)")

    def __call__(self, sample: IntervalSample) -> float:
        n, t = _n_t_gbps(sample)
        return n * t / self.K**n - n * t * sample.loss_rate * self.B


@dataclass(frozen=True)
class MultiParamUtility:
    """Eq. 7: ``u = (n·p)·t / K^(n·p) − n·t·L·B``.

    Here ``t`` is the throughput of one *stream* (``T / (n·p)``), so
    the reward term is the aggregate throughput while the regret is
    applied to the *total stream count* ``n·p`` — both parameters
    create network connections.  Pipelining is free (command caching
    costs nothing) so it carries no regret term.
    """

    B: float = DEFAULT_LOSS_PENALTY_B
    K: float = DEFAULT_CONCURRENCY_BASE_K

    def __post_init__(self) -> None:
        if self.K <= 1.0:
            raise ValueError("K must exceed 1")

    def __call__(self, sample: IntervalSample) -> float:
        streams = sample.concurrency * sample.parallelism
        total_gbps = sample.throughput_bps / Gbps
        per_stream = total_gbps / streams if streams > 0 else 0.0
        return (
            total_gbps / self.K**streams
            - sample.concurrency * per_stream * sample.loss_rate * self.B
        )


# ---------------------------------------------------------------------------
# Analytic properties (the §3.1 proof).
# ---------------------------------------------------------------------------


def concavity_limit(K: float) -> float:
    """Upper bound on ``n`` for strict concavity of ``n·t/K^n``.

    From the paper's Eq. 5: ``f''(n) = t·K^(−n)·ln K·(−2 + n·ln K)``,
    negative iff ``n < 2 / ln K``.  For K=1.01 the bound is ~200, for
    K=1.02 ~101, for K=1.10 ~21.
    """
    if K <= 1.0:
        raise ValueError("K must exceed 1")
    return 2.0 / math.log(K)


def concurrency_regret_second_derivative(n: float, t: float, K: float) -> float:
    """``f''(n)`` of ``f(n) = n·t / K^n`` (paper Eq. 5)."""
    log_k = math.log(K)
    return t * K**-n * log_k * (-2.0 + n * log_k)


def is_strictly_concave_at(n: float, K: float) -> bool:
    """Whether the concurrency-regret term is strictly concave at ``n``."""
    return concurrency_regret_second_derivative(n, t=1.0, K=K) < 0.0


def utility_curve(utility: UtilityFunction, throughput_model, n_values) -> list[float]:
    """Evaluate a utility against an analytic throughput model.

    ``throughput_model(n) -> (total_bps, loss_rate)`` abstracts the
    network; used for the paper's Fig. 6(a) "estimated utility" curves.
    """
    curve = []
    for n in n_values:
        total_bps, loss = throughput_model(int(n))
        sample = IntervalSample(
            duration=1.0,
            throughput_bps=total_bps,
            loss_rate=loss,
            concurrency=int(n),
        )
        curve.append(utility(sample))
    return curve
