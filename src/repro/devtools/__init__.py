"""Repo-specific static analysis (``repro lint``).

The simulator's trustworthiness rests on three invariants that no
generic linter knows about:

* **determinism** — every stochastic draw flows through
  :class:`repro.sim.rng.RngStreams`; wall clocks and ambient RNGs never
  touch simulation state;
* **unit hygiene** — rates and sizes are constructed through
  :mod:`repro.units`, never via raw magnitude literals;
* **topology-cache discipline** — the executor's cached
  :class:`~repro.transfer.executor._Topology` is invalidated whenever a
  topology-affecting field changes.

This package enforces them with a small AST-based check framework
(stdlib :mod:`ast` only — no new runtime dependencies).  Checks are
registered in :mod:`repro.devtools.framework` and live one-per-module
under :mod:`repro.devtools.checks`; configuration comes from
``[tool.repro-lint]`` in ``pyproject.toml``; findings can be suppressed
with ``# repro: lint-ok[CODE]`` comments (see DESIGN.md, "Static
analysis").
"""

from __future__ import annotations

from repro.devtools.config import LintConfig, load_config
from repro.devtools.findings import Finding, render_human, render_json
from repro.devtools.framework import (
    REGISTRY,
    Check,
    ModuleContext,
    iter_python_files,
    lint_paths,
    lint_source,
    register,
)

__all__ = [
    "Check",
    "Finding",
    "LintConfig",
    "ModuleContext",
    "REGISTRY",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_config",
    "register",
    "render_human",
    "render_json",
]

# Importing the checks package registers every shipped check.
import repro.devtools.checks  # noqa: E402,F401  (registration side effect)
