"""Baseline files: adopt the linter on a tree with known findings.

A baseline records the *accepted* findings of a tree so that ``repro
lint --baseline lint-baseline.json`` fails only on findings that are
new relative to it.  This is how a check added in a later PR can land
enabled without first fixing (or suppressing) every historical hit.

Fingerprints are deliberately **line-independent**: the identity of a
finding is ``code | module-relative path | message``, hashed.  Editing
an unrelated part of a file (shifting line numbers) does not churn the
baseline; fixing one of two identical findings in a file does surface
the count change.  Identical findings in one file are disambiguated by
an occurrence index, so the baseline also pins *how many* of each.

Workflow::

    repro lint --update-baseline lint-baseline.json   # record status quo
    repro lint --baseline lint-baseline.json          # fail only on new
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.devtools.findings import Finding


def fingerprint(finding: Finding, occurrence: int = 0) -> str:
    """Stable identity of a finding, independent of line numbers."""
    raw = f"{finding.code}|{finding.path}|{finding.message}|{occurrence}"
    return hashlib.blake2b(raw.encode("utf-8"), digest_size=12).hexdigest()


def fingerprints(findings: list[Finding]) -> list[str]:
    """Fingerprint each finding, numbering duplicates within the run."""
    seen: dict[str, int] = {}
    out = []
    for finding in findings:
        key = f"{finding.code}|{finding.path}|{finding.message}"
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        out.append(fingerprint(finding, occurrence))
    return out


def render_baseline(findings: list[Finding]) -> str:
    """Serialised baseline file content (sorted, diff-friendly)."""
    entries = sorted(
        (
            {
                "fingerprint": fp,
                "code": f.code,
                "path": f.path,
                "message": f.message,
            }
            for fp, f in zip(fingerprints(findings), findings)
        ),
        key=lambda e: (e["path"], e["code"], e["fingerprint"]),
    )
    payload = {"version": 1, "count": len(entries), "findings": entries}
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_baseline(findings: list[Finding], path: Path) -> None:
    path.write_text(render_baseline(findings), encoding="utf-8")


def load_baseline(path: Path) -> frozenset[str]:
    """The set of accepted fingerprints in a baseline file."""
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"{path}: not a repro-lint baseline file")
    return frozenset(entry["fingerprint"] for entry in data["findings"])


def filter_baselined(
    findings: list[Finding], accepted: frozenset[str]
) -> tuple[list[Finding], int]:
    """Split findings into (new, number-suppressed-by-baseline)."""
    new = []
    suppressed = 0
    for finding, fp in zip(findings, fingerprints(findings)):
        if fp in accepted:
            suppressed += 1
        else:
            new.append(finding)
    return new, suppressed
