"""Shipped lint checks, one module per check code.

Importing this package registers every check with
:data:`repro.devtools.framework.REGISTRY`.  Adding a check in a later
PR means dropping a module here, importing it below, and (optionally)
giving it configuration in ``[tool.repro-lint]``.
"""

from __future__ import annotations

from repro.devtools.checks import (  # noqa: F401  (imported for registration)
    aliasing,
    callbacks,
    determinism,
    docstrings,
    envtaint,
    experiments,
    floats,
    ordering,
    rngflow,
    topology,
    unitflow,
    units,
)
