"""F009 — BatchStore view-aliasing discipline on session worker arrays.

Since PR 6, a :class:`~repro.transfer.session.TransferSession` attached
to a batched executor holds numpy *views* into the
:class:`~repro.sim.batch.BatchStore`'s contiguous global arrays.  The
contract (see ``sim/batch.py``, "View discipline") is:

* **in-place** writes — ``session.rates[w] = x``, ``arr[:] = ...``,
  ``+=`` — pass through to the store and are always safe;
* **rebinding** one of the adopted attributes
  (``session.rates = np.concatenate(...)``) silently detaches the
  session: the store keeps advancing the *old* buffer while the session
  reads the new one, and the divergence is invisible until a parity
  test catches it.

Rebinds are therefore only legal at the sanctioned detach points
(``adopt_state``, ``detach``, ``_resize_workers``, constructors), which
re-gather or invalidate the topology.  This check uses the dataflow
layer to tag which objects are sessions — ``self`` inside a session
class, parameters named/annotated as sessions, elements of a
``.sessions`` collection, ``TransferSession(...)`` results — and flags
any attribute *rebind* of an adopted field on a tagged object outside
those functions.
"""

from __future__ import annotations

import ast

from repro.devtools.dataflow import EMPTY, DataflowCheck, Scope, Value
from repro.devtools.framework import ModuleContext, register

#: Tag carried by values known to be a ``TransferSession``.
SESSION = "session"
#: Tag carried by values known to be a collection of sessions.
SESSIONS = "sessions"

#: Parameter/variable names treated as sessions when untyped.
_SESSION_PARAMS = frozenset({"session", "sess"})

#: Names of attributes/variables holding session collections.
_SESSIONS_NAMES = frozenset({"sessions"})


def _annotation_is_session(annotation: ast.expr | None, classes: tuple[str, ...]) -> bool:
    if annotation is None:
        return False
    text: str | None = None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value
    elif isinstance(annotation, (ast.Name, ast.Attribute)):
        try:
            text = ast.unparse(annotation)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            return False
    if text is None:
        return False
    tail = text.strip("\"'").split("[", 1)[0]
    return any(tail == cls or tail.endswith(f".{cls}") for cls in classes)


@register
class ViewAliasingCheck(DataflowCheck):
    """Flags rebinds of BatchStore-adopted session arrays."""

    code = "F009"
    name = "view-aliasing"
    description = "rebinding a BatchStore-adopted session array outside a sanctioned detach point"
    example_bad = (
        "def grow(session, extra):\n"
        "    session.rates = np.concatenate([session.rates, np.zeros(extra)])\n"
    )
    example_good = (
        "def throttle(session, cap_bps):\n"
        "    session.rates[:] = np.minimum(session.rates, cap_bps)  # in-place: store sees it\n"
    )

    def enabled_for(self, ctx: ModuleContext) -> bool:
        return ctx.in_scope(ctx.config.alias_scope)

    # -- session tagging -----------------------------------------------------

    def param(self, scope: Scope, name: str, annotation: ast.expr | None) -> Value:
        assert self.ctx is not None
        config = self.ctx.config
        if name == "self" and scope.owner_class in config.session_classes:
            return frozenset({SESSION})
        if name in _SESSION_PARAMS or _annotation_is_session(annotation, config.session_classes):
            return frozenset({SESSION})
        if name in _SESSIONS_NAMES:
            return frozenset({SESSIONS})
        return EMPTY

    def name_fallback(self, name: str) -> Value:
        if name in _SESSIONS_NAMES:
            return frozenset({SESSIONS})
        return EMPTY

    def call(self, node, target, base, args, keywords) -> Value:
        assert self.ctx is not None
        if target is not None:
            tail = target.rsplit(".", 1)[-1]
            if tail in self.ctx.config.session_classes:
                return frozenset({SESSION})
        return EMPTY

    def attribute_load(self, node: ast.Attribute, base: Value, resolved: str | None) -> Value:
        if node.attr in _SESSIONS_NAMES:
            return frozenset({SESSIONS})
        return EMPTY

    def subscript_load(self, node: ast.Subscript, base: Value) -> Value:
        if SESSIONS in base:
            return frozenset({SESSION})
        return EMPTY

    def iterate(self, node: ast.expr, iterable: Value) -> Value:
        if SESSIONS in iterable:
            return frozenset({SESSION})
        return EMPTY

    def unpack(self, value: Value) -> Value:
        # ``for i, s in enumerate(sessions)`` — the element keeps the tag.
        return value

    # -- the sink ------------------------------------------------------------

    def store_attr(self, stmt, target: ast.Attribute, base: Value, value: Value, aug: bool) -> None:
        assert self.ctx is not None
        config = self.ctx.config
        if aug or target.attr not in config.adopted_fields or SESSION not in base:
            return
        function = self.engine.scope.enclosing_function()
        if function is not None and function.name in config.detach_points:
            return
        self.report(
            f"rebinding adopted per-worker array '{target.attr}' detaches the session "
            "from the BatchStore; write in place (arr[:] = ..., arr[w] = ...) or go "
            f"through a sanctioned detach point ({', '.join(config.detach_points)})",
            target,
        )
