"""F006 — event callbacks must not re-enter the engine.

The engine is single-threaded and non-reentrant: a callback fired from
inside ``run_until`` that itself calls ``engine.run_until`` /
``run_for`` advances ``now`` underneath the outer loop's feet,
corrupting the event sequence (events can fire out of order or twice).
Callbacks must *schedule* follow-up work instead.

Detection: collect everything passed as the action to ``schedule_at``
/ ``schedule_in`` / ``schedule_every`` — named functions, bound
methods, lambdas — then flag any ``.run_until(...)`` / ``.run_for(...)``
call inside those bodies.  (Calling ``engine.stop()`` from a callback
is the supported way to end a run and is not flagged.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.framework import Check, ModuleContext, register

_SCHEDULERS = frozenset({"schedule_at", "schedule_in", "schedule_every"})

#: Engine entry points a callback must never call.
_REENTRY = frozenset({"run_until", "run_for"})


def _scheduled_actions(tree: ast.Module) -> tuple[set[str], list[ast.Lambda]]:
    """Names and lambdas registered as event actions anywhere in the module."""
    names: set[str] = set()
    lambdas: list[ast.Lambda] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _SCHEDULERS:
            continue
        action: ast.expr | None = None
        if len(node.args) >= 2:
            action = node.args[1]
        else:
            for kw in node.keywords:
                if kw.arg == "action":
                    action = kw.value
        if action is None:
            continue
        if isinstance(action, ast.Lambda):
            lambdas.append(action)
        elif isinstance(action, ast.Name):
            names.add(action.id)
        elif isinstance(action, ast.Attribute):
            names.add(action.attr)
    return names, lambdas


def _reentry_calls(body: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(body):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _REENTRY
        ):
            yield node


@register
class CallbackPurityCheck(Check):
    """Flags engine re-entry from scheduled event callbacks."""

    code = "F006"
    name = "callback-purity"
    description = "event callbacks calling engine.run_until/run_for re-entrantly"
    example_bad = (
        "def on_fault(engine):\n"
        "    engine.run_for(1.0)           # re-entrant drive of the event loop\n"
    )
    example_good = (
        "def on_fault(engine):\n"
        "    engine.schedule_in(1.0, recover)  # schedule, let the loop drive\n"
    )

    def enabled_for(self, ctx: ModuleContext) -> bool:
        return ctx.module.startswith("repro/")

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        names, lambdas = _scheduled_actions(ctx.tree)
        for lam in lambdas:
            for call in _reentry_calls(lam.body):
                yield self._finding(ctx, call)
        if not names:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in names
            ):
                for call in _reentry_calls(node):
                    yield self._finding(ctx, call)

    def _finding(self, ctx: ModuleContext, call: ast.Call) -> Finding:
        assert isinstance(call.func, ast.Attribute)
        return ctx.finding(
            self.code,
            f"event callback re-enters the engine via .{call.func.attr}(); "
            "schedule follow-up work instead of running the engine recursively",
            call,
        )
