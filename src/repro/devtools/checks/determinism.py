"""F001 — all randomness and time must come from the simulation itself.

Simulation code that reads a wall clock or an ambient RNG produces
runs that cannot be reproduced bit-for-bit, which silently voids every
cross-optimizer comparison the reproduction makes.  Stochastic draws
must flow through :class:`repro.sim.rng.RngStreams`; simulation time is
``engine.now``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.framework import Check, ModuleContext, register

#: Wall-clock reads (sim code must use ``engine.now``).
_CLOCKS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Entropy sources with no seed at all.
_ENTROPY = frozenset({"uuid.uuid1", "uuid.uuid4", "os.urandom", "os.getrandom"})

#: ``numpy.random`` attributes that are fine unconditionally.
_NP_ALWAYS_OK = frozenset({"SeedSequence", "BitGenerator"})

#: ``numpy.random`` constructors that are fine *when given a seed* (at
#: least one argument); called bare they seed from OS entropy.
_NP_SEEDED_CTORS = frozenset(
    {"default_rng", "Generator", "RandomState", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"}
)

_HINT = "all simulation randomness must come from repro.sim.rng.RngStreams"


@register
class DeterminismCheck(Check):
    """Flags ambient RNGs, wall clocks, and unseeded numpy generators."""

    code = "F001"
    name = "nondeterminism"
    description = (
        "random.*/secrets.*, wall clocks, uuid, and unseeded numpy.random in sim code"
    )
    example_bad = (
        "delay = random.uniform(0.1, 0.3)   # ambient RNG\n"
        "stamp = time.time()                # wall clock in sim code\n"
        "rng = np.random.default_rng()      # OS-entropy seed\n"
    )
    example_good = (
        "delay = rng.uniform(0.1, 0.3)      # rng threaded from RngStreams\n"
        "stamp = engine.now                 # simulation clock\n"
        "rng = np.random.default_rng(seed)  # caller-supplied seed\n"
    )

    def enabled_for(self, ctx: ModuleContext) -> bool:
        return ctx.in_scope(ctx.config.sim_scope)

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_import(
        self, ctx: ModuleContext, node: ast.Import | ast.ImportFrom
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        else:
            if node.level:  # relative import — never stdlib random/secrets
                return
            modules = [node.module or ""]
        for module in modules:
            root = module.split(".", 1)[0]
            if root in ("random", "secrets"):
                yield ctx.finding(
                    self.code,
                    f"import of nondeterministic module {root!r}; {_HINT}",
                    node,
                )

    def _check_call(self, ctx: ModuleContext, node: ast.Call) -> Iterator[Finding]:
        target = ctx.imports.resolve(node.func)
        if target is None:
            return
        if target in _CLOCKS:
            yield ctx.finding(
                self.code,
                f"wall-clock read {target}(); simulation time is engine.now",
                node,
            )
        elif target in _ENTROPY or target.startswith(("random.", "secrets.")):
            yield ctx.finding(
                self.code, f"nondeterministic call {target}(); {_HINT}", node
            )
        elif target.startswith("numpy.random."):
            attr = target.rsplit(".", 1)[1]
            if attr in _NP_ALWAYS_OK:
                return
            if attr in _NP_SEEDED_CTORS and (node.args or node.keywords):
                return
            yield ctx.finding(
                self.code,
                f"unseeded numpy.random call {target}(); {_HINT}",
                node,
            )
