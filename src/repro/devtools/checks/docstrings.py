"""F008 — public observability/runner/faults APIs must document units.

The packages in ``docstring_scope`` (by default ``repro.obs``,
``repro.runner``, ``repro.faults``) are the repo's operational surface:
other tools consume their events, reports, and fault plans, so an
undocumented function there is an interface nobody can trust.  Two
rules:

* every public module-level function/class, and every public method of
  a public class, carries a docstring;
* when such a callable takes a physical-quantity parameter whose name
  does not already carry its unit (``duration``, ``delay``, ``at``,
  ...), the docstring must state the unit (``seconds``/``ms``/...).
  Names with a unit suffix (``delay_s``, ``rate_bps``, ``size_bytes``)
  are self-documenting and exempt.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Union

from repro.devtools.findings import Finding
from repro.devtools.framework import Check, ModuleContext, register

#: Parameter names denoting a physical quantity with no unit in the name.
PHYSICAL_PARAMS = frozenset(
    {
        "duration",
        "dt",
        "delay",
        "interval",
        "timeout",
        "period",
        "horizon",
        "elapsed",
        "warmup",
        "rtt",
        "at",
    }
)

#: Suffixes that carry the unit in the name itself.
UNIT_SUFFIXES = ("_s", "_seconds", "_ms", "_bps", "_gbps", "_mbps", "_bytes", "_hz")

#: A docstring "states a unit" when it matches this.
_UNIT_RE = re.compile(
    r"(?i)\bseconds?\b|\bsecs?\b|\bms\b|\bmilliseconds?\b|\bbps\b|\bbytes?\b|``s``|\[s\]"
)

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _physical_args(node: _FuncDef) -> list[str]:
    """Parameter names needing a documented unit, in signature order."""
    args = [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]
    return [
        a.arg
        for a in args
        if a.arg in PHYSICAL_PARAMS and not a.arg.endswith(UNIT_SUFFIXES)
    ]


@register
class DocstringUnitsCheck(Check):
    """Flags undocumented public APIs and unit-less physical parameters."""

    code = "F008"
    name = "docstring-units"
    description = (
        "public functions/classes in the observability scope must carry "
        "docstrings, with units stated for physical-quantity parameters"
    )
    example_bad = (
        "def record_rate(self, rate):      # no docstring: rate in... bps? Gbps?\n"
        "    ...\n"
    )
    example_good = (
        "def record_rate(self, rate):\n"
        '    """Record an allocation sample.  ``rate`` is in bps."""\n'
    )

    def enabled_for(self, ctx: ModuleContext) -> bool:
        return ctx.in_scope(ctx.config.docstring_scope)

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public(stmt.name):
                    yield from self._check_callable(ctx, stmt, f"function {stmt.name!r}")
            elif isinstance(stmt, ast.ClassDef) and _is_public(stmt.name):
                yield from self._check_class(ctx, stmt)

    def _check_class(self, ctx: ModuleContext, node: ast.ClassDef) -> Iterator[Finding]:
        if ast.get_docstring(node) is None:
            yield ctx.finding(
                self.code,
                f"public class {node.name!r} has no docstring; the "
                "observability scope is consumed as an API and must "
                "document itself",
                node,
            )
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_public(stmt.name):
                continue
            yield from self._check_callable(
                ctx, stmt, f"method {node.name}.{stmt.name!r}"
            )

    def _check_callable(
        self, ctx: ModuleContext, node: _FuncDef, label: str
    ) -> Iterator[Finding]:
        doc = ast.get_docstring(node)
        if doc is None:
            yield ctx.finding(
                self.code,
                f"public {label} has no docstring; the observability scope "
                "is consumed as an API and must document itself",
                node,
            )
            return
        physical = _physical_args(node)
        if physical and not _UNIT_RE.search(doc):
            names = ", ".join(repr(p) for p in physical)
            yield ctx.finding(
                self.code,
                f"docstring of {label} states no unit for physical "
                f"parameter(s) {names}; say e.g. 'seconds' (or rename "
                "with a unit suffix like '_s')",
                node,
            )
