"""F012 — wall-clock / environment taint must never reach simulation state.

F001 bans wall-clock and entropy reads *inside* the sim scope, but the
layers around the simulator (experiments, analysis, runner, CLI) read
them legitimately — for profiling, cache paths, report footers.  The
bug class F012 exists for is the flow: a value **derived from** the
environment (wall clock, ``os.environ``, filesystem metadata, host
identity) being fed **into** engine/session/optimizer state, where it
silently breaks bit-reproducibility — serial vs parallel runs, or two
hosts, stop agreeing while every individual module still looks clean.

This is a classic taint analysis on the dataflow layer.  Sources taint
their results; taint propagates through arithmetic, f-strings,
containers, and any call that consumes a tainted argument.  Sinks:

* storing a tainted value into an attribute or element of an object in
  a sim-scope module (``self._jitter = time.time() % 1`` in the
  engine);
* passing a tainted argument to anything resolving into the simulation
  packages (``Engine(...)``, ``session.stall_worker(...)``,
  ``repro.sim.*`` / ``repro.transfer.*`` / ``repro.core.*`` / ... —
  the ``taint_sink_prefixes`` config knob).

Wall-clock *profiling* that stays in reports never meets a sink and
passes untouched.
"""

from __future__ import annotations

import ast

from repro.devtools.dataflow import EMPTY, DataflowCheck, Value, join_values
from repro.devtools.framework import ModuleContext, register

TAINT = "taint"
_TAINTED: Value = frozenset({TAINT})

#: Environment reads (exact dotted names, or ``prefix.`` to cover a module).
_SOURCES = frozenset(
    {
        "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
        "time.monotonic", "time.monotonic_ns", "time.process_time", "time.process_time_ns",
        "time.localtime", "time.gmtime", "time.ctime",
        "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.datetime.today",
        "datetime.date.today",
        "os.environ", "os.getenv", "os.urandom", "os.getrandom",
        "os.getpid", "os.getppid", "os.cpu_count", "os.getloadavg", "os.uname",
        "os.stat", "os.listdir", "os.scandir", "os.walk",
        "os.path.getmtime", "os.path.getsize", "os.path.getctime", "os.path.getatime",
        "glob.glob", "glob.iglob",
        "platform.platform", "platform.node", "platform.machine", "platform.processor",
        "platform.python_version", "platform.system", "platform.release",
        "socket.gethostname", "socket.getfqdn",
        "multiprocessing.cpu_count",
    }
)


def _is_source(resolved: str | None) -> bool:
    return resolved is not None and resolved in _SOURCES


@register
class EnvTaintCheck(DataflowCheck):
    """Tracks environment-derived values and flags flows into sim state."""

    code = "F012"
    name = "env-taint"
    description = "wall-clock/os.environ/filesystem-derived values flowing into engine/session/optimizer state"
    example_bad = (
        "wall = time.perf_counter()\n"
        "engine.schedule_at(wall, cb)   # wall-clock leaks into the event queue\n"
    )
    example_good = (
        "wall = time.perf_counter()\n"
        "report['wall_s'] = wall        # profiling that stays in the report is fine\n"
    )

    def enabled_for(self, ctx: ModuleContext) -> bool:
        return ctx.module.startswith("repro/")

    # -- sources & propagation ----------------------------------------------

    def attribute_load(self, node: ast.Attribute, base: Value, resolved: str | None) -> Value:
        if _is_source(resolved):
            return _TAINTED
        return base  # field reads of a tainted object stay tainted

    def call(self, node, target, base, args, keywords) -> Value:
        if _is_source(target):
            return _TAINTED
        self._check_call_sink(node, target, args, keywords)
        out = base
        for _, value in args:
            out = join_values(out, value)
        for _, _, value in keywords:
            out = join_values(out, value)
        return _TAINTED if TAINT in out else EMPTY

    def binop(self, node: ast.BinOp, left: Value, right: Value) -> Value:
        return _TAINTED if TAINT in left or TAINT in right else EMPTY

    def iterate(self, node: ast.expr, iterable: Value) -> Value:
        return iterable

    # -- sinks ---------------------------------------------------------------

    def _in_sim_scope(self) -> bool:
        assert self.ctx is not None
        return self.ctx.in_scope(self.ctx.config.sim_scope)

    def _check_call_sink(self, node: ast.Call, target: str | None, args, keywords) -> None:
        assert self.ctx is not None
        if target is None:
            return
        prefixes = self.ctx.config.taint_sink_prefixes
        if not any(target.startswith(prefix) for prefix in prefixes):
            return
        for arg_node, value in args:
            if TAINT in value:
                self.report(
                    f"wall-clock/environment-derived value flows into {target}(); "
                    "simulation inputs must be deterministic",
                    arg_node,
                )
        for name, value_node, value in keywords:
            if TAINT in value:
                self.report(
                    f"wall-clock/environment-derived value flows into {target}"
                    f"({name}=...); simulation inputs must be deterministic",
                    value_node,
                )

    def store_attr(self, stmt, target: ast.Attribute, base: Value, value: Value, aug: bool) -> None:
        if TAINT in value and self._in_sim_scope():
            self.report(
                f"wall-clock/environment-derived value stored into simulation state "
                f"'.{target.attr}'; sim state must derive from seeds and engine.now only",
                target,
            )

    def store_subscript(self, stmt, target: ast.Subscript, base: Value, value: Value, aug: bool) -> None:
        if TAINT in value and self._in_sim_scope():
            self.report(
                "wall-clock/environment-derived value stored into simulation state "
                "element; sim state must derive from seeds and engine.now only",
                target,
            )
