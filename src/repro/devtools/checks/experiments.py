"""F007 — experiment modules must stay declarative and fan-out safe.

The evaluation harness executes experiments through picklable
:class:`~repro.runner.task.SimTask` specs, possibly in pool workers
that import the experiment module fresh.  Two things silently break
that contract:

* **mutable module-level state** — a lowercase module-level name bound
  to a mutable container accumulates across runs in one process but
  resets in every worker, so serial and parallel executions diverge
  (``ALL_CAPS`` constants are exempt: the convention marks them
  read-only, and the gate test keeps experiment modules honest);
* **non-importable task callables** — a lambda handed to a task
  factory cannot be reconstructed in a worker from its path.  The
  runner also rejects these at runtime; the lint catches them where
  they are written.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.framework import Check, ModuleContext, register

#: Module-level constructor calls that build mutable containers.
_MUTABLE_CTORS = frozenset({"list", "dict", "set", "collections.defaultdict", "collections.deque"})

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)


def _is_constant_name(name: str) -> bool:
    """Names the constant convention marks read-only (or private sentinels)."""
    return name == name.upper() or name.startswith("__")


def _is_mutable_value(node: ast.expr, ctx: ModuleContext) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        target = ctx.imports.resolve(node.func)
        if target in _MUTABLE_CTORS:
            return True
        if isinstance(node.func, ast.Name) and node.func.id in _MUTABLE_CTORS:
            return True
    return False


@register
class ExperimentStateCheck(Check):
    """Flags mutable module state and unpicklable task callables."""

    code = "F007"
    name = "experiment-state"
    description = (
        "mutable module-level state, global statements, and lambda task "
        "callables in experiment modules"
    )
    example_bad = (
        "_RESULTS = []                     # shared across fan-out workers\n"
        "task(lambda: run(n))              # lambdas do not pickle\n"
    )
    example_good = (
        "def run_point(n):                 # top-level function, picklable\n"
        "    return run(n)\n"
    )

    def enabled_for(self, ctx: ModuleContext) -> bool:
        return ctx.in_scope(ctx.config.experiment_scope)

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self._check_module_state(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Global):
                yield ctx.finding(
                    self.code,
                    "global statement in an experiment module; experiment "
                    "results must depend only on task payloads, not on "
                    "process-local accumulation",
                    node,
                )
            elif isinstance(node, ast.Call):
                yield from self._check_task_call(ctx, node)

    def _check_module_state(self, ctx: ModuleContext) -> Iterator[Finding]:
        for stmt in ctx.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not _is_mutable_value(value, ctx):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and not _is_constant_name(target.id):
                    yield ctx.finding(
                        self.code,
                        f"module-level mutable binding {target.id!r}; pool "
                        "workers import experiment modules fresh, so mutable "
                        "module state diverges between serial and parallel "
                        "runs (make it a function local or an ALL_CAPS "
                        "constant treated as read-only)",
                        stmt,
                    )

    def _check_task_call(self, ctx: ModuleContext, node: ast.Call) -> Iterator[Finding]:
        target = ctx.imports.resolve(node.func)
        if target not in ctx.config.task_factories:
            return
        candidates: list[ast.expr] = []
        if node.args:
            candidates.append(node.args[0])
        candidates.extend(kw.value for kw in node.keywords if kw.arg == "fn")
        for fn_arg in candidates:
            if isinstance(fn_arg, ast.Lambda):
                yield ctx.finding(
                    self.code,
                    "lambda passed as a task callable; process fan-out needs "
                    "top-level importable functions (module:qualname)",
                    fn_arg,
                )
