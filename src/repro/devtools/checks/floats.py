"""F003 — no ``==``/``!=`` against float expressions in simulation code.

Exact float equality is brittle under re-ordered arithmetic — exactly
the kind of refactoring the hot path gets (vectorization, fused
accumulation).  A comparison that works today can silently flip after
an optimization, changing simulated behaviour.  Use a tolerance
(``math.isclose`` / ``numpy.isclose``) or compare against integers.

Detection is syntactic and therefore conservative: a comparison is
flagged when either side is *manifestly* float-typed — a float
literal, a ``float(...)`` call, or arithmetic over such expressions.
Integer-literal comparisons (``n == 0``) are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.framework import Check, ModuleContext, register


def _is_float_expr(node: ast.expr) -> bool:
    """Whether ``node`` is manifestly float-valued."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        return _is_float_expr(node.operand)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):  # true division is always float
            return True
        return _is_float_expr(node.left) or _is_float_expr(node.right)
    return False


@register
class FloatEqualityCheck(Check):
    """Flags exact equality between float-typed expressions."""

    code = "F003"
    name = "float-equality"
    description = "==/!= against manifestly float expressions in sim code"
    example_bad = "if elapsed == 0.3:            # accumulates rounding error\n"
    example_good = "if math.isclose(elapsed, 0.3, rel_tol=1e-9):\n"

    def enabled_for(self, ctx: ModuleContext) -> bool:
        return ctx.in_scope(ctx.config.sim_scope)

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_expr(operands[i]) or _is_float_expr(operands[i + 1]):
                    yield ctx.finding(
                        self.code,
                        "exact float equality; use math.isclose/numpy.isclose "
                        "or an explicit epsilon",
                        node,
                    )
                    break
