"""F002 — no iteration over unordered collections in simulation code.

``set`` iteration order depends on insertion history and (for strings)
on ``PYTHONHASHSEED``, so a loop over a set can visit sessions or
resources in a different order between runs — the classic *silent*
determinism killer: results stay plausible, they just stop being
reproducible.  Simulation code must iterate lists/arrays, or wrap the
set in ``sorted(...)``.

The check is scope-limited and conservative: it flags iteration over
expressions it can *prove* are sets (set calls, set comprehensions,
set operators, names assigned only from those) and zero-argument
``.pop()`` on such names.  Aggregations that are order-insensitive
(``sorted``, ``len``, ``sum``, ``min``, ``max``, ``any``, ``all``,
``frozenset``) are allowed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.framework import Check, ModuleContext, register

#: Calls whose result does not depend on the argument's iteration order.
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "frozenset", "set", "bool"}
)

#: Set methods returning another set.
_SET_PRODUCING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

_SET_OPERATORS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _set_names(scope: ast.AST) -> set[str]:
    """Names in ``scope`` provably set-typed (every assignment is a set)."""
    candidates: set[str] = set()
    poisoned: set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            for target in targets:
                if _is_set_expr(node.value, candidates - poisoned):
                    candidates.add(target.id)
                else:
                    poisoned.add(target.id)
        elif isinstance(node, ast.AugAssign) and isinstance(node.target, ast.Name):
            if not isinstance(node.op, _SET_OPERATORS):
                poisoned.add(node.target.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            for name in ast.walk(target):
                if isinstance(name, ast.Name):
                    poisoned.add(name.id)
        elif isinstance(node, ast.arg):
            poisoned.add(node.arg)
    return candidates - poisoned


def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    """Whether ``node`` provably evaluates to a ``set``."""
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Set):
        # Literal displays of constants have a fixed (if hash-ordered)
        # content; per the invariant's definition only *non-literal*
        # origins are flagged.
        return not all(isinstance(elt, ast.Constant) for elt in node.elts)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id == "set":
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_PRODUCING_METHODS
        ):
            return _is_set_expr(node.func.value, set_names)
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPERATORS):
        return _is_set_expr(node.left, set_names) or _is_set_expr(node.right, set_names)
    if isinstance(node, ast.Name):
        return node.id in set_names
    return False


@register
class UnorderedIterationCheck(Check):
    """Flags order-dependent consumption of sets in sim scope."""

    code = "F002"
    name = "unordered-iteration"
    description = "iterating or pop()ing a set in deterministic simulation code"
    example_bad = (
        "for session in active_set:        # set order varies run to run\n"
        "    session.advance(dt)\n"
    )
    example_good = (
        "for session in sorted(active_set, key=lambda s: s.name):\n"
        "    session.advance(dt)\n"
    )

    def enabled_for(self, ctx: ModuleContext) -> bool:
        return ctx.in_scope(ctx.config.sim_scope)

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        scopes = [ctx.tree] + [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        ]
        reported: set[int] = set()
        for scope in scopes:
            names = _set_names(scope)
            for node in ast.walk(scope):
                finding = self._inspect(ctx, node, names)
                if finding is not None and id(node) not in reported:
                    reported.add(id(node))
                    yield finding

    def _inspect(
        self, ctx: ModuleContext, node: ast.AST, set_names: set[str]
    ) -> Finding | None:
        if isinstance(node, ast.For) and _is_set_expr(node.iter, set_names):
            return ctx.finding(
                self.code,
                "iteration over a set is order-nondeterministic; "
                "iterate a list or wrap in sorted(...)",
                node,
            )
        if isinstance(node, ast.comprehension) and _is_set_expr(node.iter, set_names):
            return ctx.finding(
                self.code,
                "comprehension over a set is order-nondeterministic; "
                "iterate a list or wrap in sorted(...)",
                node.iter,
            )
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "pop"
                and not node.args
                and not node.keywords
                and _is_set_expr(func.value, set_names)
            ):
                return ctx.finding(
                    self.code,
                    "set.pop() removes an arbitrary element; "
                    "use an explicit order (e.g. sorted list)",
                    node,
                )
            if (
                isinstance(func, ast.Name)
                and func.id in ("list", "tuple", "enumerate", "iter")
                and len(node.args) == 1
                and _is_set_expr(node.args[0], set_names)
            ):
                return ctx.finding(
                    self.code,
                    f"{func.id}() over a set fixes an arbitrary order; "
                    "wrap in sorted(...)",
                    node,
                )
        return None
