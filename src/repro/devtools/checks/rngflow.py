"""F011 — RNG provenance: every generator's seed must be *derived*.

F001 spots call sites: an **unseeded** ``np.random.default_rng()`` in
sim scope is flagged syntactically.  But a *hardcoded* seed is nearly
as bad — two components seeded ``default_rng(42)`` draw identical
sequences (accidental coupling), and a constant seed buried in a
library default silently decouples a component from the experiment's
root seed, so "change the seed, rerun" no longer covers it.  The
repository contract (``repro/sim/rng.py``, ``repro/runner/seeds.py``)
is that every generator flows from one of:

* a named :class:`~repro.sim.rng.RngStreams` stream (``streams.get``),
* a seed derived via :func:`repro.runner.derive_seed`,
* a seed handed in by the caller (a ``seed``/``*_seed`` parameter or
  attribute — provenance is then the caller's responsibility).

This check runs the dataflow layer to answer "where did this seed come
from": seed-ness propagates through arithmetic (hash mixing),
``int()``/``abs()``, and :class:`numpy.random.SeedSequence`; generator
constructors called with a literal constant — or with a value that
provably is one — are flagged.  Unknown seeds do not flag.
"""

from __future__ import annotations

import ast

from repro.devtools.dataflow import EMPTY, DataflowCheck, Scope, Value
from repro.devtools.framework import ModuleContext, register

#: Tags.
SEED = "seed"  # sanctioned seed material
LITERAL = "lit"  # a compile-time numeric constant
STREAMS = "streams"  # an RngStreams family

#: numpy.random generator constructors taking a seed.
_GENERATOR_CTORS = frozenset(
    {"default_rng", "Generator", "RandomState", "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937"}
)

#: Builtins through which seed-ness passes unchanged.
_PASSTHROUGH = frozenset({"int", "abs"})

#: Parameter/attribute names that carry caller-supplied seed material.
_SEED_NAMES = frozenset({"seed", "entropy", "spawn_key"})


def _is_seed_name(name: str | None) -> bool:
    return name is not None and (name in _SEED_NAMES or name.endswith("_seed"))


@register
class RngProvenanceCheck(DataflowCheck):
    """Flags generators built from hardcoded (or no provenance) seeds."""

    code = "F011"
    name = "rng-provenance"
    description = "numpy Generators whose seed is a hardcoded literal instead of derive_seed/RngStreams"
    example_bad = "rng = np.random.default_rng(42)  # same stream in every component seeded 42\n"
    example_good = (
        "rng = streams.get('measurement')           # named RngStreams stream\n"
        "rng = np.random.default_rng(derive_seed(seed, 'fig09', net))\n"
    )

    def enabled_for(self, ctx: ModuleContext) -> bool:
        return ctx.in_scope(ctx.config.sim_scope)

    # -- seed sources --------------------------------------------------------

    def param(self, scope: Scope, name: str, annotation: ast.expr | None) -> Value:
        if _is_seed_name(name):
            return frozenset({SEED})
        return EMPTY

    def constant(self, node: ast.Constant) -> Value:
        if isinstance(node.value, (int, float)) and not isinstance(node.value, bool):
            return frozenset({LITERAL})
        return EMPTY

    def attribute_load(self, node: ast.Attribute, base: Value, resolved: str | None) -> Value:
        if _is_seed_name(node.attr.lstrip("_")):
            return frozenset({SEED})
        return EMPTY

    def binop(self, node: ast.BinOp, left: Value, right: Value) -> Value:
        # Hash mixing: arithmetic over seed material stays seed material.
        if SEED in left or SEED in right:
            return frozenset({SEED})
        if LITERAL in left and LITERAL in right:
            return frozenset({LITERAL})
        return EMPTY

    # -- calls ---------------------------------------------------------------

    def call(self, node, target, base, args, keywords) -> Value:
        values = [value for _, value in args] + [value for _, _, value in keywords]
        # Builtins never resolve through the import map.
        if isinstance(node.func, ast.Name) and node.func.id in _PASSTHROUGH and values:
            return values[0]
        if target is not None:
            tail = target.rsplit(".", 1)[-1]
            if tail == "derive_seed" or target.endswith(".derive_seed"):
                return frozenset({SEED})
            if tail == "RngStreams" or target.endswith(".RngStreams"):
                self._check_seed_args(node, args, keywords, what="RngStreams")
                return frozenset({STREAMS})
            if target == "numpy.random.SeedSequence":
                self._check_seed_args(node, args, keywords, what="np.random.SeedSequence")
                return frozenset({SEED})
            if target in _PASSTHROUGH and values:
                return values[0]
            if target.startswith("numpy.random.") and tail in _GENERATOR_CTORS:
                self._check_seed_args(node, args, keywords, what=f"np.random.{tail}")
                return frozenset({SEED})  # generator from a vetted/unknown seed
        if isinstance(node.func, ast.Attribute):
            if STREAMS in base and node.func.attr == "get":
                return frozenset({SEED})
            if STREAMS in base and node.func.attr == "spawn":
                return frozenset({STREAMS})
        return EMPTY

    def _check_seed_args(self, node: ast.Call, args, keywords, what: str) -> None:
        seed_args = [(n, v) for n, v in args] + [
            (value_node, value) for name, value_node, value in keywords if _is_seed_name(name)
        ]
        for value_node, value in seed_args:
            if LITERAL in value and SEED not in value:
                self.report(
                    f"{what}(...) seeded with a hardcoded constant; derive the seed "
                    "via repro.runner.derive_seed or take a named RngStreams stream",
                    node,
                )
                return
