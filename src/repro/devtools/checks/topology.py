"""F005 — topology-affecting writes must invalidate the cached topology.

Since PR 1 the executor caches its arbitration scaffolding in a
``_Topology`` keyed by which sessions are attached and how their
workers are laid out.  Any write that changes that layout — attaching
or detaching sessions, replacing ``params``, swapping a path or
storage — must raise the dirty flag (directly or via
``invalidate_topology`` / ``_notify_topology_change``), or the executor
keeps arbitrating yesterday's topology.  The per-step fingerprint is a
safety net, not a license: it only covers worker counts/parallelism.

The check is registry-driven: ``[tool.repro-lint]`` lists the modules
under discipline (``topology-modules``), the attribute names that are
topology-affecting (``topology-fields``), and what counts as an
invalidation (``invalidators`` calls / ``dirty-attrs`` assignments).
Every function in a disciplined module that writes a registered field
— by assignment or by mutating call (``.append``, ``.remove``, ...) —
must also contain an invalidation.  Constructors are exempt (the
executor is not attached yet).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.framework import Check, ModuleContext, register

#: Method calls that mutate a list/dict/set attribute in place.
_MUTATORS = frozenset(
    {"append", "remove", "clear", "extend", "insert", "pop", "update", "add", "discard", "sort"}
)

_EXEMPT_FUNCTIONS = frozenset({"__init__", "__new__", "__post_init__"})


def _walk_function(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions.

    A nested callback is its own accounting unit — an invalidation in
    the enclosing function does not cover writes that happen when the
    callback later fires (and vice versa).
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


def _written_fields(
    func: ast.FunctionDef | ast.AsyncFunctionDef, fields: frozenset[str]
) -> list[tuple[str, ast.AST]]:
    """(field, node) pairs for registered-field writes inside ``func``."""
    writes: list[tuple[str, ast.AST]] = []
    for node in _walk_function(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute) and target.attr in fields:
                    writes.append((target.attr, node))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS and isinstance(node.func.value, ast.Attribute):
                owner = node.func.value
                if owner.attr in fields:
                    writes.append((owner.attr, node))
    return writes


def _has_invalidation(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    invalidators: frozenset[str],
    dirty_attrs: frozenset[str],
) -> bool:
    for node in _walk_function(func):
        if isinstance(node, ast.Call):
            callee = node.func
            name = callee.attr if isinstance(callee, ast.Attribute) else (
                callee.id if isinstance(callee, ast.Name) else None
            )
            if name in invalidators:
                return True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Attribute) and target.attr in dirty_attrs:
                    return True
    return False


@register
class TopologyDirtyCheck(Check):
    """Flags topology-field writes without a cache invalidation."""

    code = "F005"
    name = "topology-dirty"
    description = "topology-affecting writes must raise the executor's dirty flag"
    example_bad = (
        "def retarget(self, path):\n"
        "    self.path = path              # cached equilibrium now stale\n"
    )
    example_good = (
        "def retarget(self, path):\n"
        "    self.path = path\n"
        "    self._mark_dirty()            # next step re-solves the topology\n"
    )

    def enabled_for(self, ctx: ModuleContext) -> bool:
        return ctx.in_scope(ctx.config.topology_modules)

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        fields = frozenset(ctx.config.topology_fields)
        invalidators = frozenset(ctx.config.invalidators)
        dirty_attrs = frozenset(ctx.config.dirty_attrs)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name in _EXEMPT_FUNCTIONS:
                continue
            writes = _written_fields(node, fields)
            if not writes:
                continue
            if _has_invalidation(node, invalidators, dirty_attrs):
                continue
            for field, write in writes:
                yield ctx.finding(
                    self.code,
                    f"write to topology-affecting field {field!r} in "
                    f"{node.name}() without invalidating the cached topology "
                    "(call invalidate_topology/_notify_topology_change or set _dirty)",
                    write,
                )
