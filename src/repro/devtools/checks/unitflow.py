"""F010 — dimensional consistency by dataflow (units propagate, mixes flag).

F004 polices *literals*; this check polices *flows*.  Values built by
the :mod:`repro.units` constructors carry a dimension-and-scale tag —
``gbps(10)`` is a rate in bps, ``gigabytes(1)`` a size in bytes,
``milliseconds(30)`` a time in seconds, ``seconds_to_ms(t)`` a time in
**milliseconds** — and so do names with a unit suffix (``rate_bps``,
``gap_s``, ``size_bytes``) or a well-known physical name (``dt``,
``rtt``, ``now``).  The tags propagate through assignments, branches,
and arithmetic; the check flags the operations where the HARP-style
mixed-unit bugs live:

* ``+``/``-``/comparisons between different dimensions or scales
  (seconds vs milliseconds, bps vs B/s — the Mbps/MB-per-s trap);
* dividing a byte size by a *bit* rate (the silent 8x bug) and
  vice versa;
* double conversion: feeding an already unit-tagged value back into a
  units constructor, or a non-bps value into ``bps_to_gbps``;
* raw magnitude literals (``>= 1e6`` or ``10**9``-style) flowing into a
  unit-suffixed keyword parameter instead of a constructor.

Unknown values never flag: the analysis is conservative, and division
by an untagged operand simply drops the tag.
"""

from __future__ import annotations

import ast

from repro.devtools.dataflow import EMPTY, DataflowCheck, Scope, Value
from repro.devtools.framework import ModuleContext, register

# -- the tag vocabulary ------------------------------------------------------
# ``u:<dimension>:<scale>``: dimension in {time, rate, size}, scale the
# concrete unit.  Dimensionless results are untagged (EMPTY).

TIME_S = "u:time:s"
TIME_MS = "u:time:ms"
TIME_US = "u:time:us"
RATE_BPS = "u:rate:bps"
RATE_BYTES_PS = "u:rate:Bps"
RATE_GBPS = "u:rate:gbps"
RATE_MBPS = "u:rate:mbps"
SIZE_BYTES = "u:size:bytes"
SIZE_BITS = "u:size:bits"

#: repro.units constructors/converters -> tag of their result.
_UNIT_CALLS = {
    "kilobytes": SIZE_BYTES, "megabytes": SIZE_BYTES, "gigabytes": SIZE_BYTES,
    "kibibytes": SIZE_BYTES, "mebibytes": SIZE_BYTES, "gibibytes": SIZE_BYTES,
    "kbps": RATE_BPS, "mbps": RATE_BPS, "gbps": RATE_BPS,
    "bits_per_second": RATE_BPS, "bytes_per_second": RATE_BYTES_PS,
    "bps_to_gbps": RATE_GBPS, "bps_to_mbps": RATE_MBPS,
    "milliseconds": TIME_S, "microseconds": TIME_S, "minutes": TIME_S, "hours": TIME_S,
    "seconds_to_ms": TIME_MS, "seconds_to_us": TIME_US,
}

#: Converters whose *argument* must already carry the given tag.
_CONVERTER_INPUT = {
    "bps_to_gbps": RATE_BPS, "bps_to_mbps": RATE_BPS,
    "bytes_per_second": RATE_BPS, "bits_per_second": RATE_BYTES_PS,
    "seconds_to_ms": TIME_S, "seconds_to_us": TIME_S,
}

#: Constructors taking a dimensionless magnitude (double-conversion trap).
_MAGNITUDE_CTORS = frozenset(
    {"kilobytes", "megabytes", "gigabytes", "kibibytes", "mebibytes", "gibibytes",
     "kbps", "mbps", "gbps", "milliseconds", "microseconds", "minutes", "hours"}
)

#: repro.units magnitude constants: multiplying by one imprints the unit.
_UNIT_CONSTANTS = {
    "KB": SIZE_BYTES, "MB": SIZE_BYTES, "GB": SIZE_BYTES, "TB": SIZE_BYTES,
    "KiB": SIZE_BYTES, "MiB": SIZE_BYTES, "GiB": SIZE_BYTES, "TiB": SIZE_BYTES,
    "Kbps": RATE_BPS, "Mbps": RATE_BPS, "Gbps": RATE_BPS,
}

#: Name suffixes that imprint a unit on parameters, variables, attributes.
_SUFFIX_TAGS = (
    ("_seconds", TIME_S), ("_secs", TIME_S), ("_sec", TIME_S), ("_s", TIME_S),
    ("_ms", TIME_MS), ("_us", TIME_US),
    ("_gbps", RATE_GBPS), ("_mbps", RATE_MBPS), ("_bps", RATE_BPS), ("_Bps", RATE_BYTES_PS),
    ("_bytes", SIZE_BYTES), ("_bits", SIZE_BITS), ("_rtt", TIME_S),
)

#: Whole names with an unambiguous physical meaning in this codebase
#: (all simulator time is seconds; see repro/units.py).
_KNOWN_NAMES = {
    "dt": TIME_S, "rtt": TIME_S, "now": TIME_S, "deadline": TIME_S,
    "timeout": TIME_S, "duration": TIME_S,
}

#: Raw literals at or above this magnitude inside a unit-suffixed
#: keyword are suspicious (mirrors F004's threshold).
_LITERAL_MAGNITUDE = 1e6

#: Division algebra: (numerator tag, denominator tag) -> result tag.
_DIV_RULES = {
    (SIZE_BYTES, TIME_S): RATE_BYTES_PS,
    (SIZE_BITS, TIME_S): RATE_BPS,
    (SIZE_BYTES, RATE_BYTES_PS): TIME_S,
    (SIZE_BITS, RATE_BPS): TIME_S,
}

#: Division mismatches worth their own message (the 8x bug).
_DIV_MISMATCH = {
    (SIZE_BYTES, RATE_BPS): "dividing a byte size by a bit rate (off by 8x); "
    "convert with units.bytes_per_second first",
    (SIZE_BITS, RATE_BYTES_PS): "dividing a bit size by a byte rate (off by 8x); "
    "convert with units.bits_per_second first",
}

#: Multiplication algebra.
_MULT_RULES = {
    (TIME_S, RATE_BPS): SIZE_BITS,
    (TIME_S, RATE_BYTES_PS): SIZE_BYTES,
}

_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def name_tag(name: str | None) -> str | None:
    """Unit tag implied by a name's suffix or well-known meaning."""
    if not name:
        return None
    if name in _KNOWN_NAMES:
        return _KNOWN_NAMES[name]
    for suffix, tag in _SUFFIX_TAGS:
        if name.endswith(suffix):
            return tag
    return None


def _single(value: Value) -> str | None:
    """The value's unit tag, when it carries exactly one (else None)."""
    tags = [t for t in value if t.startswith("u:")]
    return tags[0] if len(tags) == 1 else None


def _describe(tag: str) -> str:
    _, dim, scale = tag.split(":")
    return f"{dim} [{scale}]"


def _is_magnitude_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp):
        node = node.operand
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return not isinstance(node.value, bool) and abs(float(node.value)) >= _LITERAL_MAGNITUDE
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow):
        return (
            isinstance(node.left, ast.Constant)
            and isinstance(node.right, ast.Constant)
            and node.left.value in (2, 10)
        )
    return False


@register
class UnitFlowCheck(DataflowCheck):
    """Propagates repro.units dimensions and flags mixed-unit operations."""

    code = "F010"
    name = "unit-propagation"
    description = "mixed-dimension arithmetic/comparisons and raw literals in unit positions"
    example_bad = (
        "def eta(size_bytes, rate_bps):\n"
        "    return size_bytes / rate_bps  # bytes / bits-per-second: off by 8x\n"
    )
    example_good = (
        "def eta(size_bytes, rate_bps):\n"
        "    return size_bytes / units.bytes_per_second(rate_bps)\n"
    )

    def enabled_for(self, ctx: ModuleContext) -> bool:
        return ctx.in_scope(ctx.config.sim_scope) or ctx.in_scope(ctx.config.unitflow_extra_scope)

    # -- sources -------------------------------------------------------------

    def param(self, scope: Scope, name: str, annotation: ast.expr | None) -> Value:
        return self.name_fallback(name)

    def name_fallback(self, name: str) -> Value:
        tag = name_tag(name)
        return frozenset({tag}) if tag else EMPTY

    def attribute_load(self, node: ast.Attribute, base: Value, resolved: str | None) -> Value:
        if resolved is not None and resolved.startswith("repro.units."):
            constant = _UNIT_CONSTANTS.get(resolved.rsplit(".", 1)[-1])
            if constant is not None:
                return frozenset({f"mag:{constant}"})
        tag = name_tag(node.attr)
        return frozenset({tag}) if tag else EMPTY

    def subscript_load(self, node: ast.Subscript, base: Value) -> Value:
        # Indexing keeps the unit: rates[w] is still a rate.
        return base

    def iterate(self, node: ast.expr, iterable: Value) -> Value:
        return iterable

    # -- calls ---------------------------------------------------------------

    def call(self, node, target, base, args, keywords) -> Value:
        self._check_unit_keywords(keywords)
        if target is None or not target.startswith("repro.units."):
            return EMPTY
        fn = target.rsplit(".", 1)[-1]
        arg_value = args[0][1] if args else (keywords[0][2] if keywords else EMPTY)
        arg_tag = _single(arg_value)
        expected = _CONVERTER_INPUT.get(fn)
        if expected is not None and arg_tag is not None and arg_tag != expected:
            self.report(
                f"units.{fn}() expects {_describe(expected)} but receives "
                f"{_describe(arg_tag)} — double conversion or wrong quantity",
                node,
            )
        elif fn in _MAGNITUDE_CTORS and arg_tag is not None:
            self.report(
                f"units.{fn}() applied to a value already tagged {_describe(arg_tag)}; "
                "constructors take dimensionless magnitudes",
                node,
            )
        return frozenset({_UNIT_CALLS[fn]}) if fn in _UNIT_CALLS else EMPTY

    def _check_unit_keywords(self, keywords) -> None:
        for name, value_node, value in keywords:
            expected = name_tag(name)
            if expected is None:
                continue
            if _is_magnitude_literal(value_node):
                self.report(
                    f"raw magnitude literal flowing into unit-suffixed parameter "
                    f"{name!r}; build it with the repro.units constructors",
                    value_node,
                )
                continue
            got = _single(value)
            if got is not None and got != expected:
                self.report(
                    f"passing {_describe(got)} into parameter {name!r} which expects "
                    f"{_describe(expected)}",
                    value_node,
                )

    # -- operators -----------------------------------------------------------

    def binop(self, node: ast.BinOp, left: Value, right: Value) -> Value:
        lt, rt = _single(left), _single(right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if lt is not None and rt is not None:
                if lt != rt:
                    self.report(
                        f"mixed units in '{'+' if isinstance(node.op, ast.Add) else '-'}': "
                        f"{_describe(lt)} vs {_describe(rt)}",
                        node,
                    )
                    return EMPTY
                return frozenset({lt})
            return frozenset({lt or rt}) if (lt or rt) else EMPTY
        if isinstance(node.op, ast.Mult):
            lmag = next((t[4:] for t in left if t.startswith("mag:")), None)
            rmag = next((t[4:] for t in right if t.startswith("mag:")), None)
            if lmag is not None and rt is None:
                return frozenset({lmag})
            if rmag is not None and lt is None:
                return frozenset({rmag})
            if lt is not None and rt is not None:
                pair = _MULT_RULES.get((lt, rt)) or _MULT_RULES.get((rt, lt))
                if pair is not None:
                    return frozenset({pair})
            return EMPTY
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            if lt is not None and rt is not None:
                if lt == rt:
                    return EMPTY  # ratio: dimensionless
                mismatch = _DIV_MISMATCH.get((lt, rt))
                if mismatch is not None:
                    self.report(mismatch, node)
                    return EMPTY
                rule = _DIV_RULES.get((lt, rt))
                if rule is not None:
                    return frozenset({rule})
            if lt is not None and rt is None and not any(t.startswith("mag:") for t in right):
                # Dividing a tagged value by an unknown scalar keeps the
                # dimension (rates / n is still a rate); dividing by a
                # magnitude constant is display conversion — drop it.
                return frozenset({lt})
            return EMPTY
        if isinstance(node.op, ast.Mod) and lt is not None and rt is not None and lt == rt:
            return frozenset({lt})
        return EMPTY

    def compare(self, node: ast.Compare, pairs) -> None:
        for op, left, right in pairs:
            if not isinstance(op, _COMPARE_OPS):
                continue
            lt, rt = _single(left), _single(right)
            if lt is not None and rt is not None and lt != rt:
                self.report(
                    f"comparison across units: {_describe(lt)} vs {_describe(rt)}",
                    node,
                )
