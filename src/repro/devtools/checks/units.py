"""F004 — rates and sizes are built through :mod:`repro.units`.

A raw ``10**9`` (or ``x * 1e9``) hides *which* quantity is meant —
gigabits? gigabytes? decimal or binary? — and unit bugs in a transfer
simulator are indistinguishable from modelling results.  Configuration
and reporting code must use the named constructors
(:func:`repro.units.gbps`, :func:`repro.units.gigabytes`, ``Gbps``,
``MB``, :func:`repro.units.seconds_to_ms`, ...); only
``repro/units.py`` itself may define magnitudes.

Flagged:

* power literals ``10**{3,6,9,12,15}`` and ``2**{10,20,30,40}``;
* magnitude constants ``1e3``/``1e6``/``1e9``/``1e12`` (and their
  integer spellings from one million up) used in ``*`` / ``/``
  arithmetic.

Small-magnitude literals like ``1e-9`` (tolerances) and integer
``1000`` (commonly a count) are deliberately not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.findings import Finding
from repro.devtools.framework import Check, ModuleContext, register

_POW_BASES = {10: frozenset({3, 6, 9, 12, 15}), 2: frozenset({10, 20, 30, 40})}

#: Magnitudes flagged when used in multiplicative arithmetic.
_MAGNITUDES = frozenset({1e3, 1e6, 1e9, 1e12})

#: Integer spellings small enough to be plausible counts are exempt.
_MIN_INT_MAGNITUDE = 1_000_000


def _literal_int(node: ast.expr) -> int | None:
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    return None


@register
class UnitHygieneCheck(Check):
    """Flags raw magnitude literals outside the units module."""

    code = "F004"
    name = "unit-hygiene"
    description = "raw 10**9-style magnitude literals outside repro.units"
    example_bad = "capacity = 10 * 10**9         # bits? bytes? per second?\n"
    example_good = "capacity = 10 * units.Gbps    # named, dimensioned constant\n"

    def enabled_for(self, ctx: ModuleContext) -> bool:
        return ctx.module.startswith("repro/") and not ctx.in_scope(
            ctx.config.unit_modules
        )

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow):
                base = _literal_int(node.left)
                exp = _literal_int(node.right)
                if base in _POW_BASES and exp in _POW_BASES[base]:
                    yield ctx.finding(
                        self.code,
                        f"raw magnitude literal {base}**{exp}; "
                        "use the repro.units constructors/constants",
                        node,
                    )
            elif isinstance(node, ast.Constant):
                yield from self._check_constant(ctx, node)

    def _check_constant(self, ctx: ModuleContext, node: ast.Constant) -> Iterator[Finding]:
        value = node.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return
        if float(value) not in _MAGNITUDES:
            return
        if type(value) is int and value < _MIN_INT_MAGNITUDE:
            return
        parent = ctx.parent(node)
        if isinstance(parent, ast.UnaryOp):
            parent = ctx.parent(parent)
        if isinstance(parent, ast.BinOp) and isinstance(
            parent.op, (ast.Mult, ast.Div, ast.FloorDiv, ast.Mod)
        ):
            yield ctx.finding(
                self.code,
                f"magnitude literal {value!r} in rate/size arithmetic; "
                "use the repro.units constructors/constants",
                node,
            )
