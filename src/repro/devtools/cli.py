"""``repro lint`` — the CLI front end of the invariant checker.

Kept inside :mod:`repro.devtools` so :mod:`repro.cli` stays a thin
dispatcher; the import cost is only paid when the subcommand runs.
"""

from __future__ import annotations

import argparse
from pathlib import Path

import repro
from repro.devtools.config import LintConfig, load_config
from repro.devtools.findings import render_human, render_json
from repro.devtools.framework import REGISTRY, lint_paths


def default_paths() -> list[str]:
    """The installed ``repro`` package — lints the source tree it came from."""
    return [str(Path(repro.__file__).resolve().parent)]


def add_lint_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``lint`` subcommand on the main CLI's subparsers."""
    lint = sub.add_parser(
        "lint",
        help="run the repo-specific invariant checks (determinism, units, topology)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    lint.add_argument(
        "--select",
        default="",
        help="comma-separated check codes to run (default: all)",
    )
    lint.add_argument(
        "--ignore",
        default="",
        help="comma-separated check codes to skip",
    )
    lint.add_argument(
        "--no-config",
        action="store_true",
        help="ignore [tool.repro-lint] in pyproject.toml; use built-in defaults",
    )
    lint.add_argument(
        "--sarif",
        metavar="PATH",
        help="additionally write findings as SARIF 2.1.0 to PATH ('-' for stdout)",
    )
    lint.add_argument(
        "--baseline",
        metavar="PATH",
        help="only fail on findings not recorded in this baseline file",
    )
    lint.add_argument(
        "--update-baseline",
        metavar="PATH",
        help="write the current findings to PATH as the new baseline and exit 0",
    )
    lint.add_argument(
        "--list-checks",
        action="store_true",
        help="print the registered checks and exit",
    )
    lint.set_defaults(fn=cmd_lint)


def _codes(raw: str) -> tuple[str, ...]:
    return tuple(code.strip().upper() for code in raw.split(",") if code.strip())


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the checks; exit 1 iff any finding survives suppression."""
    if args.list_checks:
        for code in sorted(REGISTRY):
            check = REGISTRY[code]
            print(f"{code}  {check.name:<22} {check.description}")
        return 0

    paths = args.paths or default_paths()
    if args.no_config:
        config = LintConfig()
    else:
        config = load_config(Path(paths[0]))
    overrides = {}
    if args.select:
        overrides["select"] = _codes(args.select)
    if args.ignore:
        overrides["ignore"] = _codes(args.ignore)
    if overrides:
        config = config.with_(**overrides)

    findings = lint_paths(paths, config=config)

    if args.update_baseline:
        from repro.devtools.baseline import write_baseline

        write_baseline(findings, Path(args.update_baseline))
        n = len(findings)
        print(f"baseline: recorded {n} finding{'s' if n != 1 else ''} in {args.update_baseline}")
        return 0

    suppressed = 0
    if args.baseline:
        from repro.devtools.baseline import filter_baselined, load_baseline

        findings, suppressed = filter_baselined(findings, load_baseline(Path(args.baseline)))

    if args.sarif:
        from repro.devtools.sarif import render_sarif

        sarif_text = render_sarif(findings, tool_version=getattr(repro, "__version__", "0"))
        if args.sarif == "-":
            print(sarif_text)
        else:
            Path(args.sarif).write_text(sarif_text + "\n", encoding="utf-8")

    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_human(findings))
        if suppressed:
            print(f"baseline: {suppressed} accepted finding{'s' if suppressed != 1 else ''} hidden")
    return 1 if findings else 0
