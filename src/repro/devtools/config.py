"""Lint configuration: built-in defaults + ``[tool.repro-lint]`` overrides.

Every knob has a default matching this repository's layout, so the
linter works with no configuration at all; ``pyproject.toml`` overrides
exist so later PRs can widen scopes or register new topology fields
without touching the checks themselves.  TOML keys use dashes
(``sim-scope``); they map onto the underscored dataclass fields below.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - 3.10 fallback, no tomli in image
    tomllib = None  # type: ignore[assignment]

#: Packages whose code is part of the deterministic simulation substrate.
#: F001/F002/F003 apply here (experiments/analysis are presentation-layer
#: and may e.g. format wall-clock durations).
SIM_SCOPE = (
    "repro/sim/",
    "repro/network/",
    "repro/transfer/",
    "repro/storage/",
    "repro/hosts/",
    "repro/core/",
    "repro/baselines/",
    "repro/service/",
    "repro/faults/",
    # The linter holds itself to the determinism bar it enforces.
    "repro/devtools/",
)


@dataclass(frozen=True)
class LintConfig:
    """Resolved configuration for one lint run."""

    #: Codes to run (empty = all registered checks).
    select: tuple[str, ...] = ()
    #: Codes to skip.
    ignore: tuple[str, ...] = ()
    #: Path fragments excluded from linting entirely.
    exclude: tuple[str, ...] = ()
    #: Module prefixes forming the deterministic-simulation scope.
    sim_scope: tuple[str, ...] = SIM_SCOPE
    #: Modules allowed to define raw magnitude literals (F004).
    unit_modules: tuple[str, ...] = ("repro/units.py",)
    #: Modules subject to topology-dirty discipline (F005).
    topology_modules: tuple[str, ...] = (
        "repro/transfer/executor.py",
        "repro/transfer/session.py",
    )
    #: Attribute names whose mutation invalidates the cached topology.
    topology_fields: tuple[str, ...] = (
        "sessions",
        "params",
        "tcp",
        "path",
        "source",
        "destination",
        "on_topology_change",
    )
    #: Call names that count as invalidating the topology cache.
    invalidators: tuple[str, ...] = (
        "invalidate_topology",
        "_notify_topology_change",
        "_mark_dirty",
    )
    #: Attributes whose assignment counts as raising the dirty flag.
    dirty_attrs: tuple[str, ...] = ("_dirty",)
    #: Module prefixes holding runner-executed experiment code (F007).
    experiment_scope: tuple[str, ...] = ("repro/experiments/",)
    #: Module prefixes whose public APIs must carry docstrings with
    #: units on physical quantities (F008).
    docstring_scope: tuple[str, ...] = (
        "repro/obs/",
        "repro/runner/",
        "repro/faults/",
    )
    #: Canonical names of task-building callables (F007 lambda check).
    task_factories: tuple[str, ...] = (
        "repro.runner.task",
        "repro.runner.task.task",
        "repro.runner.SimTask",
        "repro.runner.task.SimTask",
    )
    #: Modules under BatchStore view-aliasing discipline (F009).
    alias_scope: tuple[str, ...] = (
        "repro/transfer/",
        "repro/sim/",
        "repro/faults/",
        "repro/service/",
    )
    #: Session attributes that are BatchStore-adopted views (F009).
    adopted_fields: tuple[str, ...] = (
        "rates",
        "file_size",
        "file_done",
        "gap_left",
        "stall_left",
        "attempts",
        "has_file",
    )
    #: Functions allowed to rebind adopted arrays (F009): they re-gather
    #: or hand out copies, and raise the topology-dirty flag.
    detach_points: tuple[str, ...] = (
        "__init__",
        "adopt_state",
        "detach",
        "_resize_workers",
    )
    #: Class names whose instances are transfer sessions (F009).
    session_classes: tuple[str, ...] = ("TransferSession",)
    #: Modules outside the sim scope that still get unit-propagation
    #: checking (F010) — presentation layers that format physical
    #: quantities.
    unitflow_extra_scope: tuple[str, ...] = (
        "repro/obs/",
        "repro/testbeds/",
    )
    #: Call-target prefixes that count as simulation inputs (F012): a
    #: wall-clock/environment-derived value reaching one is a finding.
    taint_sink_prefixes: tuple[str, ...] = (
        "repro.sim.",
        "repro.network.",
        "repro.transfer.",
        "repro.storage.",
        "repro.hosts.",
        "repro.core.",
        "repro.baselines.",
        "repro.service.",
        "repro.faults.",
    )

    def with_(self, **kwargs: Any) -> "LintConfig":
        """Copy with fields replaced (tuples coerced from lists)."""
        clean = {k: tuple(v) if isinstance(v, list) else v for k, v in kwargs.items()}
        return replace(self, **clean)


def find_pyproject(start: Path) -> Path | None:
    """Walk upward from ``start`` to the nearest ``pyproject.toml``."""
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in (node, *node.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(start: Path | None = None) -> LintConfig:
    """Configuration from the nearest ``pyproject.toml`` (or defaults).

    Missing file, missing table, and a missing TOML parser all fall
    back to the built-in defaults — the linter must run anywhere.
    """
    pyproject = find_pyproject(start or Path.cwd())
    if pyproject is None or tomllib is None:
        return LintConfig()
    try:
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return LintConfig()
    table = data.get("tool", {}).get("repro-lint", {})
    return config_from_table(table)


def config_from_table(table: dict[str, Any]) -> LintConfig:
    """Build a :class:`LintConfig` from a ``[tool.repro-lint]`` table.

    Unknown keys are ignored (forward compatibility with checks added
    by later PRs).
    """
    known = {f.name for f in fields(LintConfig)}
    overrides = {}
    for key, value in table.items():
        name = key.replace("-", "_")
        if name in known:
            overrides[name] = value
    return LintConfig().with_(**overrides)
