"""Intra-procedural dataflow / abstract interpretation for lint checks.

The F001–F008 checks are *syntactic*: they spot bad call sites and bad
literals.  The F009–F012 family needs to know where a value **came
from** — is this array a ``BatchStore`` view, does this float carry a
unit, did this generator's seed flow from :func:`derive_seed`, was this
number read off the wall clock?  This module supplies the machinery:

* :class:`Scope` / :func:`build_scope_tree` — symbol tables and scope
  resolution (module, class, function, lambda) with owner-class
  tracking for methods;
* :class:`DataflowEngine` — a forward abstract interpreter over one
  module: statements execute in program order, branches fork and join
  environments, loop bodies run twice to reach loop-carried facts, and
  reaching definitions (def-use chains) are recorded alongside;
* :class:`Domain` — the transfer-function interface a check implements:
  seed abstract values at parameters/constants/calls, combine them at
  operators, and observe stores (the sinks).  Abstract values are
  ``frozenset[str]`` tag sets; the empty set means "unknown"; joins are
  unions (may-analysis);
* :class:`DataflowCheck` — glue adapting a ``Domain`` to the existing
  :class:`~repro.devtools.framework.Check` registry, with de-duplication
  of findings re-reported by the loop fixpoint pass.

Everything is intra-procedural and stdlib-``ast`` only: no new runtime
dependencies, no cross-module inference.  Checks stay conservative —
an unknown value never produces a finding.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.findings import Finding
from repro.devtools.framework import Check, ModuleContext

#: Abstract value: a set of string tags.  Empty set = unknown.
Value = frozenset
EMPTY: Value = frozenset()

#: Environment: name -> abstract value.
Env = dict

#: Reaching definitions: name -> frozenset of defining statement nodes.
Defs = dict


# ---------------------------------------------------------------------------
# Scopes and symbol tables.
# ---------------------------------------------------------------------------

_SCOPE_NODES = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


class Scope:
    """One lexical scope: the module, a class body, or a function/lambda.

    Attributes
    ----------
    kind:
        ``"module"``, ``"class"``, ``"function"``, or ``"lambda"``.
    node:
        The AST node that opens the scope.
    parent:
        Enclosing scope (``None`` for the module).
    name:
        Function/class name (``"<module>"`` / ``"<lambda>"``).
    owner_class:
        For functions defined directly inside a class body, that class's
        name — how a domain knows ``self`` in ``TransferSession.step``
        is a session.
    functions, classes:
        Names bound to ``def``/``class`` statements directly in this
        scope (the local half of call resolution).
    """

    def __init__(self, kind: str, node: ast.AST, parent: Optional["Scope"]) -> None:
        self.kind = kind
        self.node = node
        self.parent = parent
        self.children: list[Scope] = []
        self.name = getattr(node, "name", "<module>" if kind == "module" else "<lambda>")
        self.owner_class = parent.name if parent is not None and parent.kind == "class" else None
        self.functions: dict[str, ast.AST] = {}
        self.classes: dict[str, ast.ClassDef] = {}
        if parent is not None:
            parent.children.append(self)

    def enclosing_function(self) -> Optional["Scope"]:
        """This scope if it is a function/lambda, else the nearest one up."""
        scope: Optional[Scope] = self
        while scope is not None and scope.kind not in ("function", "lambda"):
            scope = scope.parent
        return scope

    def lookup_local_def(self, name: str) -> ast.AST | None:
        """A ``def``/``class`` node visible from this scope under ``name``."""
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.functions:
                return scope.functions[name]
            if name in scope.classes:
                return scope.classes[name]
            scope = scope.parent
        return None


def build_scope_tree(tree: ast.Module) -> Scope:
    """The scope tree of one module (root is the module scope)."""
    root = Scope("module", tree, None)

    def walk(node: ast.AST, scope: Scope) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope.functions[child.name] = child
                walk(child, Scope("function", child, scope))
            elif isinstance(child, ast.Lambda):
                walk(child, Scope("lambda", child, scope))
            elif isinstance(child, ast.ClassDef):
                scope.classes[child.name] = child
                walk(child, Scope("class", child, scope))
            else:
                walk(child, scope)

    walk(tree, root)
    return root


def iter_code_scopes(root: Scope) -> Iterator[Scope]:
    """Every scope whose body executes as straight-line code.

    Yields the module scope, then each function/lambda scope in source
    order.  Class scopes are not yielded — their bodies execute as part
    of the enclosing scope's walk (class attributes are module-time
    code), while their methods are function scopes of their own.
    """
    if root.kind in ("module", "function", "lambda"):
        yield root
    for child in root.children:
        yield from iter_code_scopes(child)


def dotted_module(module_key: str) -> str:
    """``repro/transfer/session.py`` -> ``repro.transfer.session``."""
    key = module_key
    if key.endswith(".py"):
        key = key[: -len(".py")]
    if key.endswith("/__init__"):
        key = key[: -len("/__init__")]
    return key.replace("/", ".")


# ---------------------------------------------------------------------------
# The domain interface (transfer functions).
# ---------------------------------------------------------------------------


class Domain:
    """Transfer functions for one abstract interpretation.

    Every hook has a conservative default (return unknown / do
    nothing); a check overrides only the ones its property needs.  The
    engine sets :attr:`engine` before running, so hooks may consult
    ``self.engine.scope`` (the scope being executed) and
    ``self.engine.ctx`` (the module context).
    """

    engine: "DataflowEngine"

    # -- value sources -------------------------------------------------------

    def param(self, scope: Scope, name: str, annotation: ast.expr | None) -> Value:
        """Abstract value of a function parameter."""
        return self.name_fallback(name)

    def name_fallback(self, name: str) -> Value:
        """Value of a name with no definition in scope (free/global)."""
        return EMPTY

    def constant(self, node: ast.Constant) -> Value:
        """Value of a literal."""
        return EMPTY

    # -- value transformers --------------------------------------------------

    def call(
        self,
        node: ast.Call,
        target: str | None,
        base: Value,
        args: list,
        keywords: list,
    ) -> Value:
        """Value of a call result.

        ``target`` is the canonical dotted name when the callee resolves
        through imports or a local ``def``; ``base`` is the abstract
        value of the attribute chain's root for method calls
        (``streams.get(...)``); ``args``/``keywords`` pair each argument
        node with its abstract value (``(node, value)`` and
        ``(name, node, value)``).
        """
        return EMPTY

    def attribute_load(self, node: ast.Attribute, base: Value, resolved: str | None) -> Value:
        """Value of an attribute read (``resolved`` set for import chains)."""
        return EMPTY

    def subscript_load(self, node: ast.Subscript, base: Value) -> Value:
        """Value of ``base[...]`` (defaults to passing the base through)."""
        return base

    def binop(self, node: ast.BinOp, left: Value, right: Value) -> Value:
        """Value of a binary operation (also where mixed-unit checks live)."""
        return EMPTY

    def compare(self, node: ast.Compare, pairs: list) -> None:
        """Observe a comparison; ``pairs`` is ``[(op, left_value, right_value), ...]``."""

    def iterate(self, node: ast.expr, iterable: Value) -> Value:
        """Value bound to a loop target when iterating ``iterable``."""
        return EMPTY

    def unpack(self, value: Value) -> Value:
        """Per-element value when tuple-unpacking ``value``."""
        return value

    # -- sinks ---------------------------------------------------------------

    def store_attr(
        self, stmt: ast.stmt, target: ast.Attribute, base: Value, value: Value, aug: bool
    ) -> None:
        """Observe ``<base>.<attr> = value`` (``aug`` for ``+=`` forms)."""

    def store_subscript(
        self, stmt: ast.stmt, target: ast.Subscript, base: Value, value: Value, aug: bool
    ) -> None:
        """Observe ``<base>[...] = value`` (``aug`` for ``+=`` forms)."""


# ---------------------------------------------------------------------------
# The engine.
# ---------------------------------------------------------------------------


def join_values(a: Value, b: Value) -> Value:
    """Lattice join: tag-set union (may-analysis)."""
    if not a:
        return b
    if not b:
        return a
    return a | b


def _join_env(a: Env, b: Env) -> Env:
    out: Env = dict(a)
    for name, value in b.items():
        out[name] = join_values(out.get(name, EMPTY), value)
    return out


def _join_defs(a: Defs, b: Defs) -> Defs:
    out: Defs = dict(a)
    for name, nodes in b.items():
        out[name] = out.get(name, frozenset()) | nodes
    return out


class DataflowEngine:
    """Forward abstract interpreter over one module.

    Walks the module scope and every function scope in program order,
    calling the domain's transfer functions.  Control flow is
    approximated the standard lint way: ``if``/``try``/``match`` fork
    and join environments, loop bodies execute twice (enough for
    loop-carried single-step facts), and nested functions are analyzed
    separately with parameter seeds (no closure propagation).

    Reaching definitions are recorded as a by-product: :attr:`uses`
    maps every loaded ``ast.Name`` to the set of statements whose
    assignment may reach it — the def-use chains the unit tests pin.
    """

    def __init__(self, ctx: ModuleContext, domain: Domain) -> None:
        self.ctx = ctx
        self.domain = domain
        domain.engine = self
        self.root = build_scope_tree(ctx.tree)
        self.dotted = dotted_module(ctx.module)
        self.scope: Scope = self.root
        #: ast.Name (Load) -> frozenset of reaching assignment statements.
        self.uses: dict[ast.Name, frozenset] = {}
        self._defs: Defs = {}

    # -- driving -------------------------------------------------------------

    def run(self) -> None:
        """Analyze the module scope, then every function scope."""
        for scope in iter_code_scopes(self.root):
            self.scope = scope
            env, defs = self._seed(scope)
            self._defs = defs
            if isinstance(scope.node, ast.Lambda):
                self._eval(scope.node.body, env)
            else:
                self._exec_block(scope.node.body, env)

    def _seed(self, scope: Scope) -> tuple[Env, Defs]:
        env: Env = {}
        defs: Defs = {}
        node = scope.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            arguments = node.args
            params = list(arguments.posonlyargs) + list(arguments.args) + list(arguments.kwonlyargs)
            for extra in (arguments.vararg, arguments.kwarg):
                if extra is not None:
                    params.append(extra)
            for arg in params:
                env[arg.arg] = self.domain.param(scope, arg.arg, arg.annotation)
                defs[arg.arg] = frozenset({arg})
        return env, defs

    # -- statements ----------------------------------------------------------

    def _exec_block(self, stmts: list, env: Env) -> Env:
        for stmt in stmts:
            env = self._exec(stmt, env)
        return env

    def _exec(self, stmt: ast.stmt, env: Env) -> Env:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Decorators and defaults evaluate here; the body is its own
            # scope (classes: body executes inline below).
            for dec in stmt.decorator_list:
                self._eval(dec, env)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for default in list(stmt.args.defaults) + [d for d in stmt.args.kw_defaults if d]:
                    self._eval(default, env)
            else:
                for basecls in stmt.bases:
                    self._eval(basecls, env)
                self._exec_block(stmt.body, dict(env))
            self._bind_name(stmt.name, EMPTY, stmt, env)
            return env
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, value, stmt, env)
            return env
        if isinstance(stmt, ast.AnnAssign):
            value = self._eval(stmt.value, env) if stmt.value is not None else EMPTY
            self._assign(stmt.target, value, stmt, env)
            return env
        if isinstance(stmt, ast.AugAssign):
            current = self._eval_load_of_target(stmt.target, env)
            value = self._eval(stmt.value, env)
            combined = self.domain.binop(
                ast.BinOp(left=stmt.target, op=stmt.op, right=stmt.value), current, value
            )
            self._assign(stmt.target, combined, stmt, env, aug=True)
            return env
        if isinstance(stmt, (ast.Expr, ast.Return)) and getattr(stmt, "value", None) is not None:
            self._eval(stmt.value, env)
            return env
        if isinstance(stmt, ast.If):
            self._eval(stmt.test, env)
            then_env, then_defs = self._branch(stmt.body, env)
            else_env, else_defs = self._branch(stmt.orelse, env)
            self._defs = _join_defs(then_defs, else_defs)
            return _join_env(then_env, else_env)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = self._eval(stmt.iter, env)
            element = self.domain.iterate(stmt.iter, iterable)
            self._assign(stmt.target, element, stmt, env)
            env = self._loop(stmt.body, env)
            return self._exec_block(stmt.orelse, env)
        if isinstance(stmt, ast.While):
            self._eval(stmt.test, env)
            env = self._loop(stmt.body, env)
            return self._exec_block(stmt.orelse, env)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, value, stmt, env)
            return self._exec_block(stmt.body, env)
        if isinstance(stmt, ast.Try) or (hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)):
            env = self._exec_block(stmt.body, env)
            merged, merged_defs = env, self._defs
            for handler in stmt.handlers:
                handler_env, handler_defs = self._branch(handler.body, env, bind=handler.name)
                merged = _join_env(merged, handler_env)
                merged_defs = _join_defs(merged_defs, handler_defs)
            self._defs = merged_defs
            env = self._exec_block(stmt.orelse, merged)
            return self._exec_block(stmt.finalbody, env)
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            self._eval(stmt.subject, env)
            merged, merged_defs = env, self._defs
            for case in stmt.cases:
                case_env, case_defs = self._branch(case.body, env)
                merged = _join_env(merged, case_env)
                merged_defs = _join_defs(merged_defs, case_defs)
            self._defs = merged_defs
            return merged
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
            return env
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            for value in (getattr(stmt, "exc", None), getattr(stmt, "cause", None),
                          getattr(stmt, "test", None), getattr(stmt, "msg", None)):
                if value is not None:
                    self._eval(value, env)
            return env
        if isinstance(stmt, (ast.Global, ast.Nonlocal)):
            for name in stmt.names:
                env[name] = EMPTY
            return env
        # Import/Pass/Break/Continue and anything exotic: no dataflow effect.
        return env

    def _branch(self, stmts: list, env: Env, bind: str | None = None) -> tuple[Env, Defs]:
        saved_defs = self._defs
        self._defs = dict(saved_defs)
        branch_env = dict(env)
        if bind:
            branch_env[bind] = EMPTY
        branch_env = self._exec_block(stmts, branch_env)
        branch_defs = self._defs
        self._defs = saved_defs
        return branch_env, branch_defs

    def _loop(self, body: list, env: Env) -> Env:
        """Run a loop body twice and join with the no-iterations path."""
        pre_env, pre_defs = dict(env), dict(self._defs)
        once = self._exec_block(body, env)
        twice = self._exec_block(body, once)
        self._defs = _join_defs(pre_defs, self._defs)
        return _join_env(pre_env, twice)

    # -- assignment targets --------------------------------------------------

    def _assign(self, target: ast.expr, value: Value, stmt: ast.stmt, env: Env, aug: bool = False) -> None:
        if isinstance(target, ast.Name):
            self._bind_name(target.id, value, stmt, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            element = self.domain.unpack(value)
            for elt in target.elts:
                self._assign(elt, element, stmt, env)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, value, stmt, env)
        elif isinstance(target, ast.Attribute):
            base = self._eval(target.value, env)
            self.domain.store_attr(stmt, target, base, value, aug)
        elif isinstance(target, ast.Subscript):
            base = self._eval(target.value, env)
            self._eval(target.slice, env)
            self.domain.store_subscript(stmt, target, base, value, aug)

    def _bind_name(self, name: str, value: Value, stmt: ast.AST, env: Env) -> None:
        env[name] = value
        self._defs[name] = frozenset({stmt})

    def _eval_load_of_target(self, target: ast.expr, env: Env) -> Value:
        """Current value of an aug-assignment target read as a load."""
        if isinstance(target, ast.Name):
            return env.get(target.id, EMPTY) or self.domain.name_fallback(target.id)
        if isinstance(target, ast.Attribute):
            base = self._eval(target.value, env)
            return self.domain.attribute_load(target, base, self.ctx.imports.resolve(target))
        if isinstance(target, ast.Subscript):
            base = self._eval(target.value, env)
            return self.domain.subscript_load(target, base)
        return EMPTY

    # -- expressions ---------------------------------------------------------

    def resolve_call(self, func: ast.expr) -> str | None:
        """Canonical dotted name of a callee: imports first, then local defs."""
        resolved = self.ctx.imports.resolve(func)
        if resolved is not None:
            return resolved
        if isinstance(func, ast.Name) and self.scope.lookup_local_def(func.id) is not None:
            return f"{self.dotted}.{func.id}"
        return None

    def _eval(self, node: ast.expr, env: Env) -> Value:
        domain = self.domain
        if isinstance(node, ast.Name):
            # Union, not overwrite: the loop fixpoint pass re-evaluates
            # the same node and must accumulate loop-carried defs.
            self.uses[node] = self.uses.get(node, frozenset()) | self._defs.get(node.id, frozenset())
            if node.id in env:
                return env[node.id]
            return domain.name_fallback(node.id)
        if isinstance(node, ast.Constant):
            return domain.constant(node)
        if isinstance(node, ast.Call):
            base = EMPTY
            if isinstance(node.func, ast.Attribute):
                base = self._eval(node.func.value, env)
            args = [(arg, self._eval(arg, env)) for arg in node.args]
            keywords = [(kw.arg, kw.value, self._eval(kw.value, env)) for kw in node.keywords]
            return domain.call(node, self.resolve_call(node.func), base, args, keywords)
        if isinstance(node, ast.Attribute):
            base = self._eval(node.value, env)
            return domain.attribute_load(node, base, self.ctx.imports.resolve(node))
        if isinstance(node, ast.Subscript):
            base = self._eval(node.value, env)
            self._eval(node.slice, env)
            return domain.subscript_load(node, base)
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env)
            right = self._eval(node.right, env)
            return domain.binop(node, left, right)
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand, env)
        if isinstance(node, ast.BoolOp):
            out = EMPTY
            for value in node.values:
                out = join_values(out, self._eval(value, env))
            return out
        if isinstance(node, ast.Compare):
            left = self._eval(node.left, env)
            pairs = []
            for op, comparator in zip(node.ops, node.comparators):
                right = self._eval(comparator, env)
                pairs.append((op, left, right))
                left = right
            domain.compare(node, pairs)
            return EMPTY
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env)
            return join_values(self._eval(node.body, env), self._eval(node.orelse, env))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = EMPTY
            for elt in node.elts:
                out = join_values(out, self._eval(elt, env))
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for key, value in zip(node.keys, node.values):
                if key is not None:
                    self._eval(key, env)
                out = join_values(out, self._eval(value, env))
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            comp_env = dict(env)
            for gen in node.generators:
                iterable = self._eval(gen.iter, comp_env)
                self._assign(gen.target, self.domain.iterate(gen.iter, iterable), node, comp_env)
                for cond in gen.ifs:
                    self._eval(cond, comp_env)
            if isinstance(node, ast.DictComp):
                self._eval(node.key, comp_env)
                return self._eval(node.value, comp_env)
            return self._eval(node.elt, comp_env)
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value, env)
            self._bind_name(node.target.id, value, node, env)
            return value
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value, env) if node.value is not None else EMPTY
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self._eval(node.value, env)
            return EMPTY
        if isinstance(node, ast.JoinedStr):
            out = EMPTY
            for value in node.values:
                out = join_values(out, self._eval(value, env))
            return out
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value, env)
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._eval(part, env)
            return EMPTY
        if isinstance(node, ast.Lambda):
            for default in list(node.args.defaults) + [d for d in node.args.kw_defaults if d]:
                self._eval(default, env)
            return EMPTY
        return EMPTY


# ---------------------------------------------------------------------------
# Check adapter.
# ---------------------------------------------------------------------------


class DataflowCheck(Check, Domain):
    """A lint check implemented as a dataflow domain.

    Subclasses override :class:`Domain` hooks and call :meth:`report`
    from them; :meth:`run` drives the engine and yields de-duplicated
    findings (the loop fixpoint pass re-executes bodies, so the same
    violation can be reported twice at the same node).
    """

    def __init__(self) -> None:
        self._found: dict[tuple, Finding] = {}
        self.ctx: ModuleContext | None = None

    def report(self, message: str, node: ast.AST) -> None:
        """Record one finding at ``node`` (idempotent per site+message)."""
        assert self.ctx is not None
        finding = self.ctx.finding(self.code, message, node)
        self._found.setdefault((finding.line, finding.col, finding.message), finding)

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        self.ctx = ctx
        self._found.clear()
        DataflowEngine(ctx, self).run()
        yield from self._found.values()


# ---------------------------------------------------------------------------
# Def-use entry point (used by the unit tests and future checks).
# ---------------------------------------------------------------------------


def def_use(ctx: ModuleContext) -> dict[tuple[str, int], tuple[int, ...]]:
    """Def-use chains of one module, in line-number form.

    Returns ``{(name, use_line): (def_line, ...)}`` for every loaded
    name that has at least one reaching definition — a compact shape
    that unit tests can assert against without touching AST nodes.
    """
    engine = DataflowEngine(ctx, Domain())
    engine.run()
    chains: dict[tuple[str, int], tuple[int, ...]] = {}
    for use, defs in engine.uses.items():
        if not defs:
            continue
        key = (use.id, use.lineno)
        lines = tuple(sorted({getattr(d, "lineno", 0) for d in defs}))
        chains[key] = tuple(sorted(set(chains.get(key, ())) | set(lines)))
    return chains
