"""Finding records and the two output renderings (human / JSON)."""

from __future__ import annotations

import json
from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a lint check.

    Attributes
    ----------
    code:
        Check code, e.g. ``"F001"`` (``"F000"`` is reserved for files
        the linter could not parse).
    message:
        Human-readable description of the violation.
    path:
        File the finding is in, as given to the runner.
    line, col:
        1-based line and 0-based column of the offending node.
    span_start, end_line:
        Line range of the *enclosing statement* — suppression comments
        anywhere in ``span_start..end_line`` apply to this finding.
    """

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    span_start: int = 0
    end_line: int = 0

    def render(self) -> str:
        """``path:line:col: CODE message`` (the human output line)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def render_human(findings: list[Finding]) -> str:
    """One line per finding plus a summary tail."""
    lines = [f.render() for f in findings]
    n = len(findings)
    lines.append(f"{n} finding{'s' if n != 1 else ''}" if n else "clean: no findings")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    """Machine-readable output for CI annotations and tooling."""
    payload = {
        "count": len(findings),
        "findings": [
            {
                "code": f.code,
                "message": f.message,
                "path": f.path,
                "line": f.line,
                "col": f.col,
            }
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
