"""The check framework: registry, module context, suppression, runner.

A *check* is a class with a ``code`` (``F001``...), a one-line
``description``, and a ``run(ctx)`` generator yielding
:class:`~repro.devtools.findings.Finding` objects.  Checks register
themselves with the :func:`register` decorator; the runner instantiates
every selected check per module and filters the combined findings
against suppression comments:

* ``# repro: lint-ok[F001]`` — suppresses the listed codes on the
  statement it annotates (same line, any line of a multi-line
  statement, or the next statement when the comment stands alone);
* ``# repro: lint-ok`` — suppresses *all* codes there (use sparingly);
* ``# repro: lint-ok-file[F001]`` — suppresses the listed codes for the
  whole file (for modules whose purpose is the exception, e.g.
  wall-clock profiling).

Suppressions should carry a justification after the bracket, e.g.
``# repro: lint-ok[F001]: wall-clock profiling, never sim state``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Iterable, Iterator

from repro.devtools.config import LintConfig
from repro.devtools.findings import Finding

#: Sentinel meaning "every code" in suppression maps.
ALL_CODES = "*"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*lint-ok(?P<file>-file)?\s*(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?"
)


# ---------------------------------------------------------------------------
# Import resolution.
# ---------------------------------------------------------------------------


class ImportMap:
    """Maps local names to the dotted names they were imported as.

    Lets checks reason about canonical targets: with ``import numpy as
    np``, the call ``np.random.rand()`` resolves to
    ``"numpy.random.rand"`` regardless of aliasing.
    """

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # ``import os.path`` binds the name ``os``.
                        root = alias.name.split(".", 1)[0]
                        self.aliases[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted name of an attribute chain, or ``None``.

        Only chains rooted at an *imported* name resolve — a local
        variable that happens to be called ``random`` is not reported.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name) or node.id not in self.aliases:
            return None
        parts.append(self.aliases[node.id])
        return ".".join(reversed(parts))


# ---------------------------------------------------------------------------
# Module context.
# ---------------------------------------------------------------------------


def module_key(path: str) -> str:
    """Package-relative key for scope matching.

    ``/root/repo/src/repro/sim/engine.py`` -> ``repro/sim/engine.py``.
    Paths not containing a ``repro`` component are returned as-is (the
    test suite lints synthetic modules under explicit virtual paths).
    """
    parts = path.replace("\\", "/").split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro" and i < len(parts) - 1:
            return "/".join(parts[i:])
    return "/".join(parts)


class ModuleContext:
    """Everything a check needs to know about one module."""

    def __init__(self, path: str, source: str, tree: ast.Module, config: LintConfig):
        self.path = path.replace("\\", "/")
        self.source = source
        self.tree = tree
        self.config = config
        self.module = module_key(self.path)
        self.imports = ImportMap(tree)
        self._parents: dict[ast.AST, ast.AST] | None = None

    def in_scope(self, prefixes: Iterable[str]) -> bool:
        """True when this module matches any scope prefix / exact path."""
        return any(self.module.startswith(prefix) for prefix in prefixes)

    def parent(self, node: ast.AST) -> ast.AST | None:
        """AST parent of ``node`` (the map is built lazily, once)."""
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents.get(node)

    def finding(self, code: str, message: str, node: ast.AST) -> Finding:
        """A :class:`Finding` anchored at ``node``.

        The suppression span covers the whole enclosing statement, so a
        ``# repro: lint-ok[...]`` comment on any line of a multi-line
        statement applies.
        """
        line = getattr(node, "lineno", 1)
        start, end = line, getattr(node, "end_lineno", None) or line
        stmt: ast.AST | None = node
        while stmt is not None and not isinstance(stmt, ast.stmt):
            stmt = self.parent(stmt)
        if stmt is not None:
            start = min(start, stmt.lineno)
            end = max(end, stmt.end_lineno or end)
        return Finding(
            code=code,
            message=message,
            path=self.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            span_start=start,
            end_line=end,
        )


# ---------------------------------------------------------------------------
# Check base + registry.
# ---------------------------------------------------------------------------


class Check:
    """Base class for lint checks.  Subclass, set metadata, register."""

    code: str = "F000"
    name: str = "base"
    description: str = ""
    #: Minimal violating / conforming snippets, rendered into the
    #: generated code catalog (``docs/lint.md``) and SARIF rule help.
    example_bad: str = ""
    example_good: str = ""

    def enabled_for(self, ctx: ModuleContext) -> bool:
        """Whether this check applies to the module at all."""
        return True

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError


#: code -> check class, populated by :func:`register`.
REGISTRY: dict[str, type[Check]] = {}


def register(cls: type[Check]) -> type[Check]:
    """Class decorator adding a check to the registry (keyed by code)."""
    if cls.code in REGISTRY and REGISTRY[cls.code] is not cls:
        raise ValueError(f"duplicate check code {cls.code!r}")
    REGISTRY[cls.code] = cls
    return cls


# ---------------------------------------------------------------------------
# Suppression comments.
# ---------------------------------------------------------------------------


def _parse_codes(match: re.Match) -> set[str]:
    raw = match.group("codes")
    if raw is None:
        return {ALL_CODES}
    return {code.strip().upper() for code in raw.split(",") if code.strip()}


def suppressions(source: str) -> tuple[set[str], dict[int, set[str]]]:
    """Parse suppression comments out of ``source``.

    Returns ``(file_codes, line_codes)``: codes suppressed file-wide
    and a map of line -> codes suppressed there.  Standalone comment
    lines forward their codes to the next code-bearing line.
    """
    file_codes: set[str] = set()
    line_codes: dict[int, set[str]] = {}
    code_lines: set[int] = set()

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return file_codes, line_codes

    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            match = _SUPPRESS_RE.search(tok.string)
            if match is None:
                continue
            codes = _parse_codes(match)
            if match.group("file"):
                file_codes |= codes
            else:
                line_codes.setdefault(tok.start[0], set()).update(codes)
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        ):
            for line in range(tok.start[0], tok.end[0] + 1):
                code_lines.add(line)

    # Forward standalone suppressions to the next code-bearing line.
    max_code = max(code_lines, default=0)
    for line in [ln for ln in sorted(line_codes) if ln not in code_lines]:
        nxt = line + 1
        while nxt <= max_code and nxt not in code_lines:
            nxt += 1
        if nxt in code_lines:
            line_codes.setdefault(nxt, set()).update(line_codes[line])
    return file_codes, line_codes


def apply_suppressions(findings: list[Finding], source: str) -> list[Finding]:
    """Drop findings covered by suppression comments."""
    file_codes, line_codes = suppressions(source)
    if not file_codes and not line_codes:
        return findings

    def suppressed(f: Finding) -> bool:
        if ALL_CODES in file_codes or f.code in file_codes:
            return True
        for line in range(f.span_start or f.line, max(f.end_line, f.line) + 1):
            codes = line_codes.get(line)
            if codes and (ALL_CODES in codes or f.code in codes):
                return True
        return False

    return [f for f in findings if not suppressed(f)]


# ---------------------------------------------------------------------------
# Runner.
# ---------------------------------------------------------------------------


def _selected(code: str, config: LintConfig) -> bool:
    if code in config.ignore:
        return False
    return not config.select or code in config.select


def lint_source(
    source: str, path: str = "<memory>", config: LintConfig | None = None
) -> list[Finding]:
    """Lint one module given as source text (the unit-test entry point)."""
    config = config or LintConfig()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Finding(
                code="F000",
                message=f"could not parse: {exc.msg}",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
            )
        ]
    ctx = ModuleContext(path, source, tree, config)
    findings: list[Finding] = []
    for code in sorted(REGISTRY):
        if not _selected(code, config):
            continue
        check = REGISTRY[code]()
        if not check.enabled_for(ctx):
            continue
        findings.extend(check.run(ctx))
    findings = apply_suppressions(findings, source)
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))


def iter_python_files(paths: Iterable[str | Path], config: LintConfig) -> Iterator[Path]:
    """All ``.py`` files under ``paths``, sorted, minus exclusions."""
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for file in files:
            if file.suffix != ".py" or file in seen:
                continue
            key = module_key(str(file))
            if any(fragment in key for fragment in config.exclude):
                continue
            seen.add(file)
            yield file


def lint_paths(
    paths: Iterable[str | Path], config: LintConfig | None = None
) -> list[Finding]:
    """Lint every Python file under ``paths``."""
    config = config or LintConfig()
    findings: list[Finding] = []
    for file in iter_python_files(paths, config):
        try:
            source = file.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(
                Finding("F000", f"could not read: {exc}", str(file), 1, 0)
            )
            continue
        findings.extend(lint_source(source, path=str(file), config=config))
    return findings
