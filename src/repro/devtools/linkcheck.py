"""Cross-reference checker for the repo's markdown documentation.

The docs lean on two kinds of references that silently rot:

* markdown links — ``[events.md](events.md)`` — resolved relative to
  the document that contains them;
* backticked repo paths — ```` `docs/events.md` ````, ```` `tests/obs/test_parity.py` ````
  — resolved relative to the repository root.

``python -m repro.devtools.linkcheck`` verifies both kinds point at
files that exist, so a rename or deletion fails CI instead of leaving
a dead pointer in README/DESIGN.  External URLs are ignored (no
network access in CI), as are module dotted paths and bare file names
without a directory component.
"""

from __future__ import annotations

import argparse
import re
from pathlib import Path
from typing import Sequence

#: Documents checked by default, relative to the repo root.
DEFAULT_DOCS = (
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/architecture.md",
    "docs/benchmarks.md",
    "docs/events.md",
    "docs/observability.md",
    "docs/service.md",
)

#: ``[text](target)`` with an optional ``#anchor`` suffix.
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Backticked path: at least one directory component and a doc/code
#: extension, so prose like ``a/b`` ratios or dotted module names never
#: match.
_TICK_PATH = re.compile(r"`([\w.-]+(?:/[\w.-]+)+\.(?:py|md|json|toml|yml|txt))`")

_EXTERNAL = ("http://", "https://", "mailto:")


def check_document(doc: Path, root: Path) -> list[str]:
    """Return human-readable findings for one markdown file.

    Each finding is ``"<doc>: broken <kind> '<target>'"``; an empty
    list means every reference resolves.
    """
    findings: list[str] = []
    text = doc.read_text(encoding="utf-8")
    for match in _MD_LINK.finditer(text):
        target = match.group(1).split("#", 1)[0]
        if not target or target.startswith(_EXTERNAL):
            continue
        if not (doc.parent / target).is_file():
            findings.append(f"{doc.relative_to(root)}: broken link '{match.group(1)}'")
    for match in _TICK_PATH.finditer(text):
        target = match.group(1)
        # Docs refer to source files both repo-relative
        # (``src/repro/sim/engine.py``) and package-relative
        # (``sim/engine.py`` in a module-map context); accept either.
        bases = (root, root / "src", root / "src" / "repro")
        if not any((base / target).is_file() for base in bases):
            findings.append(f"{doc.relative_to(root)}: broken path reference '{target}'")
    return findings


def check_tree(root: Path, docs: Sequence[str] = DEFAULT_DOCS) -> list[str]:
    """Check every named document under ``root``; missing docs are findings too."""
    findings: list[str] = []
    for name in docs:
        doc = root / name
        if not doc.is_file():
            findings.append(f"{name}: document missing")
            continue
        findings.extend(check_document(doc, root))
    return findings


def _default_root() -> Path:
    """Repo root, assuming the installed layout ``<root>/src/repro/devtools/``."""
    return Path(__file__).resolve().parents[3]


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; exit 0 when every cross-reference resolves."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.linkcheck", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--root", default=None, help="repository root (default: inferred from this file)"
    )
    parser.add_argument(
        "docs", nargs="*", default=None, help="documents to check (default: the standard set)"
    )
    args = parser.parse_args(argv)
    root = Path(args.root).resolve() if args.root else _default_root()
    findings = check_tree(root, tuple(args.docs) if args.docs else DEFAULT_DOCS)
    for finding in findings:
        print(finding)
    if findings:
        print(f"{len(findings)} broken cross-reference(s)")
        return 1
    print("all cross-references resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
