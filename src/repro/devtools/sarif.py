"""SARIF 2.1.0 rendering for lint findings.

SARIF (Static Analysis Results Interchange Format) is the exchange
format GitHub code scanning, VS Code's SARIF viewer, and most CI
dashboards ingest.  One ``run`` per invocation; the rule table is
built from the check registry so rule metadata (name, description,
help text with examples) travels with the results.

The output is deterministic: rules are sorted by code, results keep
the runner's path/line ordering, and no timestamps or absolute paths
are embedded — two runs over the same tree produce byte-identical
files, which keeps SARIF artifacts diffable and cacheable in CI.
"""

from __future__ import annotations

import json
from typing import Any

from repro.devtools.findings import Finding
from repro.devtools.framework import REGISTRY

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

#: Reserved code for unparseable files (not in the registry).
_PARSE_ERROR = "F000"


def _rule(code: str) -> dict[str, Any]:
    """SARIF ``reportingDescriptor`` for one check code."""
    if code == _PARSE_ERROR:
        return {
            "id": code,
            "name": "parse-error",
            "shortDescription": {"text": "file could not be parsed"},
        }
    check = REGISTRY[code]
    rule: dict[str, Any] = {
        "id": code,
        "name": check.name,
        "shortDescription": {"text": check.description},
    }
    help_parts = []
    bad = getattr(check, "example_bad", "")
    good = getattr(check, "example_good", "")
    if bad:
        help_parts.append(f"Bad:\n{bad.rstrip()}")
    if good:
        help_parts.append(f"Good:\n{good.rstrip()}")
    if help_parts:
        rule["help"] = {"text": "\n\n".join(help_parts)}
    return rule


def _result(finding: Finding, rule_index: dict[str, int]) -> dict[str, Any]:
    region: dict[str, Any] = {"startLine": finding.line}
    if finding.col:
        region["startColumn"] = finding.col + 1  # SARIF columns are 1-based
    if finding.end_line and finding.end_line >= finding.line:
        region["endLine"] = finding.end_line
    return {
        "ruleId": finding.code,
        "ruleIndex": rule_index[finding.code],
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": region,
                }
            }
        ],
    }


def to_sarif(findings: list[Finding], tool_version: str = "0") -> dict[str, Any]:
    """The SARIF log object (a plain dict; serialise with render_sarif)."""
    codes = sorted({f.code for f in findings} | set(REGISTRY))
    rule_index = {code: i for i, code in enumerate(codes)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": tool_version,
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": [_rule(code) for code in codes],
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": [_result(f, rule_index) for f in findings],
            }
        ],
    }


def render_sarif(findings: list[Finding], tool_version: str = "0") -> str:
    """Serialised SARIF log, stable across runs for identical findings."""
    return json.dumps(to_sarif(findings, tool_version), indent=2, sort_keys=True)
