"""Experiment reproductions — one module per paper table/figure.

Every module exposes ``run(seed=...) -> <Figure>Result`` returning the
data the paper's figure plots, plus a ``main()`` that prints the
paper-vs-measured comparison.  The benchmark harness under
``benchmarks/`` wraps these and asserts the *shape* expectations from
DESIGN.md §4.

``REGISTRY`` maps the public experiment names (what ``repro run``
accepts) to their modules.  It lives here — not in the CLI — so the
evaluation harness (``repro.runner.suite``) can enumerate experiments
without importing argparse plumbing.
"""

#: Experiment name -> module path (modules expose run() and main()).
REGISTRY: dict[str, str] = {
    "table1": "repro.experiments.table1_testbeds",
    "fig01": "repro.experiments.fig01_concurrency",
    "fig02": "repro.experiments.fig02_state_of_art",
    "fig04": "repro.experiments.fig04_overhead",
    "fig06": "repro.experiments.fig06_utility_forms",
    "fig07": "repro.experiments.fig07_convergence",
    "fig08": "repro.experiments.fig08_hc_competition",
    "fig09": "repro.experiments.fig09_gd_networks",
    "fig10": "repro.experiments.fig10_bo_networks",
    "fig11": "repro.experiments.fig11_gd_competition",
    "fig12": "repro.experiments.fig12_bo_competition",
    "fig13": "repro.experiments.fig13_concurrency_traces",
    "fig14": "repro.experiments.fig14_comparison",
    "fig15": "repro.experiments.fig15_multiparam",
    "fig16": "repro.experiments.fig16_friendliness",
    "related-work": "repro.experiments.related_work",
    "bbr": "repro.experiments.bbr_extension",
    "robustness": "repro.experiments.robustness",
    "overhead": "repro.experiments.overhead",
    "fault-tolerance": "repro.experiments.fault_tolerance",
    "open-workload": "repro.experiments.open_workload",
}

from repro.experiments import common  # noqa: E402  (registry first: suite imports it)

__all__ = ["REGISTRY", "common"]
