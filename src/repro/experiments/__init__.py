"""Experiment reproductions — one module per paper table/figure.

Every module exposes ``run(seed=...) -> <Figure>Result`` returning the
data the paper's figure plots, plus a ``main()`` that prints the
paper-vs-measured comparison.  The benchmark harness under
``benchmarks/`` wraps these and asserts the *shape* expectations from
DESIGN.md §4.
"""

from repro.experiments import common

__all__ = ["common"]
