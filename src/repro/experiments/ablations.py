"""Ablation studies for the design choices DESIGN.md §5 calls out.

These go beyond the paper's figures: each isolates one Falcon design
knob and measures the failure mode the paper argues motivates it.

* :func:`sweep_k` — the concurrency-regret base K (§3.1's stability vs
  concave-region trade-off).
* :func:`sweep_b` — the loss-penalty coefficient B.
* :func:`bo_window` — BO's 20-observation sliding window vs full
  history when the bottleneck shifts mid-run.
* :func:`acquisition_portfolio` — GP-Hedge vs each single acquisition.
* :func:`sample_interval` — 3 s vs 5 s sample-transfer duration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.fairness import jain_index
from repro.analysis.tables import format_table
from repro.core.bayesian import BayesianOptimizer
from repro.core.bayesian.acquisition import (
    expected_improvement,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.core.bayesian.gp_hedge import GPHedge
from repro.core.utility import NonlinearPenaltyUtility
from repro.experiments.common import launch_falcon, make_context, window_mean_bps
from repro.runner import run_tasks, task
from repro.testbeds.presets import emulab_fig4, emulab_high_optimal, hpclab
from repro.units import bps_to_mbps


# ---------------------------------------------------------------------------
# K sweep.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KPoint:
    """Behaviour of one K value, alone and in competition."""

    K: float
    single_concurrency: float
    single_throughput_bps: float
    pair_jain: float
    pair_total_concurrency: float


def k_point(k: float, seed: int, duration: float) -> KPoint:
    """Task unit: one K value, alone and in competition."""
    utility = NonlinearPenaltyUtility(K=k)

    ctx = make_context(seed)
    single = launch_falcon(
        ctx, emulab_high_optimal(), kind="gd", hi=64, utility=utility, name=f"k{k}-solo"
    )
    ctx.engine.run_for(duration)
    cc = single.controller.concurrencies()
    tp = single.controller.throughputs()
    tail = slice(int(len(cc) * 0.7), None)

    ctx2 = make_context(seed + 1)
    tb = emulab_high_optimal()
    a = launch_falcon(ctx2, tb, kind="gd", hi=64, utility=utility, name=f"k{k}-a")
    b = launch_falcon(
        ctx2, tb, kind="gd", hi=64, utility=utility, name=f"k{k}-b", start_time=60.0
    )
    ctx2.engine.run_for(duration)
    shares = np.array(
        [
            window_mean_bps(a.trace, duration - 60, duration),
            window_mean_bps(b.trace, duration - 60, duration),
        ]
    )
    cc_a = a.controller.concurrencies()
    cc_b = b.controller.concurrencies()
    return KPoint(
        K=k,
        single_concurrency=float(np.mean(cc[tail])),
        single_throughput_bps=float(np.mean(tp[tail])),
        pair_jain=jain_index(shares),
        pair_total_concurrency=float(
            np.mean(cc_a[int(len(cc_a) * 0.7) :]) + np.mean(cc_b[int(len(cc_b) * 0.7) :])
        ),
    )


def sweep_k(
    ks: tuple[float, ...] = (1.005, 1.01, 1.02, 1.05, 1.10),
    seed: int = 0,
    duration: float = 420.0,
) -> list[KPoint]:
    """Sweep K on the 48-optimum Emulab, single + competing pair.

    Expected shape: small K converges near the optimum alone but is
    jitter-fragile with competition; large K is stable but parks far
    below high optima (the concave region shrinks to ``2/ln K``).
    """
    return run_tasks(
        [
            task(k_point, k=float(k), seed=seed, duration=duration, label=f"K={k}")
            for k in ks
        ]
    )


def render_k(points: list[KPoint]) -> str:
    """K-sweep table."""
    return format_table(
        ["K", "n (alone)", "tput alone (Mbps)", "Jain (pair)", "total n (pair)"],
        [
            (
                p.K,
                f"{p.single_concurrency:.1f}",
                f"{bps_to_mbps(p.single_throughput_bps):.0f}",
                f"{p.pair_jain:.3f}",
                f"{p.pair_total_concurrency:.0f}",
            )
            for p in points
        ],
    )


# ---------------------------------------------------------------------------
# B sweep.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BPoint:
    """Behaviour of one loss-penalty coefficient."""

    B: float
    steady_concurrency: float
    steady_loss: float
    steady_throughput_bps: float


def sweep_b(
    bs: tuple[float, ...] = (0.0, 2.0, 10.0, 50.0), seed: int = 0, duration: float = 300.0
) -> list[BPoint]:
    """Sweep B on the lossy Emulab bottleneck.

    Expected shape: B=0 tolerates heavy over-provisioning and loss;
    B=10 keeps loss ~1% at near-full utilisation; very large B
    sacrifices utilisation to dodge residual loss.
    """
    return run_tasks(
        [
            task(b_point, b=float(b), seed=seed, duration=duration, label=f"B={b}")
            for b in bs
        ]
    )


def b_point(b: float, seed: int, duration: float) -> BPoint:
    """Task unit: one loss-penalty coefficient on the lossy bottleneck."""
    ctx = make_context(seed)
    launched = launch_falcon(
        ctx,
        emulab_fig4(),
        kind="gd",
        hi=40,
        utility=NonlinearPenaltyUtility(B=b),
        name=f"b{b}",
    )
    ctx.engine.run_for(duration)
    agent = launched.controller
    cc = agent.concurrencies()
    tail = slice(int(len(cc) * 0.7), None)
    losses = np.array([r.loss_rate for r in agent.history])
    return BPoint(
        B=b,
        steady_concurrency=float(np.mean(cc[tail])),
        steady_loss=float(np.mean(losses[tail])),
        steady_throughput_bps=float(np.mean(agent.throughputs()[tail])),
    )


def render_b(points: list[BPoint]) -> str:
    """B-sweep table."""
    return format_table(
        ["B", "n (steady)", "loss", "tput (Mbps)"],
        [
            (p.B, f"{p.steady_concurrency:.1f}", f"{p.steady_loss:.2%}",
             f"{bps_to_mbps(p.steady_throughput_bps):.0f}")
            for p in points
        ],
    )


# ---------------------------------------------------------------------------
# BO window ablation (adaptation to a mid-run bottleneck shift).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WindowPoint:
    """Recovery of one window size after a bottleneck shift."""

    window: int
    before_bps: float
    after_bps: float

    @property
    def recovery(self) -> float:
        """Post-shift throughput relative to pre-shift."""
        return self.after_bps / self.before_bps if self.before_bps > 0 else 0.0


def bo_window(
    windows: tuple[int, ...] = (20, 200),
    seed: int = 0,
    shift_at: float = 200.0,
    duration: float = 420.0,
) -> list[WindowPoint]:
    """BO with sliding vs effectively-unbounded history under a shift.

    At ``shift_at`` the destination array's per-process and aggregate
    write capacity are halved (a storage hot spot).  The windowed GP
    forgets the stale optimum and re-converges; full history anchors the
    surrogate to the old regime.
    """
    return run_tasks(
        [
            task(window_point, window=int(window), seed=seed, shift_at=shift_at,
                 duration=duration, label=f"bo window={window}")
            for window in windows
        ]
    )


def window_point(window: int, seed: int, shift_at: float, duration: float) -> WindowPoint:
    """Task unit: one BO history-window size through the storage shift."""
    ctx = make_context(seed)
    tb = hpclab()
    rng = ctx.rng("bo-window")
    opt = BayesianOptimizer(hi=32, window=window, rng=rng)
    launched = launch_falcon(ctx, tb, optimizer=opt, name=f"bo-w{window}")

    def shift(tb=tb):
        from dataclasses import replace

        storage = tb.destination.storage
        tb.destination.storage = replace(
            storage,
            per_process_write_bps=storage.per_process_write_bps / 2,
            aggregate_write_bps=storage.aggregate_write_bps / 2,
        )

    ctx.engine.schedule_at(shift_at, shift)
    ctx.engine.run_for(duration)
    return WindowPoint(
        window=window,
        before_bps=window_mean_bps(launched.trace, shift_at - 60, shift_at),
        after_bps=window_mean_bps(launched.trace, duration - 60, duration),
    )


# ---------------------------------------------------------------------------
# Acquisition portfolio ablation.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AcquisitionPoint:
    """Steady behaviour of one acquisition configuration."""

    name: str
    steady_throughput_bps: float
    exploration_std: float  # std of evaluated concurrency at steady state


def _acquisitions(name: str):
    """Acquisition list for one named configuration (None = GP-Hedge)."""
    return {
        "gp-hedge": None,
        "ei-only": [("ei", expected_improvement)],
        "pi-only": [("pi", probability_of_improvement)],
        "ucb-only": [("ucb", upper_confidence_bound)],
    }[name]


def acquisition_point(name: str, seed: int, duration: float) -> AcquisitionPoint:
    """Task unit: one acquisition configuration on HPCLab."""
    acqs = _acquisitions(name)
    ctx = make_context(seed)
    rng = ctx.rng(f"acq/{name}")
    opt = BayesianOptimizer(hi=32, rng=rng)
    if acqs is not None:
        opt.hedge = GPHedge(acquisitions=acqs, rng=rng)
    launched = launch_falcon(ctx, hpclab(), optimizer=opt, name=f"bo-{name}")
    ctx.engine.run_for(duration)
    agent = launched.controller
    cc = agent.concurrencies()
    tail = slice(int(len(cc) * 0.6), None)
    return AcquisitionPoint(
        name=name,
        steady_throughput_bps=float(np.mean(agent.throughputs()[tail])),
        exploration_std=float(np.std(cc[tail])),
    )


def acquisition_portfolio(seed: int = 0, duration: float = 360.0) -> list[AcquisitionPoint]:
    """GP-Hedge vs each single acquisition on HPCLab."""
    return run_tasks(
        [
            task(acquisition_point, name=name, seed=seed, duration=duration, label=f"acq {name}")
            for name in ("gp-hedge", "ei-only", "pi-only", "ucb-only")
        ]
    )


# ---------------------------------------------------------------------------
# Sample-interval ablation.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntervalPoint:
    """Convergence cost/benefit of one sample-interval length."""

    interval: float
    time_to_85pct: float
    steady_throughput_bps: float


def sample_interval(
    intervals: tuple[float, ...] = (1.0, 3.0, 5.0, 10.0), seed: int = 0, duration: float = 400.0
) -> list[IntervalPoint]:
    """Sweep the sample-transfer duration on the 48-optimum Emulab.

    Short intervals converge faster per wall-clock but measure noisier
    samples (ramping dominates); long intervals are accurate but spend
    longer per probe.
    """
    return run_tasks(
        [
            task(interval_point, interval=float(interval), seed=seed, duration=duration,
                 label=f"interval={interval}")
            for interval in intervals
        ]
    )


def interval_point(interval: float, seed: int, duration: float) -> IntervalPoint:
    """Task unit: one sample-transfer duration on the 48-optimum Emulab."""
    from repro.analysis.convergence import time_to_fraction_of_max

    ctx = make_context(seed)
    launched = launch_falcon(
        ctx, emulab_high_optimal(), kind="gd", hi=64, interval=interval, name=f"iv{interval}"
    )
    ctx.engine.run_for(duration)
    agent = launched.controller
    tp = agent.throughputs()
    tail = slice(int(len(tp) * 0.7), None)
    return IntervalPoint(
        interval=interval,
        time_to_85pct=time_to_fraction_of_max(agent.times(), tp, 0.85),
        steady_throughput_bps=float(np.mean(tp[tail])),
    )
