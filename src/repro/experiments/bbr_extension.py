"""BBR extension (§6 future work): congestion-control-agnostic Falcon.

The paper's future work asks whether Falcon generalises to emerging
congestion control such as BBR.  The substrate models BBR as a
weighted-fair transport: less deferential to loss-based flows at a
saturated queue (weight 1.6 vs 1.0).  Two questions, two scenarios:

1. **Single transfer** — does Falcon-over-BBR still find the optimum?
   (It should: the utility only needs throughput and loss samples.)
2. **Mixed competition** — a BBR-backed Falcon against a Cubic-backed
   one on the same bottleneck: the transport asymmetry skews the split
   (weights 1.6:1), but *both* agents' concurrency stays bounded — the
   utility's regret still prevents an arms race; what it cannot do is
   equalise a transport-level advantage (a cross-layer problem, exactly
   the follow-up work the paper sketches).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.experiments.common import launch_falcon, make_context, window_mean_bps
from repro.network.tcp import BBR, CUBIC
from repro.runner import run_tasks, task
from repro.testbeds.presets import emulab_high_optimal
from repro.transfer.dataset import uniform_dataset
from repro.units import bps_to_mbps


@dataclass(frozen=True)
class BbrResult:
    """Single-transfer and mixed-competition outcomes."""

    single_cubic_bps: float
    single_bbr_bps: float
    mixed_cubic_bps: float
    mixed_bbr_bps: float
    mixed_cubic_concurrency: float
    mixed_bbr_concurrency: float

    @property
    def bbr_share_ratio(self) -> float:
        """BBR/Cubic throughput ratio under competition."""
        if self.mixed_cubic_bps <= 0:
            return float("inf")
        return self.mixed_bbr_bps / self.mixed_cubic_bps

    def render(self) -> str:
        """Both scenarios as a table."""
        return format_table(
            ["Scenario", "Cubic", "BBR", "ratio"],
            [
                (
                    "single transfer",
                    f"{bps_to_mbps(self.single_cubic_bps):.0f} Mbps",
                    f"{bps_to_mbps(self.single_bbr_bps):.0f} Mbps",
                    f"{self.single_bbr_bps / max(self.single_cubic_bps, 1):.2f}",
                ),
                (
                    "competing pair",
                    f"{bps_to_mbps(self.mixed_cubic_bps):.0f} Mbps (n~{self.mixed_cubic_concurrency:.0f})",
                    f"{bps_to_mbps(self.mixed_bbr_bps):.0f} Mbps (n~{self.mixed_bbr_concurrency:.0f})",
                    f"{self.bbr_share_ratio:.2f}",
                ),
            ],
        )


def single_transport_run(transport: str, seed: int, duration: float) -> float:
    """Task unit: Falcon-GD alone over one named transport."""
    ctx = make_context(seed)
    tb = emulab_high_optimal()
    tb.tcp = BBR if transport == "bbr" else CUBIC
    launched = launch_falcon(ctx, tb, kind="gd", hi=64, name=f"single-{transport}")
    ctx.engine.run_for(duration)
    return float(launched.controller.throughputs()[-12:].mean())


def mixed_pair_run(seed: int, duration: float) -> dict[str, float]:
    """Task unit: BBR-backed Falcon vs Cubic-backed Falcon, one bottleneck."""
    ctx = make_context(seed)
    tb = emulab_high_optimal()
    cubic_session = tb.new_session(uniform_dataset(500), name="mixed-cubic", repeat=True, tcp=CUBIC)
    bbr_session = tb.new_session(uniform_dataset(500), name="mixed-bbr", repeat=True, tcp=BBR)
    # launch via common helper but with pre-built sessions: reuse the
    # low-level pieces directly for transport control.
    from repro.core.agent import FalconAgent
    from repro.core.controller import attach_agent
    from repro.core.gradient_descent import GradientDescent

    launches = []
    for session, start in ((cubic_session, 0.0), (bbr_session, 60.0)):
        trace = ctx.recorder.watch(session)
        rng = ctx.rng(f"agent/{session.name}")
        agent = FalconAgent(
            session=session, optimizer=GradientDescent(lo=1, hi=64), rng=rng
        )
        if start <= 0:
            ctx.network.add_session(session)
        else:
            ctx.engine.schedule_at(start, lambda s=session: ctx.network.add_session(s))
        interval = tb.sample_interval * (1.0 + float(rng.uniform(-0.08, 0.08)))
        attach_agent(ctx.engine, agent, interval=interval, start_time=start)
        launches.append((agent, trace))
    ctx.engine.run_for(duration)

    t1 = duration
    t0 = duration - 90
    return {
        "cubic_bps": window_mean_bps(launches[0][1], t0, t1),
        "bbr_bps": window_mean_bps(launches[1][1], t0, t1),
        "cubic_concurrency": float(launches[0][0].concurrencies()[-10:].mean()),
        "bbr_concurrency": float(launches[1][0].concurrencies()[-10:].mean()),
    }


def run(seed: int = 0, duration: float = 420.0) -> BbrResult:
    """Run both scenarios on the 48-optimum Emulab."""
    single_cubic, single_bbr, mixed = run_tasks(
        [
            task(single_transport_run, transport="cubic", seed=seed, duration=duration,
                 label="bbr single cubic"),
            task(single_transport_run, transport="bbr", seed=seed, duration=duration,
                 label="bbr single bbr"),
            task(mixed_pair_run, seed=seed + 1, duration=duration, label="bbr mixed pair"),
        ]
    )
    return BbrResult(
        single_cubic_bps=single_cubic,
        single_bbr_bps=single_bbr,
        mixed_cubic_bps=mixed["cubic_bps"],
        mixed_bbr_bps=mixed["bbr_bps"],
        mixed_cubic_concurrency=mixed["cubic_concurrency"],
        mixed_bbr_concurrency=mixed["bbr_concurrency"],
    )


def main() -> None:
    """Print both scenarios."""
    print(run().render())


if __name__ == "__main__":
    main()
