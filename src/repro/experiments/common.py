"""Shared experiment plumbing.

Builds the (engine, executor, recorder) triple every experiment needs,
plus helpers for the two recurring experiment shapes:

* **static sweeps** — measure steady throughput/loss at fixed settings
  (Figs 1, 4, and the Fig 6 empirical anchors);
* **controller runs** — attach Falcon agents / baselines to sessions,
  possibly staggered in time, and collect traces (everything else).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.analysis.trace import SessionTrace, TraceRecorder
from repro.config import DEFAULT_CONFIG, SimConfig
from repro.runner import SimTask, callable_path, resolve_callable, run_tasks
from repro.runner import task as sim_task
from repro.core.agent import FalconAgent
from repro.core.bayesian import BayesianOptimizer
from repro.core.controller import SessionController, attach_agent
from repro.core.gradient_descent import GradientDescent
from repro.core.hill_climbing import HillClimbing
from repro.core.utility import NonlinearPenaltyUtility, UtilityFunction
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngStreams
from repro.testbeds.base import Testbed
from repro.transfer.dataset import Dataset, uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.transfer.session import TransferParams, TransferSession


@dataclass
class ExperimentContext:
    """Everything a single experiment run needs."""

    engine: SimulationEngine
    network: FluidTransferNetwork
    recorder: TraceRecorder
    streams: RngStreams

    def rng(self, name: str) -> np.random.Generator:
        """Named random stream for a component of this experiment."""
        return self.streams.get(name)


def make_context(seed: int = 0, config: SimConfig = DEFAULT_CONFIG) -> ExperimentContext:
    """Fresh deterministic simulation context."""
    engine = SimulationEngine(dt=config.dt)
    network = FluidTransferNetwork(engine, config)
    recorder = TraceRecorder(engine, period=1.0)
    return ExperimentContext(
        engine=engine, network=network, recorder=recorder, streams=RngStreams(seed)
    )


# ---------------------------------------------------------------------------
# Static sweeps.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """Steady-state measurement of one fixed setting."""

    concurrency: int
    throughput_bps: float
    loss_rate: float


def sweep_point(
    testbed_factory: str,
    concurrency: int,
    measure_time: float,
    warmup: float,
    config: SimConfig,
    dataset: Dataset | None = None,
) -> SweepPoint:
    """One steady-state measurement at a fixed concurrency (task unit).

    A fresh testbed per point keeps measurements independent (the paper
    runs each configuration as its own transfer); building everything
    from the declarative spec is what lets the point run in any process.
    """
    tb = resolve_callable(testbed_factory)()
    engine = SimulationEngine(dt=config.dt)
    network = FluidTransferNetwork(engine, config)
    ds = dataset or uniform_dataset(100)
    n = int(concurrency)
    session = tb.new_session(ds, params=TransferParams(concurrency=n), repeat=True)
    network.add_session(session)
    engine.run_for(warmup)
    session.monitor.take(concurrency=n)  # discard warm-up window
    engine.run_for(measure_time)
    sample = session.monitor.take(concurrency=n)
    return SweepPoint(
        concurrency=n,
        throughput_bps=sample.throughput_bps,
        loss_rate=sample.loss_rate,
    )


def sweep_tasks(
    testbed_factory: Callable[[], Testbed] | str,
    concurrencies: Sequence[int],
    dataset: Dataset | None = None,
    measure_time: float = 25.0,
    warmup: float = 10.0,
    config: SimConfig | None = None,
    label: str = "",
) -> list[SimTask]:
    """One :class:`SimTask` per concurrency point.

    Experiments that sweep several (network, dataset) pairs concatenate
    the task lists and hand them to ``run_tasks`` in one call, so the
    pool sees the whole sweep at once.
    """
    factory = callable_path(testbed_factory)
    cfg = config or DEFAULT_CONFIG
    prefix = label or factory.partition(":")[2]
    return [
        sim_task(
            sweep_point,
            testbed_factory=factory,
            concurrency=int(n),
            measure_time=measure_time,
            warmup=warmup,
            config=cfg,
            dataset=dataset,
            label=f"{prefix} n={int(n)}",
        )
        for n in concurrencies
    ]


def sweep_concurrency(
    testbed_factory: Callable[[], Testbed] | str,
    concurrencies: Sequence[int],
    dataset: Dataset | None = None,
    measure_time: float = 25.0,
    warmup: float = 10.0,
    config: SimConfig | None = None,
) -> list[SweepPoint]:
    """Measure steady throughput/loss at each fixed concurrency.

    ``config`` (not just ``DEFAULT_CONFIG``) now reaches the engine and
    the fluid network, so an experiment declaring a non-default time
    step or jitter cannot silently diverge from it.  Points execute
    through the runner: serially by default, fanned out under
    ``use_runner(jobs=N)``, replayed from cache when fronted by one.
    """
    return run_tasks(
        sweep_tasks(
            testbed_factory,
            concurrencies,
            dataset=dataset,
            measure_time=measure_time,
            warmup=warmup,
            config=config,
        )
    )


# ---------------------------------------------------------------------------
# Controller runs.
# ---------------------------------------------------------------------------


@dataclass
class LaunchedTransfer:
    """A session + controller pair scheduled inside a context."""

    session: TransferSession
    controller: SessionController
    trace: SessionTrace
    start_time: float


def optimizer_factory(
    kind: str, hi: int, rng: np.random.Generator | None = None, **kwargs
):
    """Build a search algorithm by name ("hc", "gd", "bo")."""
    if kind == "hc":
        return HillClimbing(hi=hi, **kwargs)
    if kind == "gd":
        return GradientDescent(hi=hi, **kwargs)
    if kind == "bo":
        return BayesianOptimizer(hi=hi, rng=rng, **kwargs)
    raise ValueError(f"unknown optimizer kind {kind!r}")


def launch_falcon(
    ctx: ExperimentContext,
    testbed: Testbed,
    kind: str = "gd",
    dataset: Dataset | None = None,
    name: str | None = None,
    start_time: float = 0.0,
    hi: int | None = None,
    utility: UtilityFunction | None = None,
    interval: float | None = None,
    repeat: bool = True,
    optimizer=None,
    initial_params: TransferParams | None = None,
    **opt_kwargs,
) -> LaunchedTransfer:
    """Create a session on ``testbed`` driven by a Falcon agent.

    The session is added to the executor (and the agent started) at
    ``start_time``; traces are recorded from launch.  A
    single-parameter agent keeps ``initial_params``' parallelism and
    pipelining (it only retunes concurrency).
    """
    ds = dataset or uniform_dataset(1000)
    session = testbed.new_session(
        ds, name=name, repeat=repeat, params=initial_params or TransferParams()
    )
    trace = ctx.recorder.watch(session)
    rng = ctx.rng(f"agent/{session.name}")
    if optimizer is None:
        optimizer = optimizer_factory(
            kind, hi=hi if hi is not None else 2 * testbed.optimal_concurrency(), rng=rng, **opt_kwargs
        )
    agent = FalconAgent(
        session=session,
        optimizer=optimizer,
        utility=utility or NonlinearPenaltyUtility(),
        rng=rng,
    )
    _schedule(ctx, session, start_time)
    # De-phase decision clocks: real agents' sample windows never stay
    # aligned (process scheduling, measurement latency), and perfectly
    # phase-locked probing makes competing agents blind to the share
    # gradient (both probe high simultaneously, so shares don't move).
    base_interval = interval or testbed.sample_interval
    jittered = base_interval * (1.0 + float(rng.uniform(-0.08, 0.08)))
    attach_agent(ctx.engine, agent, interval=jittered, start_time=start_time)
    return LaunchedTransfer(session=session, controller=agent, trace=trace, start_time=start_time)


def launch_controller(
    ctx: ExperimentContext,
    testbed: Testbed,
    controller_factory: Callable[[TransferSession], SessionController],
    dataset: Dataset | None = None,
    name: str | None = None,
    start_time: float = 0.0,
    interval: float | None = None,
    repeat: bool = True,
) -> LaunchedTransfer:
    """Like :func:`launch_falcon` but for baseline controllers."""
    ds = dataset or uniform_dataset(1000)
    session = testbed.new_session(ds, name=name, repeat=repeat)
    trace = ctx.recorder.watch(session)
    controller = controller_factory(session)
    _schedule(ctx, session, start_time)
    attach_agent(
        ctx.engine,
        controller,
        interval=interval or testbed.sample_interval,
        start_time=start_time,
    )
    return LaunchedTransfer(
        session=session, controller=controller, trace=trace, start_time=start_time
    )


def _schedule(ctx: ExperimentContext, session: TransferSession, start_time: float) -> None:
    if start_time <= ctx.engine.now:
        ctx.network.add_session(session)
    else:
        ctx.engine.schedule_at(
            start_time, lambda: ctx.network.add_session(session), name=f"join:{session.name}"
        )


def retire_at(ctx: ExperimentContext, launched: LaunchedTransfer, time: float) -> None:
    """Force a transfer to complete at ``time`` (models its dataset ending)."""

    def finish() -> None:
        session = launched.session
        if not session.active:
            return
        session.finished_at = ctx.engine.now
        if session in ctx.network.sessions:
            ctx.network.remove_session(session)

    ctx.engine.schedule_at(time, finish, name=f"retire:{launched.session.name}")


# ---------------------------------------------------------------------------
# Trace summarisation.
# ---------------------------------------------------------------------------


def window_mean_bps(trace: SessionTrace, t0: float, t1: float) -> float:
    """Mean goodput of a trace over a time window."""
    return trace.window(t0, t1).mean_throughput()


def steady_window(launched: LaunchedTransfer, end: float, span: float = 60.0) -> tuple[float, float]:
    """The last ``span`` seconds before ``end``, after this transfer started."""
    t0 = max(launched.start_time, end - span)
    return t0, end
