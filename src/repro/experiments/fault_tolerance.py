"""Fault tolerance: retries on vs off under a hostile chaos schedule.

The paper's evaluation assumes a healthy substrate; this experiment
(beyond the paper) measures what the service layer adds when the
substrate misbehaves.  One job moves the same dataset through the same
seeded chaos plan — link outages, loss bursts, storage brownouts,
worker crashes, stalls, and one whole-job crash — twice:

* **retries-on** — the default :class:`~repro.service.RetryPolicy`:
  capped-exponential backoff per file, a no-progress watchdog, and
  job restarts that resume from the undelivered files;
* **retries-off** — ``fault_policy=None``, the legacy service: worker
  crashes still requeue files (session-level restartability) but the
  job crash is fatal.

Expected shape: retries-on delivers every file exactly once and
completes; retries-off strands the job in FAILED with a partial
report.  Both runs share one seed, so the comparison is paired.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.experiments.common import make_context
from repro.faults import ChaosRng, FaultInjector, chaos_plan
from repro.runner import run_tasks, task
from repro.service import FalconService, RetryPolicy, TransferJob
from repro.testbeds.presets import hpclab
from repro.transfer.dataset import uniform_dataset
from repro.units import GB, bps_to_gbps, format_size


@dataclass(frozen=True)
class FaultToleranceRun:
    """Outcome of one service configuration under the chaos plan."""

    name: str
    state: str
    files_delivered: int
    files_expected: int
    bytes_moved: float
    mean_throughput_bps: float
    retries: int
    restarts: int
    worker_crashes: int
    stalled_seconds: float
    faults_injected: int

    @property
    def delivered_fraction(self) -> float:
        """Files delivered over files submitted."""
        return self.files_delivered / self.files_expected


@dataclass(frozen=True)
class FaultToleranceResult:
    """Paired comparison of the two policies."""

    runs: dict[str, FaultToleranceRun]

    def render(self) -> str:
        """Comparison table."""
        return format_table(
            ["Policy", "Outcome", "Files", "Moved", "Mean tput", "Crashes", "Retries", "Restarts"],
            [
                (
                    r.name,
                    r.state,
                    f"{r.files_delivered}/{r.files_expected}",
                    format_size(r.bytes_moved),
                    f"{bps_to_gbps(r.mean_throughput_bps):.2f} Gbps",
                    r.worker_crashes,
                    r.retries,
                    r.restarts,
                )
                for r in self.runs.values()
            ],
        )


def policy_run(
    policy: str, seed: int, files: int, horizon: float, preset: str
) -> FaultToleranceRun:
    """Task unit: one service configuration under the chaos plan."""
    ctx = make_context(seed)
    tb = hpclab()
    service = FalconService(
        engine=ctx.engine,
        network=ctx.network,
        seed=seed,
        fault_policy=RetryPolicy() if policy == "retries-on" else None,
    )
    dataset = uniform_dataset(files, 1 * GB)
    job = service.submit(tb, dataset, name="payload")
    # Faults land inside the first ~60% of the horizon so the
    # retries-on arm has room to recover and finish.
    plan = chaos_plan(preset, horizon=0.6 * horizon, rng=ChaosRng(ctx.streams))
    injector = FaultInjector(
        ctx.engine,
        ctx.network,
        plan,
        streams=ctx.streams,
        service=service,
        recorder=ctx.recorder,
    ).arm()
    ctx.engine.run_until(horizon)
    return _summarize(policy, job, dataset.file_count, injector)


POLICIES = ("retries-on", "retries-off")


def run(
    seed: int = 0,
    files: int = 300,
    horizon: float = 400.0,
    preset: str = "hostile",
) -> FaultToleranceResult:
    """Run the same chaos plan against retries-on and retries-off."""
    results = run_tasks(
        [
            task(policy_run, policy=policy, seed=seed, files=files, horizon=horizon,
                 preset=preset, label=policy)
            for policy in POLICIES
        ]
    )
    return FaultToleranceResult(runs=dict(zip(POLICIES, results)))


def _summarize(
    label: str, job: TransferJob, expected: int, injector: FaultInjector
) -> FaultToleranceRun:
    report = job.report
    return FaultToleranceRun(
        name=label,
        state=job.state.value,
        files_delivered=report.files if report else 0,
        files_expected=expected,
        bytes_moved=report.bytes_moved if report else 0.0,
        mean_throughput_bps=report.mean_throughput_bps if report else 0.0,
        retries=report.retries if report else 0,
        restarts=report.restarts if report else 0,
        worker_crashes=report.worker_crashes if report else 0,
        stalled_seconds=report.stalled_seconds if report else 0.0,
        faults_injected=len(injector.records()),
    )


def main() -> None:
    """Print the comparison."""
    result = run()
    print(result.render())


if __name__ == "__main__":
    main()
