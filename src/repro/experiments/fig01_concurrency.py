"""Fig. 1 — impact of concurrency on throughput; the optimum moves.

(a) Transferring one file at a time leaves most of the pipe idle
    (<8 Gbps in HPCLab, <2 Gbps in XSEDE); concurrency raises
    throughput 3–15x before flattening/degrading.
(b) The *optimal* concurrency differs per (dataset, network) pair —
    the motivating fact for an adaptive solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments.common import SweepPoint, sweep_tasks
from repro.experiments.common import sweep_concurrency as sweep_concurrency  # re-export
from repro.runner import run_tasks
from repro.testbeds.base import Testbed
from repro.testbeds.presets import campus_cluster, emulab_fig4, hpclab, xsede
from repro.transfer.dataset import Dataset, uniform_dataset
from repro.units import GB, MB, bps_to_gbps

#: Concurrency grid for the sweep (paper sweeps 1..32).
SWEEP_GRID = (1, 2, 4, 6, 8, 10, 12, 16, 20, 24, 32)


@dataclass(frozen=True)
class Fig1Result:
    """Sweep curves per network plus the optimal-concurrency matrix."""

    curves: dict[str, list[SweepPoint]]
    optima: dict[tuple[str, str], int]  # (network, dataset) -> argmax concurrency

    def speedup(self, network: str) -> float:
        """Best-concurrency throughput over single-file throughput."""
        pts = self.curves[network]
        base = pts[0].throughput_bps
        best = max(p.throughput_bps for p in pts)
        return best / base if base > 0 else float("inf")

    def render(self) -> str:
        """Both panels as text tables."""
        sweep_rows = []
        for name, pts in self.curves.items():
            for p in pts:
                sweep_rows.append((name, p.concurrency, f"{bps_to_gbps(p.throughput_bps):.2f}"))
        left = format_table(["Network", "Concurrency", "Tput (Gbps)"], sweep_rows)
        right = format_table(
            ["Network", "Dataset", "Optimal n"],
            [(net, ds, n) for (net, ds), n in sorted(self.optima.items())],
        )
        return f"(a) throughput vs concurrency\n{left}\n\n(b) optimal concurrency\n{right}"


def _datasets() -> dict[str, Dataset]:
    """Fig 1(b)'s workload variety: many small, the standard mix, one huge."""
    return {
        "many-small(10MB)": uniform_dataset(2000, 10 * MB, name="many-small"),
        "500x1GB": uniform_dataset(500, 1 * GB),
        "few-huge(100GB)": uniform_dataset(8, 100 * GB, name="few-huge"),
    }


def _networks() -> dict[str, Callable[[], Testbed]]:
    return {
        "HPCLab": hpclab,
        "XSEDE": xsede,
        "Campus Cluster": campus_cluster,
        "Emulab": emulab_fig4,
    }


#: Networks whose full sweep curve panel (a) shows.
CURVE_NETWORKS = ("HPCLab", "XSEDE")


def run(measure_time: float = 20.0) -> Fig1Result:
    """Run both panels' sweeps as one flattened task batch.

    Every (network, dataset, concurrency) point is an independent
    simulation, so the whole figure is emitted as a single task list —
    the pool sees all 14 sweeps at once instead of one at a time.
    """
    networks = _networks()
    datasets = _datasets()
    batches: list[tuple[str, str | None]] = [(name, None) for name in CURVE_NETWORKS]
    batches += [(net, ds) for net in networks for ds in datasets]
    tasks = []
    for net_name, ds_name in batches:
        tasks.extend(
            sweep_tasks(
                networks[net_name],
                SWEEP_GRID,
                dataset=datasets[ds_name] if ds_name else None,
                measure_time=measure_time,
                label=f"fig01 {net_name}" + (f" {ds_name}" if ds_name else ""),
            )
        )
    points = run_tasks(tasks)
    k = len(SWEEP_GRID)
    chunks = {batch: points[j * k : (j + 1) * k] for j, batch in enumerate(batches)}

    curves = {name: chunks[(name, None)] for name in CURVE_NETWORKS}
    optima: dict[tuple[str, str], int] = {}
    for net_name in networks:
        for ds_name in datasets:
            pts = chunks[(net_name, ds_name)]
            tputs = np.array([p.throughput_bps for p in pts])
            # "Optimal" = smallest concurrency within 3% of the best —
            # matching the paper's just-enough framing.
            best = tputs.max()
            good = [p.concurrency for p, t in zip(pts, tputs) if t >= 0.97 * best]
            optima[(net_name, ds_name)] = min(good)
    return Fig1Result(curves=curves, optima=optima)


def main() -> None:
    """Print both panels."""
    print(run().render())


if __name__ == "__main__":
    main()
