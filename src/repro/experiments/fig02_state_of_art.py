"""Fig. 2 — state-of-the-art solutions underperform and share unfairly.

(a) Globus (fixed heuristic) and HARP (historical regression) both
    leave a 40 Gbps Comet–Stampede2 path badly underutilised: Globus
    <6 Gbps, HARP around half of the achievable rate.
(b) When a second HARP joins an existing HARP transfer, the late-comer
    picks a setting that favours itself and gets roughly twice the
    incumbent's throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.baselines.globus import GlobusController
from repro.baselines.harp import HarpController
from repro.experiments.common import launch_controller, make_context, window_mean_bps
from repro.runner import run_tasks, task
from repro.testbeds.presets import hpclab, stampede2_comet
from repro.transfer.dataset import uniform_dataset
from repro.units import bps_to_gbps


@dataclass(frozen=True)
class Fig2Result:
    """Single-transfer baselines plus the HARP-vs-HARP shares."""

    globus_bps: float
    harp_bps: float
    achievable_bps: float
    harp_first_bps: float  # incumbent's share while competing
    harp_second_bps: float  # late-comer's share
    harp_first_cc: int
    harp_second_cc: int

    @property
    def late_comer_ratio(self) -> float:
        """Late-comer / incumbent throughput ratio (paper: ~2)."""
        if self.harp_first_bps <= 0:
            return float("inf")
        return self.harp_second_bps / self.harp_first_bps

    def render(self) -> str:
        """Both panels as tables."""
        a = format_table(
            ["Solution", "Tput (Gbps)", "% of achievable"],
            [
                ("Globus", f"{bps_to_gbps(self.globus_bps):.2f}",
                 f"{100 * self.globus_bps / self.achievable_bps:.0f}%"),
                ("HARP", f"{bps_to_gbps(self.harp_bps):.2f}",
                 f"{100 * self.harp_bps / self.achievable_bps:.0f}%"),
                ("achievable", f"{bps_to_gbps(self.achievable_bps):.2f}", "100%"),
            ],
        )
        b = format_table(
            ["HARP agent", "cc", "Tput (Gbps)"],
            [
                ("first (incumbent)", self.harp_first_cc, f"{bps_to_gbps(self.harp_first_bps):.2f}"),
                ("second (late-comer)", self.harp_second_cc, f"{bps_to_gbps(self.harp_second_bps):.2f}"),
            ],
        )
        return (
            f"(a) single-transfer performance, 40G WAN\n{a}\n\n"
            f"(b) HARP unfairness (late-comer ratio {self.late_comer_ratio:.2f}x)\n{b}"
        )


def _controller_factory(solution: str):
    if solution == "globus":
        return lambda s: GlobusController(session=s, dataset=uniform_dataset(1000))
    return lambda s: HarpController(session=s)


def single_run(solution: str, seed: int, settle: float) -> float:
    """Panel (a) task unit: one baseline alone on the 40G WAN."""
    ctx = make_context(seed)
    tb = stampede2_comet()
    launched = launch_controller(ctx, tb, _controller_factory(solution), name=solution)
    ctx.engine.run_for(settle)
    return window_mean_bps(launched.trace, settle - 60, settle)


def harp_pair(seed: int, settle: float) -> dict[str, float]:
    """Panel (b) task unit: staggered HARP pair on a shared testbed.

    HPCLab's saturated storage array is where the late-comer's
    contended probes mislead its regression hardest (the figure's
    regime).
    """
    ctx = make_context(seed)
    tb = hpclab()
    first = launch_controller(
        ctx, tb, _controller_factory("harp"), name="harp-first", start_time=0.0
    )
    second = launch_controller(
        ctx, tb, _controller_factory("harp"), name="harp-second", start_time=100.0
    )
    ctx.engine.run_for(100.0 + settle)
    t1 = 100.0 + settle
    t0 = t1 - 60
    return {
        "first_bps": window_mean_bps(first.trace, t0, t1),
        "second_bps": window_mean_bps(second.trace, t0, t1),
        "first_cc": float(first.controller.chosen_concurrency or 0),
        "second_cc": float(second.controller.chosen_concurrency or 0),
    }


def run(seed: int = 0, settle: float = 200.0) -> Fig2Result:
    """Run both panels on the Stampede2–Comet testbed."""
    globus_bps, harp_bps, pair = run_tasks(
        [
            task(single_run, solution="globus", seed=seed, settle=settle, label="fig02 globus"),
            task(single_run, solution="harp", seed=seed, settle=settle, label="fig02 harp"),
            task(harp_pair, seed=seed + 1, settle=settle, label="fig02 harp-pair"),
        ]
    )
    return Fig2Result(
        globus_bps=globus_bps,
        harp_bps=harp_bps,
        achievable_bps=stampede2_comet().max_throughput(),
        harp_first_bps=pair["first_bps"],
        harp_second_bps=pair["second_bps"],
        harp_first_cc=int(pair["first_cc"]),
        harp_second_cc=int(pair["second_cc"]),
    )


def main() -> None:
    """Print both panels."""
    print(run().render())


if __name__ == "__main__":
    main()
