"""Fig. 4 — aggressive concurrency congests the network.

On the Emulab topology (100 Mbps bottleneck, 10 Mbps/process I/O
throttle) ten concurrent transfers saturate the link; pushing past ten
buys no throughput and drives packet loss from <2% to ~10% at 32.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.experiments.common import SweepPoint, sweep_concurrency
from repro.testbeds.presets import emulab_fig4
from repro.transfer.dataset import uniform_dataset
from repro.units import MB, bps_to_mbps

#: The paper sweeps concurrency 1..32.
SWEEP_GRID = (1, 2, 4, 6, 8, 10, 12, 16, 20, 24, 28, 32)


@dataclass(frozen=True)
class Fig4Result:
    """Throughput and loss versus concurrency on the Emulab bottleneck."""

    points: list[SweepPoint]
    saturation_concurrency: int

    def loss_at(self, n: int) -> float:
        """Measured loss at a given concurrency."""
        for p in self.points:
            if p.concurrency == n:
                return p.loss_rate
        raise KeyError(n)

    def throughput_at(self, n: int) -> float:
        """Measured throughput (bps) at a given concurrency."""
        for p in self.points:
            if p.concurrency == n:
                return p.throughput_bps
        raise KeyError(n)

    def render(self) -> str:
        """The sweep as a table."""
        return format_table(
            ["Concurrency", "Tput (Mbps)", "Loss"],
            [
                (p.concurrency, f"{bps_to_mbps(p.throughput_bps):.1f}", f"{p.loss_rate:.3%}")
                for p in self.points
            ],
        )


def run(measure_time: float = 25.0) -> Fig4Result:
    """Sweep the Emulab configuration."""
    tb = emulab_fig4()
    points = sweep_concurrency(
        emulab_fig4,
        SWEEP_GRID,
        dataset=uniform_dataset(200, 100 * MB),
        measure_time=measure_time,
    )
    return Fig4Result(points=points, saturation_concurrency=tb.optimal_concurrency())


def main() -> None:
    """Print the sweep."""
    print(run().render())


if __name__ == "__main__":
    main()
