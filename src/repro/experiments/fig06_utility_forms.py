"""Fig. 6 — linear vs nonlinear concurrency regret.

(a) *Estimated* utility curves against an analytic throughput model
    whose optimum is 48 concurrent transfers: linear regret with C=0.02
    peaks near 25 (too conservative); C=0.01 peaks at the optimum but
    with a vanishing margin; the nonlinear K=1.02 form peaks at the
    optimum with a clear gradient on both sides.
(b) *Empirical single transfer*: Falcon-GD with the linear C=0.02
    utility converges well short of 48; with the nonlinear utility it
    reaches the optimum region.
(c) *Empirical competition*: two agents with linear C=0.01 regret
    over-provision (total concurrency well above the 48 needed); the
    nonlinear form converges near the fair split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.core.utility import (
    LinearPenaltyUtility,
    NonlinearPenaltyUtility,
    utility_curve,
)
from repro.experiments.common import launch_falcon, make_context
from repro.runner import run_tasks, task
from repro.testbeds.presets import emulab_io_bound
from repro.units import Mbps

#: The Fig 6 scenario: 21 Mbps per process, 1 Gbps link -> optimum 48.
PER_PROCESS_BPS = 21 * Mbps
LINK_BPS = 1000 * Mbps
OPTIMAL_N = 48


def throughput_model(n: int) -> tuple[float, float]:
    """Analytic Emulab model: linear up to saturation, then flat, lossless.

    Loss is omitted in panel (a) — the paper's estimated curves isolate
    the concurrency-regret term.
    """
    return min(n * PER_PROCESS_BPS, LINK_BPS), 0.0


@dataclass(frozen=True)
class Fig6Result:
    """Peak locations (a) and empirical convergence points (b, c)."""

    peak_linear_c001: int
    peak_linear_c002: int
    peak_nonlinear: int
    empirical_linear_c002: float
    empirical_nonlinear: float
    competing_linear_c001_total: float
    competing_nonlinear_total: float

    def render(self) -> str:
        """Summary tables for all panels."""
        a = format_table(
            ["Utility form", "Estimated peak n", "Paper expectation"],
            [
                ("linear C=0.01", self.peak_linear_c001, "~48 (fragile)"),
                ("linear C=0.02", self.peak_linear_c002, "~25 (suboptimal)"),
                ("nonlinear K=1.02", self.peak_nonlinear, "48"),
            ],
        )
        b = format_table(
            ["Utility form", "Converged n (single)", "Paper expectation"],
            [
                ("linear C=0.02", f"{self.empirical_linear_c002:.1f}", "~26"),
                ("nonlinear K=1.02", f"{self.empirical_nonlinear:.1f}", "~48"),
            ],
        )
        c = format_table(
            ["Utility form", "Total n (2 agents)", "Paper expectation"],
            [
                ("linear C=0.01", f"{self.competing_linear_c001_total:.1f}", "72-76 (over-provisioned)"),
                ("nonlinear K=1.02", f"{self.competing_nonlinear_total:.1f}", "~48 (fair split)"),
            ],
        )
        return f"(a) estimated\n{a}\n\n(b) empirical single\n{b}\n\n(c) competing pair\n{c}"


def estimated_peaks() -> tuple[int, int, int]:
    """Panel (a): argmax of each estimated utility curve."""
    n_grid = np.arange(1, 81)
    peaks = []
    for utility in (
        LinearPenaltyUtility(C=0.01),
        LinearPenaltyUtility(C=0.02),
        NonlinearPenaltyUtility(),
    ):
        curve = utility_curve(utility, throughput_model, n_grid)
        peaks.append(int(n_grid[int(np.argmax(curve))]))
    return peaks[0], peaks[1], peaks[2]


def _steady_concurrency(launched, fraction: float = 0.5) -> float:
    """Mean evaluated concurrency over the trailing ``fraction`` of decisions.

    The linear-regret agents do not *settle* — their wandering is the
    phenomenon — so the average over a long window is the honest
    summary of where they operate.
    """
    cc = np.array(launched.controller.concurrencies(), dtype=float)
    tail = cc[int(len(cc) * (1 - fraction)) :]
    return float(tail.mean()) if tail.size else 0.0


def _utility(label: str):
    """Utility form by declarative label (tasks carry strings, not objects)."""
    return {
        "linear01": lambda: LinearPenaltyUtility(C=0.01),
        "linear02": lambda: LinearPenaltyUtility(C=0.02),
        "nonlinear": lambda: NonlinearPenaltyUtility(),
    }[label]()


def single_utility_run(utility: str, seed: int, duration: float) -> float:
    """Panel (b) task unit: one GD agent under the named utility form."""
    ctx = make_context(seed)
    tb = emulab_io_bound()
    launched = launch_falcon(ctx, tb, kind="gd", hi=80, utility=_utility(utility), name=utility)
    ctx.engine.run_for(duration)
    return _steady_concurrency(launched)


def competing_pair_run(utility: str, seed: int, duration: float) -> float:
    """Panel (c) task unit: two competing agents; returns their total n."""
    ctx = make_context(seed)
    tb = emulab_io_bound()
    a = launch_falcon(ctx, tb, kind="gd", hi=80, utility=_utility(utility), name=f"{utility}-a")
    b = launch_falcon(
        ctx, tb, kind="gd", hi=80, utility=_utility(utility), name=f"{utility}-b", start_time=60.0
    )
    ctx.engine.run_for(duration)
    return _steady_concurrency(a) + _steady_concurrency(b)


def run(seed: int = 0, duration: float = 500.0) -> Fig6Result:
    """All three panels."""
    p001, p002, pnl = estimated_peaks()

    single02, single_nl, comp01, comp_nl = run_tasks(
        [
            task(single_utility_run, utility="linear02", seed=seed, duration=duration,
                 label="fig06 single linear02"),
            task(single_utility_run, utility="nonlinear", seed=seed, duration=duration,
                 label="fig06 single nonlinear"),
            task(competing_pair_run, utility="linear01", seed=seed + 1, duration=duration,
                 label="fig06 pair linear01"),
            task(competing_pair_run, utility="nonlinear", seed=seed + 1, duration=duration,
                 label="fig06 pair nonlinear"),
        ]
    )
    empirical = {"linear02": single02, "nonlinear": single_nl}
    competing = {"linear01": comp01, "nonlinear": comp_nl}

    return Fig6Result(
        peak_linear_c001=p001,
        peak_linear_c002=p002,
        peak_nonlinear=pnl,
        empirical_linear_c002=empirical["linear02"],
        empirical_nonlinear=empirical["nonlinear"],
        competing_linear_c001_total=competing["linear01"],
        competing_nonlinear_total=competing["nonlinear"],
    )


def main() -> None:
    """Print all panels."""
    print(run().render())


if __name__ == "__main__":
    main()
