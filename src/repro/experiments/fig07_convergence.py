"""Fig. 7 — convergence speed of Hill Climbing vs GD vs Bayesian Opt.

Emulab with per-process I/O throttled so the optimum is 48 concurrent
transfers.  Hill Climbing's fixed ±1 step needs one sample interval per
concurrency unit (~250 s to reach the optimum); GD and BO get there in
tens of seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.convergence import time_to_fraction_of_max
from repro.analysis.tables import format_table
from repro.experiments.common import launch_falcon, make_context
from repro.runner import run_tasks, task
from repro.testbeds.presets import emulab_high_optimal
from repro.units import bps_to_mbps


@dataclass(frozen=True)
class AlgorithmRun:
    """Convergence metrics for one search algorithm."""

    name: str
    time_to_85pct: float
    steady_throughput_bps: float
    steady_concurrency: float


@dataclass(frozen=True)
class Fig7Result:
    """One run per algorithm."""

    runs: dict[str, AlgorithmRun]

    def slowdown(self, slow: str = "hc", fast: str = "gd") -> float:
        """How many times slower one algorithm converges than another."""
        f = self.runs[fast].time_to_85pct
        s = self.runs[slow].time_to_85pct
        return s / f if f > 0 else float("inf")

    def render(self) -> str:
        """Comparison table."""
        return format_table(
            ["Algorithm", "t(85% max)", "Steady tput (Mbps)", "Steady n"],
            [
                (r.name, f"{r.time_to_85pct:.0f}s",
                 f"{bps_to_mbps(r.steady_throughput_bps):.0f}", f"{r.steady_concurrency:.1f}")
                for r in self.runs.values()
            ],
        )


def algorithm_run(kind: str, seed: int, duration: float) -> AlgorithmRun:
    """One algorithm's independent run (task unit)."""
    ctx = make_context(seed)
    tb = emulab_high_optimal()
    launched = launch_falcon(ctx, tb, kind=kind, hi=64, name=f"falcon-{kind}")
    ctx.engine.run_for(duration)
    agent = launched.controller
    times = agent.times()
    tputs = agent.throughputs()
    cc = agent.concurrencies()
    tail = slice(int(len(cc) * 0.75), None)
    return AlgorithmRun(
        name=kind.upper(),
        time_to_85pct=time_to_fraction_of_max(times, tputs, 0.85),
        steady_throughput_bps=float(np.mean(tputs[tail])),
        steady_concurrency=float(np.mean(cc[tail])),
    )


KINDS = ("hc", "gd", "bo")


def run(seed: int = 0, duration: float = 500.0) -> Fig7Result:
    """One independent run per algorithm on the 48-optimum Emulab."""
    results = run_tasks(
        [
            task(algorithm_run, kind=kind, seed=seed, duration=duration, label=f"fig07 {kind}")
            for kind in KINDS
        ]
    )
    return Fig7Result(runs=dict(zip(KINDS, results)))


def main() -> None:
    """Print the comparison."""
    result = run()
    print(result.render())
    print(f"\nHC vs GD slowdown: {result.slowdown('hc', 'gd'):.1f}x (paper: ~7x)")


if __name__ == "__main__":
    main()
