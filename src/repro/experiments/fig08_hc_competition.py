"""Fig. 8 — Hill Climbing is too slow to share fairly.

Two Hill Climbing Falcon agents on the 48-optimum Emulab, the second
joining mid-run.  Because HC moves one concurrency unit per sample
interval, the pair spends hundreds of seconds far from the fair split —
in the window where GD/BO pairs are already balanced, HC's shares are
still lopsided.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.fairness import jain_index
from repro.analysis.tables import format_table
from repro.experiments.common import launch_falcon, make_context, window_mean_bps
from repro.runner import run_tasks, task
from repro.testbeds.presets import emulab_high_optimal
from repro.units import bps_to_mbps


@dataclass(frozen=True)
class Fig8Result:
    """Fairness of an HC pair vs a GD pair over the same timeline."""

    hc_early_jain: float  # shortly after the second agent joins
    hc_late_jain: float  # at the end of a long run
    gd_early_jain: float
    hc_shares_early: tuple[float, float]
    gd_shares_early: tuple[float, float]

    def render(self) -> str:
        """Comparison table."""
        return format_table(
            ["Pair", "Jain (10-70s after join)", "Jain (late)", "Shares early (Mbps)"],
            [
                (
                    "HC + HC",
                    f"{self.hc_early_jain:.3f}",
                    f"{self.hc_late_jain:.3f}",
                    f"{bps_to_mbps(self.hc_shares_early[0]):.0f}/{bps_to_mbps(self.hc_shares_early[1]):.0f}",
                ),
                (
                    "GD + GD",
                    f"{self.gd_early_jain:.3f}",
                    "-",
                    f"{bps_to_mbps(self.gd_shares_early[0]):.0f}/{bps_to_mbps(self.gd_shares_early[1]):.0f}",
                ),
            ],
        )


def pair_windows(kind: str, seed: int, join_at: float, duration: float) -> dict[str, list[float]]:
    """Task unit: a staggered pair; early/late window means per agent."""
    ctx = make_context(seed)
    tb = emulab_high_optimal()
    a = launch_falcon(ctx, tb, kind=kind, hi=64, name=f"{kind}-a")
    b = launch_falcon(ctx, tb, kind=kind, hi=64, name=f"{kind}-b", start_time=join_at)
    ctx.engine.run_for(duration)
    early = (join_at + 10.0, join_at + 70.0)
    late = (duration - 60.0, duration)
    return {
        "early": [window_mean_bps(a.trace, *early), window_mean_bps(b.trace, *early)],
        "late": [window_mean_bps(a.trace, *late), window_mean_bps(b.trace, *late)],
    }


def run(seed: int = 0, join_at: float = 260.0, duration: float = 700.0) -> Fig8Result:
    """Run HC and GD pairs over identical timelines."""
    hc, gd = run_tasks(
        [
            task(pair_windows, kind=kind, seed=seed, join_at=join_at, duration=duration,
                 label=f"fig08 {kind} pair")
            for kind in ("hc", "gd")
        ]
    )

    hc_early = np.array(hc["early"])
    hc_late = np.array(hc["late"])
    gd_early = np.array(gd["early"])
    return Fig8Result(
        hc_early_jain=jain_index(hc_early),
        hc_late_jain=jain_index(hc_late),
        gd_early_jain=jain_index(gd_early),
        hc_shares_early=(float(hc_early[0]), float(hc_early[1])),
        gd_shares_early=(float(gd_early[0]), float(gd_early[1])),
    )


def main() -> None:
    """Print the comparison."""
    print(run().render())


if __name__ == "__main__":
    main()
