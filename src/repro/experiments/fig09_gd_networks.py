"""Fig. 9 — Falcon with Gradient Descent in all four networks.

Single transfer per testbed; GD converges to the optimum within a few
sample intervals and then bounces between the ±ε probes around it
(Emulab ~10, HPCLab >25 Gbps, Campus ~9.2 Gbps, XSEDE ~5.4 Gbps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analysis.convergence import time_to_fraction_of_max
from repro.analysis.tables import format_table
from repro.experiments.common import LaunchedTransfer, launch_falcon, make_context
from repro.runner import run_tasks, task
from repro.testbeds.base import Testbed
from repro.testbeds.presets import campus_cluster, emulab_fig4, hpclab, xsede
from repro.units import bps_to_gbps


@dataclass(frozen=True)
class NetworkRun:
    """Falcon's behaviour on one testbed."""

    network: str
    steady_throughput_bps: float
    achievable_bps: float
    steady_concurrency: float
    optimal_concurrency: int
    time_to_85pct: float

    @property
    def utilization(self) -> float:
        """Steady throughput over the analytic achievable rate."""
        return self.steady_throughput_bps / self.achievable_bps


@dataclass(frozen=True)
class FigNetworksResult:
    """One run per testbed (shared by Figs 9 and 10)."""

    algorithm: str
    runs: dict[str, NetworkRun]

    def render(self) -> str:
        """Per-network summary."""
        return format_table(
            ["Network", "Steady tput", "Achievable", "Util", "n (steady)", "n* (optimal)", "t85"],
            [
                (
                    r.network,
                    f"{bps_to_gbps(r.steady_throughput_bps):.2f}G",
                    f"{bps_to_gbps(r.achievable_bps):.2f}G",
                    f"{100 * r.utilization:.0f}%",
                    f"{r.steady_concurrency:.1f}",
                    r.optimal_concurrency,
                    f"{r.time_to_85pct:.0f}s",
                )
                for r in self.runs.values()
            ],
        )


NETWORKS: dict[str, Callable[[], Testbed]] = {
    "Emulab": emulab_fig4,
    "XSEDE": xsede,
    "HPCLab": hpclab,
    "Campus Cluster": campus_cluster,
}


def network_run(kind: str, network: str, seed: int, duration: float) -> NetworkRun:
    """Task unit: Falcon with one algorithm on one named testbed."""
    ctx = make_context(seed)
    tb = NETWORKS[network]()
    launched: LaunchedTransfer = launch_falcon(ctx, tb, kind=kind, name=f"{kind}-{network}")
    ctx.engine.run_for(duration)
    agent = launched.controller
    tputs = agent.throughputs()
    cc = agent.concurrencies()
    tail = slice(int(len(cc) * 0.7), None)
    return NetworkRun(
        network=network,
        steady_throughput_bps=float(np.mean(tputs[tail])),
        achievable_bps=tb.max_throughput(),
        steady_concurrency=float(np.mean(cc[tail])),
        optimal_concurrency=tb.optimal_concurrency(),
        time_to_85pct=time_to_fraction_of_max(agent.times(), tputs, 0.85),
    )


def run_networks(kind: str, seed: int = 0, duration: float = 300.0) -> FigNetworksResult:
    """Falcon with the given search algorithm on each Table 1 testbed."""
    results = run_tasks(
        [
            task(network_run, kind=kind, network=name, seed=seed, duration=duration,
                 label=f"{kind} {name}")
            for name in NETWORKS
        ]
    )
    return FigNetworksResult(algorithm=kind.upper(), runs=dict(zip(NETWORKS, results)))


def run(seed: int = 0, duration: float = 300.0) -> FigNetworksResult:
    """Fig. 9: Gradient Descent everywhere."""
    return run_networks("gd", seed=seed, duration=duration)


def main() -> None:
    """Print the per-network summary."""
    print(run().render())


if __name__ == "__main__":
    main()
