"""Fig. 10 — Falcon with Bayesian Optimization in all four networks.

Same setup as Fig. 9; BO bootstraps with three random samples, then its
windowed GP homes in on the optimum and keeps exploring periodically.
"""

from __future__ import annotations

from repro.experiments.fig09_gd_networks import FigNetworksResult, run_networks


def run(seed: int = 0, duration: float = 300.0) -> FigNetworksResult:
    """Fig. 10: Bayesian Optimization everywhere."""
    return run_networks("bo", seed=seed, duration=duration)


def main() -> None:
    """Print the per-network summary."""
    print(run().render())


if __name__ == "__main__":
    main()
