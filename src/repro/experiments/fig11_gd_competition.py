"""Fig. 11 — stability of competing Falcon-GD agents.

Three staggered Falcon-GD transfers on HPCLab (and a pair on Emulab):
each newcomer quickly claims a fair share (12–13 Gbps for two, 7–8 for
three on HPCLab), aggregate utilisation stays high, and when a transfer
departs the survivors reclaim the capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analysis.fairness import jain_index
from repro.analysis.tables import format_table
from repro.experiments.common import (
    LaunchedTransfer,
    launch_falcon,
    make_context,
    retire_at,
    window_mean_bps,
)
from repro.runner import callable_path, resolve_callable, run_tasks, task
from repro.testbeds.base import Testbed
from repro.testbeds.presets import hpclab
from repro.units import bps_to_gbps


@dataclass(frozen=True)
class PhaseStats:
    """Shares during one phase of the join/leave timeline."""

    label: str
    shares_bps: tuple[float, ...]
    jain: float
    aggregate_bps: float


@dataclass(frozen=True)
class CompetitionResult:
    """Per-phase fairness for a staggered multi-agent run."""

    algorithm: str
    network: str
    phases: list[PhaseStats]
    achievable_bps: float

    def phase(self, label: str) -> PhaseStats:
        """Look up a phase by label."""
        for p in self.phases:
            if p.label == label:
                return p
        raise KeyError(label)

    def render(self) -> str:
        """Per-phase summary table."""
        return format_table(
            ["Phase", "Shares (Gbps)", "Jain", "Aggregate", "% achievable"],
            [
                (
                    p.label,
                    "/".join(f"{bps_to_gbps(s):.1f}" for s in p.shares_bps),
                    f"{p.jain:.3f}",
                    f"{bps_to_gbps(p.aggregate_bps):.1f}G",
                    f"{100 * p.aggregate_bps / self.achievable_bps:.0f}%",
                )
                for p in self.phases
            ],
        )


def competition_run(kind: str, testbed: str, seed: int, phase: float) -> CompetitionResult:
    """Task unit: one shared-testbed sim with three staggered agents.

    Join at 0/1x/2x phase, first leaves at 3x.  Phases measured (last
    60 s of each):

    * ``one``    — only the first agent;
    * ``two``    — first + second;
    * ``three``  — all three;
    * ``reclaim``— second + third after the first departs.
    """
    ctx = make_context(seed)
    tb = resolve_callable(testbed)()
    launches: list[LaunchedTransfer] = []
    for i in range(3):
        launches.append(
            launch_falcon(ctx, tb, kind=kind, name=f"{kind}-{i}", start_time=i * phase)
        )
    retire_at(ctx, launches[0], 3 * phase)
    ctx.engine.run_for(4 * phase)

    def phase_stats(label: str, t1: float, members: list[int]) -> PhaseStats:
        t0 = t1 - 60.0
        shares = tuple(window_mean_bps(launches[i].trace, t0, t1) for i in members)
        return PhaseStats(
            label=label,
            shares_bps=shares,
            jain=jain_index(np.array(shares)),
            aggregate_bps=float(sum(shares)),
        )

    phases = [
        phase_stats("one", phase, [0]),
        phase_stats("two", 2 * phase, [0, 1]),
        phase_stats("three", 3 * phase, [0, 1, 2]),
        phase_stats("reclaim", 4 * phase, [1, 2]),
    ]
    return CompetitionResult(
        algorithm=kind.upper(),
        network=tb.name,
        phases=phases,
        achievable_bps=tb.max_throughput(),
    )


def run_competition(
    kind: str,
    testbed_factory: Callable[[], Testbed] | str = hpclab,
    seed: int = 0,
    phase: float = 150.0,
) -> CompetitionResult:
    """The staggered-competition scenario, executed through the runner."""
    return run_tasks(
        [
            task(
                competition_run,
                kind=kind,
                testbed=callable_path(testbed_factory),
                seed=seed,
                phase=phase,
                label=f"{kind} competition",
            )
        ]
    )[0]


def run(seed: int = 0, phase: float = 150.0) -> CompetitionResult:
    """Fig. 11: GD agents on HPCLab."""
    return run_competition("gd", hpclab, seed=seed, phase=phase)


def main() -> None:
    """Print the per-phase summary."""
    print(run().render())


if __name__ == "__main__":
    main()
