"""Fig. 12 — stability of competing Falcon-BO agents.

Same join/leave timeline as Fig. 11 but with Bayesian Optimization.
BO agents do not settle on a fixed concurrency when competing (their
exploration steps are larger), yet average shares stay nearly equal
thanks to the strictly concave utility.
"""

from __future__ import annotations

from repro.experiments.fig11_gd_competition import CompetitionResult, run_competition
from repro.testbeds.presets import hpclab


def run(seed: int = 0, phase: float = 150.0) -> CompetitionResult:
    """Fig. 12: BO agents on HPCLab."""
    return run_competition("bo", hpclab, seed=seed, phase=phase)


def main() -> None:
    """Print the per-phase summary."""
    print(run().render())


if __name__ == "__main__":
    main()
