"""Fig. 13 — Falcon senders shrink their concurrency when others join.

Emulab with a 1 Gbps bottleneck and 20 Mbps/process throttle (48
concurrent transfers saturate the link).  A lone Falcon-GD agent
converges near 48; when a second joins, the first drops to the 20–33
range; with three they sit around 10–23 each — enough total concurrency
to fill the link with minimal loss — and departures are reclaimed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments.common import (
    launch_falcon,
    make_context,
    retire_at,
)
from repro.runner import run_tasks, task
from repro.testbeds.presets import emulab
from repro.units import Mbps


@dataclass(frozen=True)
class ConcurrencyPhase:
    """Mean concurrency per active agent during one phase."""

    label: str
    mean_concurrency: tuple[float, ...]
    total_concurrency: float
    mean_loss: float


@dataclass(frozen=True)
class Fig13Result:
    """Concurrency traces summarised per phase."""

    phases: list[ConcurrencyPhase]
    saturation_concurrency: int

    def phase(self, label: str) -> ConcurrencyPhase:
        """Look up a phase by label."""
        for p in self.phases:
            if p.label == label:
                return p
        raise KeyError(label)

    def render(self) -> str:
        """Per-phase summary table."""
        return format_table(
            ["Phase", "Per-agent n", "Total n", "Loss", f"(saturation n = {self.saturation_concurrency})"],
            [
                (
                    p.label,
                    "/".join(f"{c:.0f}" for c in p.mean_concurrency),
                    f"{p.total_concurrency:.0f}",
                    f"{p.mean_loss:.2%}",
                    "",
                )
                for p in self.phases
            ],
        )


def traces_run(seed: int, phase: float) -> Fig13Result:
    """Task unit: three staggered GD agents on the 48-optimum Emulab."""
    ctx = make_context(seed)
    tb = emulab(link_bps=1000 * Mbps, per_process_bps=20 * Mbps)
    launches = [
        launch_falcon(ctx, tb, kind="gd", hi=64, name=f"gd-{i}", start_time=i * phase)
        for i in range(3)
    ]
    retire_at(ctx, launches[0], 3 * phase)
    ctx.engine.run_for(4 * phase)

    def stats(label: str, t1: float, members: list[int]) -> ConcurrencyPhase:
        t0 = t1 - 60.0
        ccs, losses = [], []
        for i in members:
            w = launches[i].trace.window(t0, t1)
            ccs.append(float(np.mean(w.concurrencies())) if w.times else 0.0)
            losses.append(float(np.mean(w.losses())) if w.times else 0.0)
        return ConcurrencyPhase(
            label=label,
            mean_concurrency=tuple(ccs),
            total_concurrency=float(sum(ccs)),
            mean_loss=float(np.mean(losses)),
        )

    phases = [
        stats("one", phase, [0]),
        stats("two", 2 * phase, [0, 1]),
        stats("three", 3 * phase, [0, 1, 2]),
        stats("reclaim", 4 * phase, [1, 2]),
    ]
    return Fig13Result(phases=phases, saturation_concurrency=tb.optimal_concurrency())


def run(seed: int = 0, phase: float = 180.0) -> Fig13Result:
    """Three staggered GD agents, executed through the runner."""
    return run_tasks([task(traces_run, seed=seed, phase=phase, label="fig13 traces")])[0]


def main() -> None:
    """Print the per-phase concurrency summary."""
    print(run().render())


if __name__ == "__main__":
    main()
