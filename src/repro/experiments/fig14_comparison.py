"""Fig. 14 — Falcon vs Globus vs HARP, 1 TB dataset, three networks.

Falcon (GD) against the two baselines on HPCLab, XSEDE and Campus
Cluster.  The paper: Globus ~9 Gbps vs Falcon >22 Gbps in HPCLab;
HARP 25–35% below Falcon in HPCLab/XSEDE, comparable on Campus
Cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.tables import format_table
from repro.baselines.globus import GlobusController
from repro.baselines.harp import HarpController
from repro.experiments.common import (
    launch_controller,
    launch_falcon,
    make_context,
    window_mean_bps,
)
from repro.runner import run_tasks, task
from repro.testbeds.base import Testbed
from repro.testbeds.presets import campus_cluster, hpclab, xsede
from repro.transfer.dataset import uniform_dataset
from repro.units import TB, bps_to_gbps, format_duration


@dataclass(frozen=True)
class SolutionRun:
    """One (solution, network) measurement."""

    solution: str
    network: str
    throughput_bps: float

    def transfer_time_1tb(self) -> float:
        """Projected wall time to move 1 TB at the measured rate."""
        if self.throughput_bps <= 0:
            return float("inf")
        return TB * 8.0 / self.throughput_bps


@dataclass(frozen=True)
class Fig14Result:
    """All nine (solution x network) measurements."""

    runs: dict[tuple[str, str], SolutionRun]
    networks: tuple[str, ...]

    def throughput(self, solution: str, network: str) -> float:
        """Measured throughput for a pair."""
        return self.runs[(solution, network)].throughput_bps

    def advantage(self, network: str, over: str) -> float:
        """Falcon's throughput ratio over a baseline on a network."""
        base = self.throughput(over, network)
        return self.throughput("falcon", network) / base if base > 0 else float("inf")

    def render(self) -> str:
        """Solutions x networks table."""
        rows = []
        for solution in ("falcon", "harp", "globus"):
            row = [solution]
            for net in self.networks:
                r = self.runs[(solution, net)]
                row.append(
                    f"{bps_to_gbps(r.throughput_bps):.2f}G ({format_duration(r.transfer_time_1tb())})"
                )
            rows.append(tuple(row))
        return format_table(("Solution",) + self.networks, rows)


NETWORKS: dict[str, Callable[[], Testbed]] = {
    "HPCLab": hpclab,
    "XSEDE": xsede,
    "Campus Cluster": campus_cluster,
}


SOLUTIONS = ("falcon", "harp", "globus")


def solution_run(solution: str, network: str, seed: int, duration: float) -> SolutionRun:
    """Task unit: one solution alone on one network, 1 TB workload."""
    ctx = make_context(seed)
    tb = NETWORKS[network]()
    dataset = uniform_dataset(1000)  # 1000 x 1 GB = 1 TB
    if solution == "falcon":
        launched = launch_falcon(ctx, tb, kind="gd", dataset=dataset, name=solution)
    elif solution == "harp":
        launched = launch_controller(
            ctx, tb, lambda s: HarpController(session=s), dataset=dataset, name=solution
        )
    else:
        launched = launch_controller(
            ctx,
            tb,
            lambda s: GlobusController(session=s, dataset=dataset),
            dataset=dataset,
            name=solution,
        )
    ctx.engine.run_for(duration)
    return SolutionRun(
        solution=solution,
        network=network,
        throughput_bps=window_mean_bps(launched.trace, duration - 90, duration),
    )


def run(seed: int = 0, duration: float = 240.0) -> Fig14Result:
    """Each solution alone on each network, 1 TB workload."""
    pairs = [(net, sol) for net in NETWORKS for sol in SOLUTIONS]
    results = run_tasks(
        [
            task(solution_run, solution=sol, network=net, seed=seed, duration=duration,
                 label=f"fig14 {sol} {net}")
            for net, sol in pairs
        ]
    )
    runs = {(sol, net): r for (net, sol), r in zip(pairs, results)}
    return Fig14Result(runs=runs, networks=tuple(NETWORKS))


def main() -> None:
    """Print the comparison."""
    print(run().render())


if __name__ == "__main__":
    main()
