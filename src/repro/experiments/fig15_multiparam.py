"""Fig. 15 — multi-parameter optimization (concurrency, parallelism,
pipelining).

Stampede2→Comet (40 Gbps, 60 ms), three dataset profiles.  Tuning all
three parameters (Falcon_MP, conjugate gradient on the Eq. 7 utility)
beats concurrency-only Falcon by up to ~30% on *small* and *mixed*
datasets — pipelining hides the two-control-RTT-per-file stall that
dominates tiny files — but loses ~18% on *large* (no pipelining upside,
a non-concave utility, and a 3x-slower search phase).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.conjugate_gradient import ConjugateGradientOptimizer
from repro.core.utility import MultiParamUtility
from repro.experiments.common import launch_falcon, make_context, window_mean_bps
from repro.runner import run_tasks, task
from repro.testbeds.presets import stampede2_comet
from repro.transfer.dataset import Dataset, large_dataset, mixed_dataset, small_dataset
from repro.transfer.session import TransferParams
from repro.units import GiB, bps_to_gbps


@dataclass(frozen=True)
class DatasetRun:
    """Single- vs multi-parameter throughput for one dataset profile."""

    dataset: str
    falcon_bps: float
    falcon_mp_bps: float
    mp_params: tuple[int, int, int]  # final (concurrency, parallelism, pipelining)

    @property
    def mp_gain(self) -> float:
        """Falcon_MP / Falcon throughput ratio."""
        return self.falcon_mp_bps / self.falcon_bps if self.falcon_bps > 0 else float("inf")


@dataclass(frozen=True)
class Fig15Result:
    """One row per dataset profile."""

    runs: dict[str, DatasetRun]

    def render(self) -> str:
        """Comparison table."""
        return format_table(
            ["Dataset", "Falcon", "Falcon_MP", "MP gain", "MP (n,p,q)"],
            [
                (
                    r.dataset,
                    f"{bps_to_gbps(r.falcon_bps):.2f}G",
                    f"{bps_to_gbps(r.falcon_mp_bps):.2f}G",
                    f"{r.mp_gain:.2f}x",
                    str(r.mp_params),
                )
                for r in self.runs.values()
            ],
        )


def _datasets(seed: int) -> dict[str, Dataset]:
    # Scaled-down totals keep each profile's file-size *distribution*
    # while letting the simulated steady state appear within minutes.
    return {
        "small": small_dataset(total_bytes=30 * GiB, seed=seed),
        "large": large_dataset(total_bytes=256 * GiB, seed=seed),
        "mixed": mixed_dataset(seed=seed),
    }


def single_run(profile: str, seed: int, duration: float) -> float:
    """Task unit: concurrency-only Falcon on one dataset profile.

    GridFTP's command pipelining is on by default in production
    deployments, so the single-parameter agent transfers with a fixed
    moderate pipelining depth and parallelism 1 — it simply never
    *tunes* them.
    """
    ctx = make_context(seed)
    launched = launch_falcon(
        ctx,
        stampede2_comet(),
        kind="gd",
        dataset=_datasets(seed)[profile],
        name=f"single-{profile}",
        hi=40,
        initial_params=TransferParams(concurrency=1, parallelism=1, pipelining=8),
    )
    ctx.engine.run_for(duration)
    return window_mean_bps(launched.trace, 20, duration)


def multiparam_run(profile: str, seed: int, duration: float) -> dict[str, float]:
    """Task unit: Falcon_MP (conjugate gradient, Eq. 7 utility)."""
    ctx = make_context(seed)
    mp_optimizer = ConjugateGradientOptimizer(
        concurrency_bounds=(1, 40), parallelism_bounds=(1, 8), pipelining_bounds=(1, 64)
    )
    mp = launch_falcon(
        ctx,
        stampede2_comet(),
        kind="gd",
        dataset=_datasets(seed)[profile],
        name=f"mp-{profile}",
        optimizer=mp_optimizer,
        utility=MultiParamUtility(),
    )
    ctx.engine.run_for(duration)
    final = mp.session.params
    return {
        "bps": window_mean_bps(mp.trace, 20, duration),
        "concurrency": float(final.concurrency),
        "parallelism": float(final.parallelism),
        "pipelining": float(final.pipelining),
    }


PROFILES = ("small", "large", "mixed")


def run(seed: int = 0, duration: float = 400.0) -> Fig15Result:
    """Falcon vs Falcon_MP per dataset profile."""
    specs = []
    for name in PROFILES:
        specs.append(task(single_run, profile=name, seed=seed, duration=duration,
                          label=f"fig15 single {name}"))
        specs.append(task(multiparam_run, profile=name, seed=seed, duration=duration,
                          label=f"fig15 mp {name}"))
    results = run_tasks(specs)
    runs = {}
    for i, name in enumerate(PROFILES):
        single_bps, mp = results[2 * i], results[2 * i + 1]
        runs[name] = DatasetRun(
            dataset=name,
            falcon_bps=single_bps,
            falcon_mp_bps=mp["bps"],
            mp_params=(int(mp["concurrency"]), int(mp["parallelism"]), int(mp["pipelining"])),
        )
    return Fig15Result(runs=runs)


def main() -> None:
    """Print the comparison."""
    print(run().render())


if __name__ == "__main__":
    main()
