"""Fig. 16 — friendliness toward non-Falcon transfers.

Stampede2→Comet: Globus starts first, HARP joins, then a Falcon agent
joins at ~120 s.  The paper's claims:

* Falcon-GD soaks up spare capacity but stops growing once the
  per-worker gain falls under ~2%, denting Globus+HARP only modestly;
* Falcon-BO is more aggressive — its full-domain exploration probes
  very high concurrency and it settles high against non-adaptive
  competitors.

Our BO tracks the Eq. 4 utility more faithfully than the paper's run
(it settles near the same utility optimum GD finds), so to demonstrate
what the utility *buys*, the experiment adds a third arm: a
throughput-greedy tuner (gradient ascent on raw throughput, i.e. a
regret-free Eq. 1 agent).  The greedy agent keeps escalating as long as
any share can be stolen, and the incumbents collapse — the failure mode
Falcon's regret terms exist to prevent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.baselines.globus import GlobusController
from repro.baselines.harp import HarpController
from repro.core.gradient_descent import GradientDescent
from repro.core.utility import ThroughputUtility
from repro.experiments.common import launch_controller, launch_falcon, make_context, window_mean_bps
from repro.runner import run_tasks, task
from repro.testbeds.presets import stampede2_comet
from repro.transfer.dataset import large_dataset
from repro.units import GiB, bps_to_gbps


@dataclass(frozen=True)
class FriendlinessRun:
    """Impact of one tuner variant on incumbent baselines."""

    algorithm: str
    baseline_before_bps: float  # Globus+HARP aggregate before the tuner joins
    baseline_after_bps: float  # same aggregate once the tuner has settled
    tuner_bps: float
    tuner_concurrency: float
    tuner_peak_concurrency: int

    @property
    def degradation(self) -> float:
        """Fractional throughput loss inflicted on the incumbents."""
        if self.baseline_before_bps <= 0:
            return 0.0
        return 1.0 - self.baseline_after_bps / self.baseline_before_bps


@dataclass(frozen=True)
class Fig16Result:
    """GD, BO, and greedy friendliness runs."""

    gd: FriendlinessRun
    bo: FriendlinessRun
    greedy: FriendlinessRun

    def render(self) -> str:
        """Comparison table."""
        rows = []
        for r in (self.gd, self.bo, self.greedy):
            rows.append(
                (
                    r.algorithm,
                    f"{bps_to_gbps(r.baseline_before_bps):.1f}G",
                    f"{bps_to_gbps(r.baseline_after_bps):.1f}G",
                    f"{100 * r.degradation:.0f}%",
                    f"{bps_to_gbps(r.tuner_bps):.1f}G",
                    f"{r.tuner_concurrency:.0f}",
                    r.tuner_peak_concurrency,
                )
            )
        return format_table(
            ["Tuner", "Others before", "Others after", "Degradation", "Tuner tput", "n", "peak n"],
            rows,
        )


def friendliness_run(kind: str, seed: int, falcon_join: float, settle: float) -> FriendlinessRun:
    """Task unit: the Globus→HARP→tuner timeline for one tuner variant."""
    ctx = make_context(seed)
    tb = stampede2_comet()
    dataset = large_dataset(total_bytes=256 * GiB, seed=seed)
    globus = launch_controller(
        ctx,
        tb,
        lambda s: GlobusController(session=s, dataset=dataset),
        dataset=dataset,
        name="globus",
        start_time=0.0,
    )
    harp = launch_controller(
        ctx, tb, lambda s: HarpController(session=s), dataset=dataset, name="harp", start_time=50.0
    )
    if kind == "greedy":
        tuner = launch_falcon(
            ctx,
            tb,
            dataset=dataset,
            name="greedy",
            start_time=falcon_join,
            optimizer=GradientDescent(hi=64),
            utility=ThroughputUtility(),
        )
    else:
        tuner = launch_falcon(
            ctx, tb, kind=kind, dataset=dataset, name=f"falcon-{kind}", start_time=falcon_join, hi=64
        )
    end = falcon_join + settle
    ctx.engine.run_for(end)

    before = window_mean_bps(globus.trace, falcon_join - 40, falcon_join) + window_mean_bps(
        harp.trace, falcon_join - 40, falcon_join
    )
    after = window_mean_bps(globus.trace, end - 60, end) + window_mean_bps(
        harp.trace, end - 60, end
    )
    w = tuner.trace.window(end - 60, end)
    all_cc = tuner.controller.concurrencies()
    return FriendlinessRun(
        algorithm=kind.upper(),
        baseline_before_bps=before,
        baseline_after_bps=after,
        tuner_bps=w.mean_throughput(),
        tuner_concurrency=float(np.mean(w.concurrencies())) if w.times else 0.0,
        tuner_peak_concurrency=int(all_cc.max()) if all_cc.size else 0,
    )


def run(seed: int = 0, falcon_join: float = 120.0, settle: float = 420.0) -> Fig16Result:
    """Run the Globus→HARP→tuner timeline for GD, BO, and greedy."""
    gd, bo, greedy = run_tasks(
        [
            task(friendliness_run, kind=kind, seed=seed, falcon_join=falcon_join,
                 settle=settle, label=f"fig16 {kind}")
            for kind in ("gd", "bo", "greedy")
        ]
    )
    return Fig16Result(gd=gd, bo=bo, greedy=greedy)


def main() -> None:
    """Print the comparison."""
    print(run().render())


if __name__ == "__main__":
    main()
