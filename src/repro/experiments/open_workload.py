"""Open workload: Poisson multi-tenant traffic through the control plane.

Everything else in this repo submits a fixed batch of jobs; real
transfer services face an *open* arrival process — jobs keep coming
whether or not the system keeps up.  This experiment (beyond the
paper; the regime of the hybrid-RL elastic-transfer line of work in
PAPERS.md) drives the :class:`~repro.service.control.ControlPlane`
with Poisson arrivals from four synthetic tenants and heavy-tailed
job sizes, across three legs:

* **nominal** — offered load ~= achievable capacity (``rho=1``);
* **overload-2x** — twice capacity: the interesting regime, where the
  bounded queue, degradation mode, and priority shedding define
  behavior instead of an unbounded backlog;
* **flaky-network** — nominal load under the PR 3 ``flaky-network``
  chaos preset (link outages + loss bursts) with retries enabled;
* **sharded-4x** — 10.5x the arrival rate (100k+ jobs/sim-hour at
  the default 10k/h base) spread across four independent data-plane
  shards by a :class:`~repro.service.sharding.ShardedControlPlane`
  (least-loaded placement), reporting per-shard utilization skew
  alongside the usual tenant table.

Tenant mix (arrival share / weight / class / quota):

====       =====  ======  ===========  ======================
tenant     share  weight  class        quota
====       =====  ======  ===========  ======================
gold       0.2    3       HIGH         unlimited
silver     0.3    2       NORMAL       unlimited
bronze     0.3    1       NORMAL       unlimited
scavenger  0.2    1       BEST_EFFORT  0.5 jobs/s, burst 4
====       =====  ======  ===========  ======================

Reported per tenant and leg: completion counts, shed counts by typed
reason, p50/p99 job *slowdown* (sojourn time over ideal lone-job
service time), and the leg's Jain fairness index over weight-normalised
goodput.  Every draw comes from named :class:`~repro.sim.rng.RngStreams`
streams, so same-seed reruns are byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.fairness import jain_index
from repro.analysis.tables import format_table
from repro.experiments.common import make_context
from repro.faults import ChaosRng, FaultInjector, chaos_plan
from repro.runner import run_tasks, task
from repro.service import (
    ControlPlane,
    ControlPolicy,
    FalconService,
    JobState,
    Priority,
    RetryPolicy,
    ShardedControlPlane,
    TenantSpec,
    make_shards,
)
from repro.sim.rng import RngStreams
from repro.testbeds.presets import hpclab
from repro.transfer.dataset import Dataset
from repro.units import format_size

#: (name, arrival share, weight, priority, quota jobs/s, quota burst).
TENANTS: tuple[tuple[str, float, float, Priority, float, int], ...] = (
    ("gold", 0.2, 3.0, Priority.HIGH, math.inf, 8),
    ("silver", 0.3, 2.0, Priority.NORMAL, math.inf, 8),
    ("bronze", 0.3, 1.0, Priority.NORMAL, math.inf, 8),
    ("scavenger", 0.2, 1.0, Priority.BEST_EFFORT, 0.5, 4),
)

#: (leg name, load multiple of achievable capacity, chaos preset or "").
LEGS: tuple[tuple[str, float, str], ...] = (
    ("nominal", 1.0, ""),
    ("overload-2x", 2.0, ""),
    ("flaky-network", 1.0, "flaky-network"),
)

#: The sharded leg: (name, shard count, arrival-rate multiple of the
#: base ``rate_per_hour``).  10.5x the 10k/h default targets ~105k
#: jobs/sim-hour across four shards — 5% headroom so the realized
#: Poisson draw stays above the 100k/sim-hour floor; offered bytes
#: scale to rho=1 per shard.
SHARD_LEG: tuple[str, int, float] = ("sharded-4x", 4, 10.5)


@dataclass(frozen=True)
class TenantStats:
    """One tenant's outcome in one leg."""

    tenant: str
    priority: str
    submitted: int
    completed: int
    unfinished: int
    shed_quota: int
    shed_queue_full: int
    shed_degraded: int
    shed_breaker: int
    bytes_moved: float
    preemptions: int
    p50_slowdown: float
    p99_slowdown: float

    @property
    def shed_total(self) -> int:
        """All rejections for this tenant (count)."""
        return self.shed_quota + self.shed_queue_full + self.shed_degraded + self.shed_breaker


@dataclass(frozen=True)
class ShardStats:
    """One data-plane shard's outcome in the sharded leg."""

    shard: str
    routed: int
    completed: int
    bytes_moved: float
    utilization: float


@dataclass(frozen=True)
class OpenWorkloadRun:
    """One leg of the open workload.

    ``shards``/``skew`` are only populated by the sharded leg; the
    defaults keep the original single-engine legs byte-identical.
    ``skew`` is the relative spread of per-shard utilization,
    ``(max - min) / mean`` — 0 means perfectly even placement.
    """

    leg: str
    rho: float
    preset: str
    jobs_submitted: int
    jobs_completed: int
    jobs_shed: int
    jain_fairness: float
    tenants: tuple[TenantStats, ...]
    shards: tuple[ShardStats, ...] = ()
    skew: float = 0.0

    def render(self) -> str:
        """Per-tenant (and, when sharded, per-shard) table for this leg."""
        header = (
            f"[{self.leg}] rho={self.rho:g} preset={self.preset or 'none'} "
            f"submitted={self.jobs_submitted} completed={self.jobs_completed} "
            f"shed={self.jobs_shed} jain={self.jain_fairness:.4f}"
        )
        body = format_table(
            ["Tenant", "Class", "Jobs", "Done", "Shed(q/f/d/b)", "Moved", "Preempt", "p50 slow", "p99 slow"],
            [
                (
                    t.tenant,
                    t.priority,
                    t.submitted,
                    t.completed,
                    f"{t.shed_quota}/{t.shed_queue_full}/{t.shed_degraded}/{t.shed_breaker}",
                    format_size(t.bytes_moved),
                    t.preemptions,
                    f"{t.p50_slowdown:.2f}",
                    f"{t.p99_slowdown:.2f}",
                )
                for t in self.tenants
            ],
        )
        out = header + "\n" + body
        if self.shards:
            shard_body = format_table(
                ["Shard", "Routed", "Done", "Moved", "Util"],
                [
                    (s.shard, s.routed, s.completed, format_size(s.bytes_moved), f"{s.utilization:.3f}")
                    for s in self.shards
                ],
            )
            out += f"\nper-shard (skew={self.skew:.3f}):\n" + shard_body
        return out


@dataclass(frozen=True)
class OpenWorkloadResult:
    """All legs, same seed."""

    runs: tuple[OpenWorkloadRun, ...]

    def render(self) -> str:
        """All leg tables, separated by blank lines."""
        return "\n\n".join(r.render() for r in self.runs)


def _percentile(values: list, q: float) -> float:
    """Nearest-rank percentile of ``values`` (0 for an empty list)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return float(ordered[rank - 1])


def _arrival_plan(
    streams: RngStreams, rate_per_hour: float, horizon: float
) -> tuple[list[tuple[float, int, str, int]], dict, dict]:
    """Poisson arrivals with heavy-tailed size factors, all tenants.

    Returns ``(arrivals, factors, file_counts)`` where arrivals are
    ``(time, seq, tenant, idx)`` sorted by time and sizes are relative
    log-uniform factors spanning ~400x (scaled to bytes by the caller).
    One named stream per tenant keeps the plan byte-stable across legs.
    """
    arrivals: list[tuple[float, int, str, int]] = []
    factors: dict[tuple[str, int], float] = {}
    file_counts: dict[tuple[str, int], int] = {}
    seq = 0
    for name, share, _w, _p, _qr, _qb in TENANTS:
        lam = share * rate_per_hour / 3600.0
        rng = streams.get(f"workload/arrivals/{name}")
        t = float(rng.exponential(1.0 / lam))
        i = 0
        while t < horizon:
            arrivals.append((t, seq, name, i))
            u = float(rng.random())
            factors[(name, i)] = 0.05 * (20.0 / 0.05) ** u
            file_counts[(name, i)] = 1 + int(rng.integers(0, 4))
            seq += 1
            i += 1
            t += float(rng.exponential(1.0 / lam))
    arrivals.sort()
    return arrivals, factors, file_counts


def _tenant_summary(
    jobs: dict[str, list], ideal_bps: float
) -> tuple[list[TenantStats], list[float]]:
    """Fold per-tenant job lists into stats + weight-normalised goodput."""
    stats: list[TenantStats] = []
    goodput: list[float] = []
    for name, _share, weight, priority, _qr, _qb in TENANTS:
        tenant_jobs = jobs[name]
        shed = {"quota": 0, "queue-full": 0, "degraded": 0, "breaker-open": 0}
        slowdowns: list[float] = []
        completed = 0
        unfinished = 0
        moved = 0.0
        preemptions = 0
        for job in tenant_jobs:
            preemptions += job.preemptions
            if job.state is JobState.REJECTED:
                shed[job.rejection_reason] += 1
            elif job.state is JobState.COMPLETED:
                completed += 1
                moved += job.report.bytes_moved
                ideal = max(job.dataset.total_bytes * 8.0 / ideal_bps, 1e-9)
                slowdowns.append((job.finished_at - job.submitted_at) / ideal)
            elif job.state.is_terminal:
                if job.report is not None:
                    moved += job.report.bytes_moved
            else:
                unfinished += 1
        stats.append(
            TenantStats(
                tenant=name,
                priority=priority.label,
                submitted=len(tenant_jobs),
                completed=completed,
                unfinished=unfinished,
                shed_quota=shed["quota"],
                shed_queue_full=shed["queue-full"],
                shed_degraded=shed["degraded"],
                shed_breaker=shed["breaker-open"],
                bytes_moved=moved,
                preemptions=preemptions,
                p50_slowdown=_percentile(slowdowns, 50.0),
                p99_slowdown=_percentile(slowdowns, 99.0),
            )
        )
        goodput.append(moved / weight)
    return stats, goodput


def workload_run(
    leg: str,
    seed: int,
    horizon: float,
    rate_per_hour: float,
    rho: float,
    preset: str,
    max_active: int,
) -> OpenWorkloadRun:
    """Task unit: one leg of the open workload.

    ``horizon`` bounds the arrival window in simulated seconds; the
    run then drains (no new arrivals) for up to three more horizons so
    queued work gets its chance to finish.  ``rho`` scales total
    offered bytes to that multiple of the testbed's achievable
    capacity over the window.
    """
    ctx = make_context(seed)
    tb = hpclab()
    service = FalconService(
        engine=ctx.engine,
        network=ctx.network,
        max_active=max_active,
        seed=seed,
        fault_policy=RetryPolicy(),
    )
    plane = ControlPlane(service, ControlPolicy(max_queue=32))
    for name, _share, weight, priority, quota_rate, quota_burst in TENANTS:
        plane.register_tenant(
            TenantSpec(
                name,
                weight=weight,
                quota_rate=quota_rate,
                quota_burst=quota_burst,
                priority=priority,
            )
        )

    # -- arrival process: Poisson per tenant, heavy-tailed sizes ------------
    # Sizes are drawn as log-uniform relative factors spanning ~400x,
    # then scaled so the leg's total offered bytes equal
    # rho * achievable-capacity * horizon.
    arrivals, factors, file_counts = _arrival_plan(ctx.streams, rate_per_hour, horizon)
    total_factor = sum(factors.values())
    capacity_bytes = tb.max_throughput() / 8.0 * horizon
    scale = rho * capacity_bytes / total_factor if total_factor > 0.0 else 0.0

    jobs: dict[str, list] = {name: [] for name, *_ in TENANTS}

    def make_submit(when: float, tenant: str, idx: int):
        total = factors[(tenant, idx)] * scale
        files = file_counts[(tenant, idx)]
        sizes = [total / files] * files

        def arrive() -> None:
            dataset = Dataset(sizes, name=f"{tenant}-{idx}")
            job = plane.submit(tb, dataset, tenant, name=f"{tenant}-{idx}")
            jobs[tenant].append(job)

        ctx.engine.schedule_at(when, arrive, name=f"arrive:{tenant}-{idx}")

    for when, _seq, tenant, idx in arrivals:
        make_submit(when, tenant, idx)

    if preset:
        plan = chaos_plan(preset, horizon=horizon, rng=ChaosRng(ctx.streams))
        FaultInjector(
            ctx.engine,
            ctx.network,
            plan,
            streams=ctx.streams,
            service=service,
            recorder=ctx.recorder,
        ).arm()
    ctx.engine.run_until(horizon)
    # Drain: no new arrivals; give queued work up to 3 more horizons.
    deadline = 4.0 * horizon
    while ctx.engine.now < deadline and (plane.depth > 0 or service.running()):
        ctx.engine.run_until(min(deadline, ctx.engine.now + 0.25 * horizon))

    # -- summarize ----------------------------------------------------------
    stats, goodput = _tenant_summary(jobs, tb.max_throughput())
    return OpenWorkloadRun(
        leg=leg,
        rho=rho,
        preset=preset,
        jobs_submitted=sum(s.submitted for s in stats),
        jobs_completed=sum(s.completed for s in stats),
        jobs_shed=sum(s.shed_total for s in stats),
        jain_fairness=jain_index(np.array(goodput)),
        tenants=tuple(stats),
    )


def sharded_run(
    leg: str,
    seed: int,
    horizon: float,
    rate_per_hour: float,
    n_shards: int,
    max_active: int,
) -> OpenWorkloadRun:
    """Task unit: the sharded leg — N data planes behind one router.

    Offered bytes scale to rho=1 *per shard* (the fleet's aggregate
    capacity), so a well-balanced router keeps every shard near its
    single-engine operating point while the plane as a whole absorbs
    N times the single-engine arrival rate.  Utilization is each
    shard's moved bytes over what one engine could move in the run's
    wall span; skew is the relative spread of those utilizations.
    """
    streams = RngStreams(seed)
    shards = make_shards(
        n_shards, seed=seed, max_active=max_active, fault_policy=RetryPolicy()
    )
    plane = ShardedControlPlane(
        shards, ControlPolicy(max_queue=32), placement="least_loaded"
    )
    for name, _share, weight, priority, quota_rate, quota_burst in TENANTS:
        plane.register_tenant(
            TenantSpec(
                name,
                weight=weight,
                quota_rate=quota_rate,
                quota_burst=quota_burst,
                priority=priority,
            )
        )

    arrivals, factors, file_counts = _arrival_plan(streams, rate_per_hour, horizon)
    total_factor = sum(factors.values())
    proto = hpclab()
    capacity_bytes = proto.max_throughput() / 8.0 * horizon * n_shards
    scale = capacity_bytes / total_factor if total_factor > 0.0 else 0.0

    # Shards own their engines, so arrivals are driven directly: advance
    # the whole fleet to each arrival instant, then submit through the
    # router.  Same clock discipline as schedule_at, without requiring a
    # single shared engine.
    jobs: dict[str, list] = {name: [] for name, *_ in TENANTS}
    for when, _seq, tenant, idx in arrivals:
        plane.run_until(when)
        total = factors[(tenant, idx)] * scale
        files = file_counts[(tenant, idx)]
        dataset = Dataset([total / files] * files, name=f"{tenant}-{idx}")
        jobs[tenant].append(plane.submit(hpclab, dataset, tenant, name=f"{tenant}-{idx}"))
    plane.run_until(horizon)
    plane.drain(4.0 * horizon, 0.25 * horizon)

    stats, goodput = _tenant_summary(jobs, proto.max_throughput())
    shard_capacity = proto.max_throughput() / 8.0 * plane.now
    per_shard: list[ShardStats] = []
    utils: list[float] = []
    for shard in shards:
        moved = sum(
            j.report.bytes_moved for j in shard.service.jobs if j.report is not None
        )
        done = sum(1 for j in shard.service.jobs if j.state is JobState.COMPLETED)
        util = moved / shard_capacity if shard_capacity > 0.0 else 0.0
        utils.append(util)
        per_shard.append(
            ShardStats(
                shard=shard.name,
                routed=len(shard.service.jobs),
                completed=done,
                bytes_moved=moved,
                utilization=util,
            )
        )
    mean_util = sum(utils) / len(utils) if utils else 0.0
    skew = (max(utils) - min(utils)) / mean_util if mean_util > 0.0 else 0.0
    return OpenWorkloadRun(
        leg=leg,
        rho=1.0,
        preset="",
        jobs_submitted=sum(s.submitted for s in stats),
        jobs_completed=sum(s.completed for s in stats),
        jobs_shed=sum(s.shed_total for s in stats),
        jain_fairness=jain_index(np.array(goodput)),
        tenants=tuple(stats),
        shards=tuple(per_shard),
        skew=skew,
    )


def run(
    seed: int = 0,
    horizon: float = 360.0,
    rate_per_hour: float = 10000.0,
    max_active: int = 8,
) -> OpenWorkloadResult:
    """Three single-engine legs at ``rate_per_hour``, plus the sharded leg.

    The sharded leg multiplies the base rate by ``SHARD_LEG``'s factor
    (100k+ jobs/sim-hour at defaults) and spreads it over its shard
    count, so it scales with the same two knobs the other legs use.
    """
    shard_name, n_shards, rate_mult = SHARD_LEG
    tasks = [
        task(
            workload_run,
            leg=leg,
            seed=seed,
            horizon=horizon,
            rate_per_hour=rate_per_hour,
            rho=rho,
            preset=preset,
            max_active=max_active,
            label=leg,
        )
        for leg, rho, preset in LEGS
    ]
    tasks.append(
        task(
            sharded_run,
            leg=shard_name,
            seed=seed,
            horizon=horizon,
            rate_per_hour=rate_per_hour * rate_mult,
            n_shards=n_shards,
            max_active=max_active,
            label=shard_name,
        )
    )
    results = run_tasks(tasks)
    return OpenWorkloadResult(runs=tuple(results))


def main() -> None:
    """Print the per-leg tenant tables."""
    result = run()
    print(result.render())


if __name__ == "__main__":
    main()
