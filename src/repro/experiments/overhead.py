"""System-overhead accounting (the paper's "minimal overhead" claim).

The paper's §2 argues that unnecessary concurrency costs real resources
— processes, retransmitted bytes, congestion — even when throughput
looks unchanged (motivating the energy-aware-transfer citation [7]).
This experiment makes that claim quantitative: Falcon-GD, a
throughput-greedy tuner, and a heavily over-provisioned fixed setting
move the *same* number of bytes on the lossy Emulab bottleneck; we
account

* process-seconds consumed (host CPU/memory footprint, counting each
  worker as one process on *both* end hosts),
* retransmitted bytes (network waste),
* goodput achieved,

and derive bytes-per-process-second — the efficiency figure a utility
with concurrency regret is designed to maximise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.gradient_descent import GradientDescent
from repro.core.utility import ThroughputUtility
from repro.experiments.common import launch_falcon, make_context
from repro.runner import run_tasks, task
from repro.testbeds.presets import emulab_fig4
from repro.transfer.dataset import uniform_dataset
from repro.transfer.session import TransferParams
from repro.units import MB, bps_to_mbps, format_size


@dataclass(frozen=True)
class OverheadRun:
    """Resource accounting for one tuner over a fixed horizon."""

    name: str
    goodput_bytes: float
    lost_bytes: float
    #: Worker-process lifetime, both end hosts (a transfer at
    #: concurrency n consumes 2n process-seconds per second).
    process_seconds: float
    mean_throughput_bps: float

    @property
    def loss_overhead(self) -> float:
        """Retransmitted fraction of all sent bytes."""
        sent = self.goodput_bytes + self.lost_bytes
        return self.lost_bytes / sent if sent > 0 else 0.0

    @property
    def bytes_per_process_second(self) -> float:
        """Delivery efficiency per unit of host resource."""
        if self.process_seconds <= 0:
            return 0.0
        return self.goodput_bytes / self.process_seconds


@dataclass(frozen=True)
class OverheadResult:
    """All tuners, same testbed and horizon."""

    runs: dict[str, OverheadRun]

    def render(self) -> str:
        """Accounting table."""
        return format_table(
            ["Tuner", "Goodput", "Tput (Mbps)", "Lost", "Proc-sec", "MB/proc-sec"],
            [
                (
                    r.name,
                    format_size(r.goodput_bytes),
                    f"{bps_to_mbps(r.mean_throughput_bps):.0f}",
                    f"{r.loss_overhead:.2%}",
                    f"{r.process_seconds:.0f}",
                    f"{r.bytes_per_process_second / MB:.2f}",
                )
                for r in self.runs.values()
            ],
        )


ARMS = ("falcon-gd", "greedy", "fixed-32")


def overhead_run(arm: str, seed: int, duration: float) -> OverheadRun:
    """Task unit: one tuner's resource accounting over the horizon."""
    ctx = make_context(seed)
    tb = emulab_fig4()
    if arm == "fixed-32":
        session = tb.new_session(
            uniform_dataset(200, 100 * MB),
            name=arm,
            repeat=True,
            params=TransferParams(concurrency=32),
        )
        ctx.network.add_session(session)
    elif arm == "greedy":
        session = launch_falcon(
            ctx,
            tb,
            name=arm,
            optimizer=GradientDescent(lo=1, hi=40),
            utility=ThroughputUtility(),
        ).session
    else:
        session = launch_falcon(ctx, tb, kind="gd", hi=40, name=arm).session
    ctx.engine.run_for(duration)
    return OverheadRun(
        name=arm,
        goodput_bytes=session.total_good_bytes,
        lost_bytes=session.total_lost_bytes,
        process_seconds=session.process_seconds,
        mean_throughput_bps=session.total_good_bytes * 8.0 / duration,
    )


def run(seed: int = 0, duration: float = 400.0) -> OverheadResult:
    """Falcon vs greedy vs fixed-32 on the Fig. 4 Emulab bottleneck."""
    results = run_tasks(
        [task(overhead_run, arm=arm, seed=seed, duration=duration, label=arm) for arm in ARMS]
    )
    return OverheadResult(runs=dict(zip(ARMS, results)))


def main() -> None:
    """Print the accounting table."""
    print(run().render())


if __name__ == "__main__":
    main()
