"""Related-work comparison (§5): every adaptive tuner on one problem.

Beyond the paper's own figures: line up Falcon's GD/BO against the
related-work tuners the paper discusses — PCP's hill climbing,
GridFTP-APT's golden-section search, ProbData's stochastic
approximation — on the 48-optimum Emulab scenario, measuring
convergence speed, steady throughput, steady concurrency (overhead),
and loss.  The columns quantify §5's qualitative dismissals:

* GSS converges fast but freezes and, with a throughput-only
  objective, parks at needlessly high concurrency;
* SA's decaying gains crawl ("takes several hours to converge");
* HC is simply slow;
* Falcon's GD/BO converge fast *and* hold just-enough concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.convergence import time_to_fraction_of_max
from repro.analysis.tables import format_table
from repro.baselines.golden_section import GoldenSectionSearch
from repro.baselines.stochastic_approx import StochasticApproximation
from repro.core.hill_climbing import HillClimbing
from repro.core.utility import NonlinearPenaltyUtility, ThroughputUtility
from repro.experiments.common import launch_falcon, make_context
from repro.runner import run_tasks, task
from repro.testbeds.presets import emulab_high_optimal
from repro.units import bps_to_mbps


@dataclass(frozen=True)
class TunerRun:
    """One tuner's outcome on the 48-optimum scenario."""

    name: str
    time_to_85pct: float
    steady_throughput_bps: float
    steady_concurrency: float
    steady_loss: float


@dataclass(frozen=True)
class RelatedWorkResult:
    """All tuners, same testbed, same horizon."""

    runs: dict[str, TunerRun]

    def render(self) -> str:
        """Comparison table."""
        return format_table(
            ["Tuner", "t(85%)", "Steady (Mbps)", "Steady n", "Loss"],
            [
                (
                    r.name,
                    f"{r.time_to_85pct:.0f}s",
                    f"{bps_to_mbps(r.steady_throughput_bps):.0f}",
                    f"{r.steady_concurrency:.0f}",
                    f"{r.steady_loss:.2%}",
                )
                for r in self.runs.values()
            ],
        )


def _tuner_setup(name: str):
    """(optimizer, kind, utility) for one named tuner."""
    falcon_u = NonlinearPenaltyUtility()
    throughput_u = ThroughputUtility()
    return {
        "falcon-gd": (None, "gd", falcon_u),
        "falcon-bo": (None, "bo", falcon_u),
        "pcp (HC)": (HillClimbing(lo=1, hi=64), None, throughput_u),
        "gridftp-apt (GSS)": (GoldenSectionSearch(lo=1, hi=64), None, throughput_u),
        "probdata (SA)": (StochasticApproximation(lo=1, hi=64), None, throughput_u),
    }[name]


TUNERS = ("falcon-gd", "falcon-bo", "pcp (HC)", "gridftp-apt (GSS)", "probdata (SA)")


def tuner_run(tuner: str, seed: int, duration: float) -> TunerRun:
    """Task unit: one named tuner alone on the 48-optimum Emulab."""
    optimizer, kind, utility = _tuner_setup(tuner)
    ctx = make_context(seed)
    launched = launch_falcon(
        ctx,
        emulab_high_optimal(),
        kind=kind or "gd",
        hi=64,
        optimizer=optimizer,
        utility=utility,
        name=tuner.split()[0],
    )
    ctx.engine.run_for(duration)
    agent = launched.controller
    tp = agent.throughputs()
    cc = agent.concurrencies()
    losses = np.array([r.loss_rate for r in agent.history])
    tail = slice(int(len(tp) * 0.75), None)
    return TunerRun(
        name=tuner,
        time_to_85pct=time_to_fraction_of_max(agent.times(), tp, 0.85),
        steady_throughput_bps=float(np.mean(tp[tail])),
        steady_concurrency=float(np.mean(cc[tail])),
        steady_loss=float(np.mean(losses[tail])),
    )


def run(seed: int = 0, duration: float = 500.0) -> RelatedWorkResult:
    """Each tuner alone on the 48-optimum Emulab."""
    results = run_tasks(
        [
            task(tuner_run, tuner=name, seed=seed, duration=duration, label=name)
            for name in TUNERS
        ]
    )
    return RelatedWorkResult(runs=dict(zip(TUNERS, results)))


def main() -> None:
    """Print the comparison."""
    print(run().render())


if __name__ == "__main__":
    main()
