"""Robustness under dynamic background traffic (beyond the paper).

The paper motivates online optimization with changing background
traffic but evaluates only agent-vs-agent dynamics.  This experiment
closes the loop: Falcon (GD and BO) against an ON/OFF cross-traffic
load on the Emulab bottleneck, measuring

* throughput during ON vs OFF phases (does Falcon yield and reclaim?),
* concurrency tracking (does the tuner actually move?),
* a static-setting strawman for contrast (fixed n = optimum-when-alone
  keeps hammering the congested link during ON phases, buying loss
  instead of yielding).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments.common import launch_falcon, make_context, window_mean_bps
from repro.runner import run_tasks, task
from repro.testbeds.presets import emulab
from repro.transfer.background import OnOffTraffic
from repro.transfer.dataset import uniform_dataset
from repro.transfer.session import TransferParams
from repro.units import Mbps, bps_to_mbps


@dataclass(frozen=True)
class RobustnessRun:
    """One tuner's behaviour across background ON/OFF phases."""

    name: str
    on_throughput_bps: float
    off_throughput_bps: float
    on_concurrency: float
    off_concurrency: float
    on_loss: float

    @property
    def reclaim_ratio(self) -> float:
        """OFF-phase throughput relative to ON-phase (adaptation gain)."""
        if self.on_throughput_bps <= 0:
            return float("inf")
        return self.off_throughput_bps / self.on_throughput_bps


@dataclass(frozen=True)
class RobustnessResult:
    """GD, BO, and the static strawman under the same traffic pattern."""

    runs: dict[str, RobustnessRun]

    def render(self) -> str:
        """Comparison table."""
        return format_table(
            ["Tuner", "ON tput", "OFF tput", "ON n", "OFF n", "ON loss"],
            [
                (
                    r.name,
                    f"{bps_to_mbps(r.on_throughput_bps):.0f} Mbps",
                    f"{bps_to_mbps(r.off_throughput_bps):.0f} Mbps",
                    f"{r.on_concurrency:.0f}",
                    f"{r.off_concurrency:.0f}",
                    f"{r.on_loss:.2%}",
                )
                for r in self.runs.values()
            ],
        )


def _phase_windows(cycle: float, phases: int, duration: float):
    """(on_windows, off_windows): last 40% of each phase, settled."""
    on_windows, off_windows = [], []
    t = cycle  # the background starts at t=cycle (first OFF->ON switch)
    while t + cycle <= duration:
        on_windows.append((t + 0.6 * cycle, t + cycle))
        if t + 2 * cycle <= duration:
            off_windows.append((t + 1.6 * cycle, t + 2 * cycle))
        t += 2 * cycle
    return on_windows, off_windows


ARMS = {"falcon-gd": "gd", "falcon-bo": "bo", "static-20": None}


def arm_run(arm: str, seed: int, cycle: float, cycles: int) -> RobustnessRun:
    """Task unit: one tuner (or the static strawman) vs ON/OFF traffic."""
    kind = ARMS[arm]
    duration = (2 * cycles + 1) * cycle
    ctx = make_context(seed)
    tb = emulab(link_bps=200 * Mbps, per_process_bps=10 * Mbps)
    if kind is None:
        session = tb.new_session(
            uniform_dataset(200),
            name=arm,
            repeat=True,
            params=TransferParams(concurrency=20),  # optimum when alone
        )
        trace = ctx.recorder.watch(session)
        ctx.network.add_session(session)
    else:
        trace = launch_falcon(ctx, tb, kind=kind, hi=40, name=arm).trace

    background = OnOffTraffic(
        engine=ctx.engine,
        network=ctx.network,
        testbed=tb,
        concurrency=10,
        on_time=cycle,
        off_time=cycle,
    )
    background.start(initial_delay=cycle)
    ctx.engine.run_for(duration)

    on_w, off_w = _phase_windows(cycle, cycles, duration)
    on_tput = float(np.mean([window_mean_bps(trace, *w) for w in on_w]))
    off_tput = float(np.mean([window_mean_bps(trace, *w) for w in off_w]))

    def window_stat(windows, series_fn):
        vals = []
        for t0, t1 in windows:
            w = trace.window(t0, t1)
            if w.times:
                vals.append(float(np.mean(series_fn(w))))
        return float(np.mean(vals)) if vals else 0.0

    return RobustnessRun(
        name=arm,
        on_throughput_bps=on_tput,
        off_throughput_bps=off_tput,
        on_concurrency=window_stat(on_w, lambda w: w.concurrencies()),
        off_concurrency=window_stat(off_w, lambda w: w.concurrencies()),
        on_loss=window_stat(on_w, lambda w: w.losses()),
    )


def run(seed: int = 0, cycle: float = 120.0, cycles: int = 3) -> RobustnessResult:
    """Falcon GD/BO and a static setting vs ON/OFF cross-traffic."""
    results = run_tasks(
        [
            task(arm_run, arm=arm, seed=seed, cycle=cycle, cycles=cycles, label=arm)
            for arm in ARMS
        ]
    )
    return RobustnessResult(runs=dict(zip(ARMS, results)))


def main() -> None:
    """Print the comparison."""
    print(run().render())


if __name__ == "__main__":
    main()
