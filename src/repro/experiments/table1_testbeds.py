"""Table 1 — specifications of the test environments.

Regenerates the paper's testbed table from the presets, adding the
analytic columns the simulator derives (optimal concurrency, achievable
throughput) that every other experiment is judged against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.testbeds.presets import TABLE1
from repro.units import bps_to_gbps, format_rate, seconds_to_ms


@dataclass(frozen=True)
class TestbedRow:
    """One row of the regenerated Table 1."""

    name: str
    storage: str
    bandwidth_bps: float
    rtt: float
    bottleneck: str
    optimal_concurrency: int
    max_throughput_bps: float


@dataclass(frozen=True)
class Table1Result:
    """All rows plus the rendered table."""

    rows: list[TestbedRow]

    def render(self) -> str:
        """Text form of the table."""
        return format_table(
            ["Testbed", "Storage", "Bandwidth", "RTT", "Bottleneck", "n*", "Max tput"],
            [
                (
                    r.name,
                    r.storage,
                    format_rate(r.bandwidth_bps, 0),
                    f"{seconds_to_ms(r.rtt):g}ms",
                    r.bottleneck,
                    r.optimal_concurrency,
                    f"{bps_to_gbps(r.max_throughput_bps):.2f} Gbps",
                )
                for r in self.rows
            ],
        )


#: Paper's Table 1 for comparison: (name, storage, bandwidth label, rtt ms, bottleneck)
PAPER_TABLE1 = [
    ("Emulab", "RAID-0 SSD", "1G", 30.0, "Network"),
    ("XSEDE", "Lustre", "10G", 40.0, "Disk Read"),
    ("HPCLab", "NVMe SSD", "40G", 0.1, "Disk Write"),
    ("Campus Cluster", "GPFS", "10G", 0.1, "NIC"),
]


def run() -> Table1Result:
    """Build the table from live presets."""
    rows = []
    for tb in TABLE1():
        rows.append(
            TestbedRow(
                name=tb.name,
                storage=tb.source.storage.name,
                bandwidth_bps=tb.path.capacity,
                rtt=tb.path.rtt,
                bottleneck=tb.bottleneck,
                optimal_concurrency=tb.optimal_concurrency(),
                max_throughput_bps=tb.max_throughput(),
            )
        )
    return Table1Result(rows=rows)


def main() -> None:
    """Print the regenerated table."""
    print(run().render())


if __name__ == "__main__":
    main()
