"""Deterministic fault injection (beyond the paper).

The paper's evaluation assumes a healthy substrate; production transfer
services spend much of their code on the opposite case.  This package
adds a *seeded, declarative* fault layer over the simulator:

* :mod:`repro.faults.plan` — frozen fault-event dataclasses and the
  :class:`FaultPlan` that groups them;
* :mod:`repro.faults.presets` — named chaos profiles that expand into
  plans deterministically from a :class:`ChaosRng`;
* :mod:`repro.faults.injector` — compiles a plan into engine callbacks
  that flip link/storage/worker state at the scheduled times;
* :mod:`repro.faults.rng` — the dedicated random stream faults draw
  from, so injecting a fault never perturbs measurement jitter or
  optimizer sampling sequences.

Everything here is deterministic: the same seed, plan, and workload
produce bit-identical traces, which is what makes chaos testing usable
in CI.
"""

from repro.faults.injector import FaultInjector, FaultRecord
from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    JobCrash,
    LinkOutage,
    LossBurst,
    StorageBrownout,
    TransferStall,
    WorkerCrash,
)
from repro.faults.presets import CHAOS_PRESETS, ChaosProfile, chaos_plan
from repro.faults.rng import ChaosRng

__all__ = [
    "CHAOS_PRESETS",
    "ChaosProfile",
    "ChaosRng",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "JobCrash",
    "LinkOutage",
    "LossBurst",
    "StorageBrownout",
    "TransferStall",
    "WorkerCrash",
    "chaos_plan",
]
