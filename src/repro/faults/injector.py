"""Compiling fault plans into simulation-engine callbacks.

The :class:`FaultInjector` owns the mutation side of fault injection:
at each event's timestamp it flips the targeted object's fault state
(link availability, storage rates, worker arrays, job lifecycle) and
schedules the matching recovery.  It is careful about three simulator
invariants:

* **topology cache** — outages and brownouts change allocation inputs
  that the executor caches, so every such transition calls
  ``network.invalidate_topology()``; loss bursts change only link loss
  state, so they bump the executor's epoch-keyed equilibrium cache via
  ``network.note_link_fault()`` instead;
* **sample validity** — an outage makes throughput samples meaningless,
  so the monitors of affected sessions are tainted for the outage
  window (plus the straddling interval) and the agent skips them;
* **determinism** — target picks draw only from the dedicated chaos
  stream, and a fault that finds no target logs a skip instead of
  consuming extra draws elsewhere.

Every action and recovery is appended to :attr:`FaultInjector.log` (and
mirrored to a trace recorder when one is attached), giving experiments
and tests a ground-truth record of what was injected when.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.faults.plan import (
    FaultPlan,
    JobCrash,
    LinkOutage,
    LossBurst,
    StorageBrownout,
    TransferStall,
    WorkerCrash,
)
from repro.faults.rng import ChaosRng
from repro.network.link import Link
from repro.obs.events import FaultInjected, FaultRecovered, FaultSkipped
from repro.obs.tracer import current_tracer
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngStreams
from repro.transfer.executor import FluidTransferNetwork
from repro.transfer.session import TransferSession

if TYPE_CHECKING:
    from repro.analysis.trace import TraceRecorder
    from repro.hosts.dtn import DataTransferNode
    from repro.service.service import FalconService


@dataclass(frozen=True)
class FaultRecord:
    """One injected action (or recovery, or skip) for the audit log."""

    time: float
    kind: str
    target: str
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tail = f" ({self.detail})" if self.detail else ""
        return f"[{self.time:8.2f}s] {self.kind}: {self.target}{tail}"


class FaultInjector:
    """Schedules a :class:`FaultPlan` onto a simulation.

    Parameters
    ----------
    engine, network:
        The simulation substrate faults act on.
    plan:
        What to inject and when.
    streams:
        Stream family the chaos stream is carved from; defaults to a
        fresh seed-0 family (fine for tests, but experiments should
        pass their own so the whole run shares one root seed).
    service:
        Required only for :class:`~repro.faults.plan.JobCrash` events.
    recorder:
        Optional trace recorder; fault records are mirrored into its
        annotation channel for plotting alongside throughput traces.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        network: FluidTransferNetwork,
        plan: FaultPlan,
        streams: RngStreams | None = None,
        service: Optional["FalconService"] = None,
        recorder: Optional["TraceRecorder"] = None,
    ) -> None:
        self.engine = engine
        self.network = network
        self.plan = plan
        self.service = service
        self.recorder = recorder
        # repro: lint-ok[F011]: seed-0 fallback for standalone use; real runs
        # pass the experiment's RngStreams and golden tests pin this stream.
        self.rng = ChaosRng(streams if streams is not None else RngStreams(0))
        self.log: list[FaultRecord] = []
        self._armed = False

    # -- arming ---------------------------------------------------------------

    def arm(self) -> "FaultInjector":
        """Schedule every planned event; returns self for chaining."""
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        handlers = {
            LinkOutage: self._begin_outage,
            LossBurst: self._begin_burst,
            StorageBrownout: self._begin_brownout,
            WorkerCrash: self._worker_crash,
            TransferStall: self._transfer_stall,
            JobCrash: self._job_crash,
        }
        for ev in self.plan:
            handler = handlers[type(ev)]
            self.engine.schedule_at(
                ev.at, lambda ev=ev, h=handler: h(ev), name=f"fault:{ev.kind}"
            )
        return self

    # -- logging --------------------------------------------------------------

    def _record(self, kind: str, target: str, detail: str = "") -> None:
        rec = FaultRecord(time=self.engine.now, kind=kind, target=target, detail=detail)
        self.log.append(rec)
        if self.recorder is not None:
            self.recorder.annotate(rec.time, rec.kind, f"{rec.target} {rec.detail}".strip())
        tracer = current_tracer()
        if tracer is not None:
            if kind.endswith("-skip"):
                tracer.emit(FaultSkipped, kind=kind[:-5], target=target, reason=detail)
                tracer.metrics.inc("faults.skipped")
            elif kind.endswith("-end"):
                tracer.emit(FaultRecovered, kind=kind[:-4], target=target)
                tracer.metrics.inc("faults.recovered")
            else:
                tracer.emit(FaultInjected, kind=kind, target=target, detail=detail)
                tracer.metrics.inc("faults.injected")

    def records(self, kind: str | None = None) -> list[FaultRecord]:
        """The audit log, optionally filtered by kind."""
        if kind is None:
            return list(self.log)
        return [r for r in self.log if r.kind == kind]

    # -- target resolution -----------------------------------------------------

    def _links(self) -> list[Link]:
        seen: set[int] = set()
        links: list[Link] = []
        for s in self.network.sessions:
            for link in s.path:
                if id(link) not in seen:
                    seen.add(id(link))
                    links.append(link)
        return links

    def _resolve_link(self, name: str | None) -> Link | None:
        links = self._links()
        if not links:
            return None
        if name is None:
            # The bottleneck: where a real outage/flap is felt.
            return min(links, key=lambda link: link.capacity)
        for link in links:
            if link.name == name:
                return link
        return None

    def _resolve_session(self, name: str | None) -> TransferSession | None:
        candidates = self.network.active_sessions()
        if not candidates:
            return None
        if name is None:
            return self.rng.pick(candidates)
        for s in candidates:
            if s.name == name:
                return s
        return None

    def _resolve_host(self, spec: str) -> Optional["DataTransferNode"]:
        sessions = self.network.sessions
        if not sessions:
            return None
        if spec == "source":
            return sessions[0].source
        if spec == "destination":
            return sessions[0].destination
        for s in sessions:
            for host in (s.source, s.destination):
                if host.name == spec:
                    return host
        return None

    def _pick_worker(self, session: TransferSession, worker: int | None) -> int | None:
        if worker is not None:
            return worker if 0 <= worker < session.rates.size else None
        busy = [int(w) for w in session.has_file.nonzero()[0]]
        if busy:
            return self.rng.pick(busy)
        if session.rates.size:
            return self.rng.integers(session.rates.size)
        return None

    # -- handlers ---------------------------------------------------------------

    def _begin_outage(self, ev: LinkOutage) -> None:
        link = self._resolve_link(ev.link)
        if link is None or not link.available:
            self._record("outage-skip", ev.link or "<bottleneck>", "no eligible link")
            return
        link.available = False
        self.network.invalidate_topology()
        # Taint exactly the sessions crossing this link; recovery
        # un-taints the same monitors even if the sessions finished.
        monitors = [s.monitor for s in self.network.sessions if link in s.path.links]
        for m in monitors:
            m.begin_taint()
        self._record("outage", link.name, f"down {ev.duration:g}s")
        self.engine.schedule_in(
            ev.duration, lambda: self._end_outage(link, monitors), name="fault:outage-end"
        )

    def _end_outage(self, link: Link, monitors: list) -> None:
        link.available = True
        self.network.invalidate_topology()
        for m in monitors:
            m.end_taint()
        self._record("outage-end", link.name)

    def _begin_burst(self, ev: LossBurst) -> None:
        link = self._resolve_link(ev.link)
        if link is None:
            self._record("burst-skip", ev.link or "<bottleneck>", "no eligible link")
            return
        # Bursts stack additively; loss_rate clamps the sum at 1.0.
        # Loss changes don't touch capacities, so no topology rebuild —
        # but the executor's epoch-keyed equilibrium cache must see the
        # new fault state (losses are part of the cached pair).
        link.extra_loss += ev.loss
        self.network.note_link_fault()
        self._record("loss-burst", link.name, f"+{ev.loss:.1%} for {ev.duration:g}s")
        self.engine.schedule_in(
            ev.duration, lambda: self._end_burst(link, ev.loss), name="fault:burst-end"
        )

    def _end_burst(self, link: Link, loss: float) -> None:
        link.extra_loss = max(0.0, link.extra_loss - loss)
        self.network.note_link_fault()
        self._record("loss-burst-end", link.name)

    def _begin_brownout(self, ev: StorageBrownout) -> None:
        host = self._resolve_host(ev.host)
        if host is None:
            self._record("brownout-skip", ev.host, "no eligible host")
            return
        original = host.storage
        host.storage = dataclasses.replace(
            original,
            per_process_read_bps=original.per_process_read_bps * ev.factor,
            per_process_write_bps=original.per_process_write_bps * ev.factor,
            aggregate_read_bps=original.aggregate_read_bps * ev.factor,
            aggregate_write_bps=original.aggregate_write_bps * ev.factor,
        )
        self.network.invalidate_topology()
        self._record(
            "brownout", host.name, f"x{ev.factor:.2f} for {ev.duration:g}s"
        )
        self.engine.schedule_in(
            ev.duration,
            lambda: self._end_brownout(host, original),
            name="fault:brownout-end",
        )

    def _end_brownout(self, host: "DataTransferNode", original) -> None:
        host.storage = original
        self.network.invalidate_topology()
        self._record("brownout-end", host.name)

    def _worker_crash(self, ev: WorkerCrash) -> None:
        session = self._resolve_session(ev.session)
        if session is None:
            self._record("crash-skip", ev.session or "<any>", "no active session")
            return
        w = self._pick_worker(session, ev.worker)
        if w is None:
            self._record("crash-skip", session.name, "no worker to crash")
            return
        session.crash_worker(w)
        self._record("worker-crash", f"{session.name}#w{w}")

    def _transfer_stall(self, ev: TransferStall) -> None:
        session = self._resolve_session(ev.session)
        if session is None:
            self._record("stall-skip", ev.session or "<any>", "no active session")
            return
        w = self._pick_worker(session, ev.worker)
        if w is None:
            self._record("stall-skip", session.name, "no worker to stall")
            return
        session.stall_worker(w, ev.duration)
        self._record("stall", f"{session.name}#w{w}", f"{ev.duration:g}s")

    def _job_crash(self, ev: JobCrash) -> None:
        if self.service is None:
            self._record("job-crash-skip", "<service>", "no service attached")
            return
        running = self.service.running()
        if ev.job is not None:
            running = [j for j in running if j.job_id == ev.job]
        if not running:
            self._record("job-crash-skip", str(ev.job or "<any>"), "no running job")
            return
        job = min(running, key=lambda j: j.started_at or 0.0)
        self.service.crash_job(job)
        self._record("job-crash", job.name)
