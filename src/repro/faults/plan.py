"""Declarative fault schedules.

A :class:`FaultPlan` is a frozen list of *what goes wrong and when* —
the input the :class:`~repro.faults.injector.FaultInjector` compiles
into engine callbacks.  Plans are plain data on purpose: they can be
written literally in a test, expanded from a chaos profile, printed in
an experiment header, and compared across runs.

All times are absolute simulation seconds.  Targets are optional —
``None`` means "the injector picks deterministically at fire time"
(bottleneck link, random file-holding worker via the chaos stream) so a
plan does not need to know session names in advance.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FaultEvent:
    """Base class: something that goes wrong at time :attr:`at`."""

    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("fault time must be non-negative")

    @property
    def kind(self) -> str:
        """Short lowercase label used in logs and traces."""
        return type(self).__name__


@dataclass(frozen=True)
class LinkOutage(FaultEvent):
    """A network link goes hard down for ``duration`` seconds.

    While down the link allocates nothing and drops every packet;
    sessions crossing it see their samples tainted (``valid=False``)
    for the outage window plus the straddling interval.
    ``link=None`` targets the bottleneck (lowest-capacity) link among
    the active sessions' paths.
    """

    duration: float = 10.0
    link: str | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ValueError("outage duration must be positive")


@dataclass(frozen=True)
class LossBurst(FaultEvent):
    """Additive packet loss on a link for ``duration`` seconds.

    Models a fiber flap or microwave fade: the link stays up but every
    flow crossing it sees ``loss`` extra loss on top of congestion
    loss.  Unlike an outage this does not taint samples — degraded
    readings during a burst are real signal the tuner should react to.
    """

    duration: float = 10.0
    loss: float = 0.05
    link: str | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ValueError("burst duration must be positive")
        if not 0.0 < self.loss <= 1.0:
            raise ValueError("burst loss must be in (0, 1]")


@dataclass(frozen=True)
class StorageBrownout(FaultEvent):
    """A host's file system degrades to ``factor`` of its rates.

    Models an OST rebuild or a co-tenant batch job hammering the
    array.  ``host`` is ``"source"``, ``"destination"``, or a DTN name.
    """

    duration: float = 30.0
    factor: float = 0.3
    host: str = "source"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ValueError("brownout duration must be positive")
        if not 0.0 < self.factor < 1.0:
            raise ValueError("brownout factor must be in (0, 1)")


@dataclass(frozen=True)
class WorkerCrash(FaultEvent):
    """One worker process dies mid-file.

    The file's progress survives (restartable transfers) but its
    attempt count rises — the event the service's retry/backoff policy
    exists to absorb.  ``session=None`` picks a random active session;
    ``worker=None`` picks a random file-holding worker.
    """

    session: str | None = None
    worker: int | None = None


@dataclass(frozen=True)
class TransferStall(FaultEvent):
    """A worker hangs for ``duration`` seconds without dying.

    The worker keeps its file and data channel but moves no bytes —
    invisible to completion accounting, which is why the service needs
    a no-progress watchdog rather than just an exit-code check.
    """

    duration: float = 20.0
    session: str | None = None
    worker: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ValueError("stall duration must be positive")


@dataclass(frozen=True)
class JobCrash(FaultEvent):
    """A whole transfer job's process tree dies.

    The service either restarts the job — resuming from the files not
    yet delivered — or, with restarts exhausted/disabled, marks it
    FAILED with a partial report.  ``job=None`` targets the
    longest-running job.
    """

    job: int | None = None


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault events.

    Events may be listed in any order; the injector schedules each at
    its own timestamp.  An empty plan is valid (chaos profile drew no
    events) and injects nothing.
    """

    events: tuple[FaultEvent, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for ev in self.events:
            if not isinstance(ev, FaultEvent):
                raise TypeError(f"not a FaultEvent: {ev!r}")

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def last_time(self) -> float:
        """When the final fault (including recoveries) has played out."""
        end = 0.0
        for ev in self.events:
            end = max(end, ev.at + getattr(ev, "duration", 0.0))
        return end

    def describe(self) -> str:
        """One line per event, in time order (experiment headers, logs)."""
        lines = []
        for ev in sorted(self.events, key=lambda e: e.at):
            fields = {
                k: v
                for k, v in vars(ev).items()
                if k != "at" and v is not None
            }
            detail = ", ".join(f"{k}={v}" for k, v in fields.items())
            lines.append(f"t={ev.at:g}s {ev.kind}({detail})")
        return "\n".join(lines) if lines else "(no faults)"
