"""Named chaos profiles and their deterministic expansion into plans.

A :class:`ChaosProfile` describes fault *pressure* (expected events per
minute, duration/intensity ranges); :func:`chaos_plan` expands it into a
concrete :class:`~repro.faults.plan.FaultPlan` for a given horizon using
a :class:`~repro.faults.rng.ChaosRng` — same seed, same plan, always.

Presets
-------
``calm``
    A couple of worker stalls and one crash: the background noise any
    long-lived transfer service sees.
``flaky-network``
    Loss bursts plus short link outages; no end-host trouble.
``storage-degraded``
    Storage brownouts at the source array plus stalls.
``hostile``
    Everything at once, including a whole-job crash — the preset CI's
    chaos smoke test runs, and the one the fault-tolerance experiment
    uses to separate retries-on from retries-off.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import (
    FaultEvent,
    FaultPlan,
    JobCrash,
    LinkOutage,
    LossBurst,
    StorageBrownout,
    TransferStall,
    WorkerCrash,
)
from repro.faults.rng import ChaosRng


@dataclass(frozen=True)
class ChaosProfile:
    """Fault pressure per class; rates are expected events per minute."""

    name: str
    outage_per_min: float = 0.0
    outage_duration: tuple[float, float] = (5.0, 15.0)
    burst_per_min: float = 0.0
    burst_loss: tuple[float, float] = (0.02, 0.10)
    burst_duration: tuple[float, float] = (5.0, 20.0)
    brownout_per_min: float = 0.0
    brownout_factor: tuple[float, float] = (0.2, 0.5)
    brownout_duration: tuple[float, float] = (15.0, 45.0)
    crash_per_min: float = 0.0
    stall_per_min: float = 0.0
    stall_duration: tuple[float, float] = (10.0, 30.0)
    #: Fractions of the horizon at which the whole job crashes.
    job_crash_at: tuple[float, ...] = ()


CHAOS_PRESETS: dict[str, ChaosProfile] = {
    "calm": ChaosProfile(
        name="calm",
        crash_per_min=0.3,
        stall_per_min=0.5,
        stall_duration=(5.0, 15.0),
    ),
    "flaky-network": ChaosProfile(
        name="flaky-network",
        outage_per_min=0.4,
        outage_duration=(3.0, 10.0),
        burst_per_min=0.8,
    ),
    "storage-degraded": ChaosProfile(
        name="storage-degraded",
        brownout_per_min=0.5,
        stall_per_min=0.4,
    ),
    "hostile": ChaosProfile(
        name="hostile",
        outage_per_min=0.3,
        outage_duration=(3.0, 8.0),
        burst_per_min=0.5,
        brownout_per_min=0.3,
        brownout_duration=(10.0, 25.0),
        crash_per_min=0.8,
        stall_per_min=0.6,
        stall_duration=(8.0, 20.0),
        job_crash_at=(0.45,),
    ),
}


def chaos_plan(
    profile: ChaosProfile | str, horizon: float, rng: ChaosRng
) -> FaultPlan:
    """Expand a profile into a concrete plan over ``[0, horizon]`` seconds.

    Event counts are Poisson draws from the per-minute rates; times are
    uniform inside the middle 90% of the horizon so a fault never fires
    before the workload exists or after it is already winding down.
    Durations are clipped so every fault recovers inside the horizon.
    """
    if isinstance(profile, str):
        try:
            profile = CHAOS_PRESETS[profile]
        except KeyError:
            known = ", ".join(sorted(CHAOS_PRESETS))
            raise ValueError(f"unknown chaos preset {profile!r}; known: {known}") from None
    if horizon <= 0:
        raise ValueError("horizon must be positive")

    minutes = horizon / 60.0
    lo_t, hi_t = 0.05 * horizon, 0.95 * horizon
    events: list[FaultEvent] = []

    def times(per_min: float) -> list[float]:
        return [rng.uniform(lo_t, hi_t) for _ in range(rng.poisson(per_min * minutes))]

    def span(at: float, bounds: tuple[float, float]) -> float:
        return min(rng.uniform(*bounds), max(horizon - at, 1e-3))

    for at in times(profile.outage_per_min):
        events.append(LinkOutage(at=at, duration=span(at, profile.outage_duration)))
    for at in times(profile.burst_per_min):
        events.append(
            LossBurst(
                at=at,
                duration=span(at, profile.burst_duration),
                loss=rng.uniform(*profile.burst_loss),
            )
        )
    for at in times(profile.brownout_per_min):
        events.append(
            StorageBrownout(
                at=at,
                duration=span(at, profile.brownout_duration),
                factor=rng.uniform(*profile.brownout_factor),
            )
        )
    for at in times(profile.crash_per_min):
        events.append(WorkerCrash(at=at))
    for at in times(profile.stall_per_min):
        events.append(TransferStall(at=at, duration=span(at, profile.stall_duration)))
    for frac in profile.job_crash_at:
        events.append(JobCrash(at=frac * horizon))

    return FaultPlan(events=tuple(sorted(events, key=lambda e: (e.at, e.kind))))
