"""The random stream fault injection draws from.

Faults need randomness twice: expanding a chaos *profile* into concrete
event times, and picking targets (which worker crashes?) at fire time.
Both draws come from a dedicated ``chaos/<name>`` stream carved out of
the experiment's :class:`~repro.sim.rng.RngStreams` family, so enabling
fault injection never shifts the sequences other components (jitter,
Bayesian sampling, dataset generation) observe — an injected outage
changes *what happens*, not *what would have been measured*.
"""

from __future__ import annotations

from repro.sim.rng import RngStreams


class ChaosRng:
    """Deterministic draws for fault scheduling and target selection.

    Parameters
    ----------
    streams:
        The experiment's stream family (or any seeded family).
    name:
        Sub-stream label; two injectors with different names in the
        same experiment draw independently.
    """

    def __init__(self, streams: RngStreams, name: str = "injector") -> None:
        self._gen = streams.get(f"chaos/{name}")

    def uniform(self, lo: float, hi: float) -> float:
        """One uniform draw in ``[lo, hi)``."""
        return float(self._gen.uniform(lo, hi))

    def integers(self, n: int) -> int:
        """One uniform integer in ``[0, n)``."""
        if n <= 0:
            raise ValueError("n must be positive")
        return int(self._gen.integers(n))

    def pick(self, items):
        """Uniformly pick one element of a non-empty sequence."""
        if not len(items):
            raise ValueError("cannot pick from an empty sequence")
        return items[self.integers(len(items))]

    def poisson(self, lam: float) -> int:
        """One Poisson draw (event counts for chaos profiles)."""
        if lam < 0:
            raise ValueError("lam must be non-negative")
        return int(self._gen.poisson(lam))
