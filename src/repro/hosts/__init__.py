"""End-host substrate: NICs, CPU overhead, data-transfer nodes."""

from repro.hosts.cpu import CpuModel
from repro.hosts.dtn import DataTransferNode
from repro.hosts.nic import Nic

__all__ = ["CpuModel", "DataTransferNode", "Nic"]
