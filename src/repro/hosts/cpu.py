"""CPU / process-overhead model.

High concurrency "overburdens end hosts and storage systems due to the
processing overhead of concurrent processes/threads" (§2, citing the
energy-aware transfer study [7]).  We model this as a per-process
efficiency multiplier: processes beyond the core count pay a context-
switching and memory-pressure tax that grows with oversubscription.

This term is deliberately mild — the paper's measured throughput curves
flatten rather than collapse at high concurrency — but it matters for
the utility function's premise that *needless* concurrency has a real
resource cost even when throughput looks unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuModel:
    """Efficiency of transfer processes on a host.

    Attributes
    ----------
    cores:
        Cores available for transfer processes.
    oversubscription_penalty:
        Fractional per-process efficiency loss for each process beyond
        ``cores``, normalised by ``cores``.
    floor:
        Minimum efficiency (the host keeps making progress even badly
        oversubscribed).
    """

    cores: int = 24
    oversubscription_penalty: float = 0.3
    floor: float = 0.4

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if not 0 <= self.oversubscription_penalty:
            raise ValueError("oversubscription_penalty must be non-negative")
        if not 0 < self.floor <= 1:
            raise ValueError("floor must be in (0, 1]")

    def efficiency(self, n_processes: int) -> float:
        """Per-process throughput multiplier with ``n_processes`` running."""
        if n_processes <= self.cores:
            return 1.0
        overload = (n_processes - self.cores) / self.cores
        return max(self.floor, 1.0 / (1.0 + self.oversubscription_penalty * overload))
