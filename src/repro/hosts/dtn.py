"""Data Transfer Node: the composite end host.

A DTN (ESnet's recommended architecture, referenced in §5) bundles a
parallel-file-system mount, a NIC, and CPU capacity.  Transfer sessions
read from a source DTN and write to a destination DTN; each resource is
shared across *all* sessions using the host, which is how competing
transfers interact at the end systems (not just in the network).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hosts.cpu import CpuModel
from repro.hosts.nic import Nic
from repro.storage.parallel_fs import ParallelFileSystem


@dataclass
class DataTransferNode:
    """An end host participating in transfers.

    Attributes
    ----------
    name:
        Host label ("comet-dtn", ...).
    storage:
        The file system the host reads/writes.
    nic:
        Network interface.
    cpu:
        Process-overhead model.
    """

    name: str
    storage: ParallelFileSystem = field(default_factory=ParallelFileSystem)
    nic: Nic = field(default_factory=Nic)
    cpu: CpuModel = field(default_factory=CpuModel)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"DTN({self.name})"
