"""Network interface card model.

Most HPC data-transfer nodes have 10/40 Gbps NICs even when the WAN
offers 100 Gbps — the paper calls this out as the reason bottlenecks
shift to end hosts (and why the Campus Cluster's bottleneck in Table 1
is "NIC").  A NIC is a lossless shared resource: saturating it causes
backpressure, not packet loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.fairshare import _fair_share_unchecked
from repro.units import Gbps


@dataclass(frozen=True)
class Nic:
    """A host NIC with a duplex capacity limit.

    Attributes
    ----------
    capacity:
        Line rate in bits per second (applied independently per
        direction — send and receive each get the full rate).
    """

    capacity: float = 10.0 * Gbps
    name: str = "nic"

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("NIC capacity must be positive")

    def allocate(self, demands: np.ndarray) -> np.ndarray:
        """Max-min fair allocation of one direction's line rate."""
        return _fair_share_unchecked(np.asarray(demands, dtype=float), self.capacity)
