"""Network substrate: links, drop-tail loss, TCP fluid behaviour, paths.

The model is a *fluid* abstraction of the mechanisms Falcon's black-box
view depends on:

* a link has a capacity and contributes delay (RTT);
* equal-RTT flows sharing a saturated link get max-min fair shares;
* a single TCP stream is capped by its window (``cwnd_max / RTT``);
* packet loss is negligible below saturation and grows superlinearly
  with the number of flows once the bottleneck is saturated (each flow
  probes for bandwidth, and more flows with smaller per-flow windows
  cause more frequent queue overflows — the Mathis relation inverted).
"""

from repro.network.link import Link
from repro.network.path import Path, Topology, build_dumbbell, shortest_path
from repro.network.queue import DropTailLossModel, LossModel, NoLossModel
from repro.network.tcp import BBR, CUBIC, HSTCP, RENO, TcpModel, stream_window_cap

__all__ = [
    "Link",
    "Path",
    "Topology",
    "build_dumbbell",
    "shortest_path",
    "BBR",
    "CUBIC",
    "HSTCP",
    "RENO",
    "DropTailLossModel",
    "LossModel",
    "NoLossModel",
    "TcpModel",
    "stream_window_cap",
]
