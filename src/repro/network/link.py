"""Network link model."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.queue import DropTailLossModel, LossModel
from repro.sim.fairshare import _fair_share_unchecked


@dataclass
class Link:
    """A simplex network link with capacity, delay, and a loss model.

    Attributes
    ----------
    name:
        Identifier used in topology lookups and reports.
    capacity:
        Capacity in bits per second.
    delay:
        One-way propagation delay in seconds (a path's RTT is twice the
        sum of its link delays).
    loss_model:
        Maps load on this link to a packet-loss fraction.
    available:
        Fault state: False while the link is in an injected outage.  A
        down link allocates nothing and drops every packet.  Toggled by
        :class:`repro.faults.FaultInjector`, which also invalidates the
        executor's cached topology so the change takes effect on the
        next fluid step.
    extra_loss:
        Fault state: additive packet-loss fraction from an injected
        loss burst (fiber flap, microwave fade), on top of the
        congestion loss the model computes.
    """

    name: str
    capacity: float
    delay: float = 0.0
    loss_model: LossModel = field(default_factory=DropTailLossModel)
    available: bool = True
    extra_loss: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link {self.name!r}: capacity must be positive")
        if self.delay < 0:
            raise ValueError(f"link {self.name!r}: delay must be non-negative")
        if not 0.0 <= self.extra_loss <= 1.0:
            raise ValueError(f"link {self.name!r}: extra_loss must be in [0, 1]")

    @property
    def effective_capacity(self) -> float:
        """Capacity honoring fault state (0 while the link is down)."""
        return self.capacity if self.available else 0.0

    def allocate(self, demands: np.ndarray) -> np.ndarray:
        """Max-min fair allocation of this link's effective capacity."""
        return _fair_share_unchecked(
            np.asarray(demands, dtype=float), self.effective_capacity
        )

    def loss_rate(self, offered_bps: float, n_flows: int, rtt: float) -> float:
        """Packet-loss fraction for the given load (see :class:`LossModel`).

        Injected fault state stacks on top of the congestion model: a
        loss burst adds :attr:`extra_loss`; an outage loses everything.
        """
        if not self.available:
            return 1.0
        base = self.loss_model.loss_rate(offered_bps, self.capacity, n_flows, rtt)
        if self.extra_loss > 0.0:
            return float(min(1.0, base + self.extra_loss))
        return base

    def utilization(self, carried_bps: float) -> float:
        """Fraction of (nominal) capacity in use."""
        return carried_bps / self.capacity
