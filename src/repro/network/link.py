"""Network link model."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.queue import DropTailLossModel, LossModel
from repro.sim.fairshare import _fair_share_unchecked


@dataclass
class Link:
    """A simplex network link with capacity, delay, and a loss model.

    Attributes
    ----------
    name:
        Identifier used in topology lookups and reports.
    capacity:
        Capacity in bits per second.
    delay:
        One-way propagation delay in seconds (a path's RTT is twice the
        sum of its link delays).
    loss_model:
        Maps load on this link to a packet-loss fraction.
    """

    name: str
    capacity: float
    delay: float = 0.0
    loss_model: LossModel = field(default_factory=DropTailLossModel)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link {self.name!r}: capacity must be positive")
        if self.delay < 0:
            raise ValueError(f"link {self.name!r}: delay must be non-negative")

    def allocate(self, demands: np.ndarray) -> np.ndarray:
        """Max-min fair allocation of this link's capacity."""
        return _fair_share_unchecked(np.asarray(demands, dtype=float), self.capacity)

    def loss_rate(self, offered_bps: float, n_flows: int, rtt: float) -> float:
        """Packet-loss fraction for the given load (see :class:`LossModel`)."""
        return self.loss_model.loss_rate(offered_bps, self.capacity, n_flows, rtt)

    def utilization(self, carried_bps: float) -> float:
        """Fraction of capacity in use."""
        return carried_bps / self.capacity
