"""Multi-hop paths and topology helpers.

A :class:`Path` is the ordered sequence of links a transfer's streams
traverse.  Topologies are plain :mod:`networkx` graphs whose edges carry
:class:`~repro.network.link.Link` objects, with :func:`shortest_path`
extracting the link sequence between two hosts.  :func:`build_dumbbell`
builds the classic two-host/one-bottleneck topology of the paper's
Emulab experiments (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.network.link import Link
from repro.network.queue import DropTailLossModel, NoLossModel


@dataclass(frozen=True)
class Path:
    """An ordered, loop-free sequence of links between two endpoints."""

    links: tuple[Link, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.links:
            raise ValueError("a path needs at least one link")
        names = [link.name for link in self.links]
        if len(set(names)) != len(names):
            raise ValueError(f"path visits a link twice: {names}")

    @property
    def rtt(self) -> float:
        """Round-trip time: twice the sum of one-way link delays."""
        return 2.0 * sum(link.delay for link in self.links)

    @property
    def capacity(self) -> float:
        """End-to-end capacity: the minimum link capacity."""
        return min(link.capacity for link in self.links)

    @property
    def bottleneck(self) -> Link:
        """The link with the smallest capacity."""
        return min(self.links, key=lambda link: link.capacity)

    def __iter__(self):
        return iter(self.links)

    def __len__(self) -> int:
        return len(self.links)


@dataclass
class Topology:
    """A named collection of hosts and links on a networkx graph."""

    graph: nx.Graph = field(default_factory=nx.Graph)

    def add_host(self, name: str) -> None:
        """Register a host node."""
        self.graph.add_node(name)

    def connect(self, a: str, b: str, link: Link) -> None:
        """Join two nodes with a (bidirectional, shared-capacity) link."""
        self.graph.add_edge(a, b, link=link)

    def path(self, src: str, dst: str) -> Path:
        """Shortest (hop-count) path between two hosts."""
        return shortest_path(self.graph, src, dst)


def shortest_path(graph: nx.Graph, src: str, dst: str) -> Path:
    """Extract the Link sequence along the hop-shortest route."""
    nodes = nx.shortest_path(graph, src, dst)
    links = tuple(graph.edges[u, v]["link"] for u, v in zip(nodes, nodes[1:]))
    return Path(links=links, name=f"{src}->{dst}")


def build_dumbbell(
    bottleneck_capacity: float,
    rtt: float,
    edge_capacity: float | None = None,
    name: str = "dumbbell",
) -> Path:
    """The Fig. 3 topology: fast edge links around one bottleneck.

    Parameters
    ----------
    bottleneck_capacity:
        Capacity of the middle link, bps.
    rtt:
        End-to-end round-trip time, seconds (assigned entirely to the
        bottleneck link; edge links are delay-free).
    edge_capacity:
        Capacity of the two edge links; defaults to 10x the bottleneck.
    """
    if edge_capacity is None:
        edge_capacity = 10.0 * bottleneck_capacity
    lossless = NoLossModel()
    return Path(
        links=(
            Link(f"{name}-src-edge", edge_capacity, 0.0, lossless),
            Link(
                f"{name}-bottleneck",
                bottleneck_capacity,
                rtt / 2.0,
                DropTailLossModel(),
            ),
            Link(f"{name}-dst-edge", edge_capacity, 0.0, lossless),
        ),
        name=name,
    )
