"""Drop-tail queue loss models.

The paper's Fig. 4 is the empirical anchor: on a 100 Mbps Emulab
bottleneck where 10 concurrent flows saturate the link, packet loss
stays below 2% up to 10 flows and "increases drastically, reaching 10%
for concurrency 32".

We reproduce that shape with an equilibrium loss model derived from the
Mathis steady-state relation.  For a loss-based TCP flow,
``rate ≈ MSS / (RTT · sqrt(2p/3))`` — inverting, the loss rate a flow
*induces and experiences* while holding its share of a saturated link
grows as its per-flow window (in packets) shrinks.  With ``N`` flows
max-min sharing capacity ``C``, the per-flow window is
``C·RTT / (N·MSS)`` packets, so

``loss ≈ base + coeff · (N · MSS / (C · RTT_eff)) ** exponent``   (saturated)

and only a small residual loss below saturation.  ``exponent = 1.5``
(between the Mathis square and a linear AIMD-probing model) matches the
paper's measured curve well; ``coeff`` is calibrated so the Emulab
scenario yields ~1.5% at N=10 and ~9-10% at N=32.

``RTT_eff`` is floored so sub-millisecond LAN paths do not produce
unphysical loss (real LANs have switch buffering well beyond one BDP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

#: Default maximum segment size, bits (1500-byte Ethernet MTU payload).
MSS_BITS = 1500 * 8

#: RTT floor for the loss model, seconds.
RTT_FLOOR = 5e-3


class LossModel(Protocol):
    """Maps link load to a packet-loss fraction."""

    def loss_rate(
        self, offered_bps: float, capacity_bps: float, n_flows: int, rtt: float
    ) -> float:
        """Return the packet-loss fraction experienced by flows on the link.

        Parameters
        ----------
        offered_bps:
            Aggregate rate the flows would send absent this link's limit.
        capacity_bps:
            Link capacity.
        n_flows:
            Number of flows currently traversing the link.
        rtt:
            Round-trip time of the path the link belongs to, seconds.
        """
        ...


@dataclass(frozen=True)
class NoLossModel:
    """A lossless link (e.g. a host's internal bus)."""

    def loss_rate(
        self, offered_bps: float, capacity_bps: float, n_flows: int, rtt: float
    ) -> float:
        return 0.0


@dataclass(frozen=True)
class DropTailLossModel:
    """Equilibrium loss of loss-based TCP at a drop-tail bottleneck.

    Attributes
    ----------
    residual_loss:
        Loss observed on an unsaturated path (bit errors, tiny bursts).
    saturation_threshold:
        Utilisation above which the queue is considered standing and
        probing loss kicks in.
    coeff, exponent:
        Shape of the saturated-loss curve (see module docstring).
    max_loss:
        Physical cap on the reported loss fraction.
    """

    residual_loss: float = 1e-4
    saturation_threshold: float = 0.95
    coeff: float = 2.0
    exponent: float = 1.5
    max_loss: float = 0.30

    def loss_rate(
        self, offered_bps: float, capacity_bps: float, n_flows: int, rtt: float
    ) -> float:
        if capacity_bps <= 0 or n_flows <= 0:
            return 0.0
        utilization = offered_bps / capacity_bps
        if utilization < self.saturation_threshold:
            return self.residual_loss
        rtt_eff = max(rtt, RTT_FLOOR)
        inv_window = n_flows * MSS_BITS / (capacity_bps * rtt_eff)
        probing = self.coeff * inv_window**self.exponent
        return float(min(self.max_loss, self.residual_loss + probing))
