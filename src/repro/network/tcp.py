"""Fluid TCP stream behaviour.

Falcon treats the transport as a black box, but three TCP properties
shape every result in the paper:

1. **Window cap** — a single stream cannot exceed ``cwnd_max / RTT``,
   which is why *parallelism* (multiple streams per file) helps on
   long-fat networks (§4.4).
2. **Ramp-up** — a fresh stream takes many RTTs (slow start plus
   congestion avoidance) to approach its equilibrium share, which is why
   sample transfers need 3–5 s to be measured accurately (§3.2).
3. **Loss response** — on congestion a stream backs off immediately
   (multiplicative decrease) but regains rate gradually.

:class:`TcpModel` captures these as (1) a static per-stream cap, (2) an
exponential relaxation toward the allocated rate with time constant
proportional to RTT, and (3) asymmetric dynamics: instant decrease,
relaxed increase.  An ``aggressiveness`` weight lets a BBR-flavoured
variant claim more than its fair share against loss-based flows (future
work in the paper; included as an extension).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.units import MiB


def stream_window_cap(buffer_bytes: float, rtt: float) -> float:
    """Maximum rate (bps) of one stream with the given window and RTT.

    ``rate = window / RTT``; for sub-millisecond RTTs the cap is
    effectively the NIC speed, so the caller should min() with other
    limits.
    """
    if rtt <= 0:
        return float("inf")
    return buffer_bytes * 8.0 / rtt


@dataclass(frozen=True)
class TcpModel:
    """Per-stream transport parameters.

    Attributes
    ----------
    name:
        Congestion-control label (reporting only).
    buffer_bytes:
        Maximum congestion/receive window in bytes.  The common
        production default of 16 MiB caps one stream at ~2.1 Gbps over a
        60 ms path — the regime where GridFTP parallelism pays off.
    ramp_rtts:
        Time constant of the rate relaxation, in RTTs.
    min_ramp_time:
        Floor on the relaxation time constant, seconds (process spawn
        and handshake costs dominate on LANs).
    aggressiveness:
        Relative weight in bandwidth competition (1.0 = loss-based
        fair TCP; >1 models BBR-like behaviour).
    initial_rate:
        Starting rate of a fresh stream, bps.
    """

    name: str = "cubic"
    buffer_bytes: float = 16 * MiB
    ramp_rtts: float = 20.0
    min_ramp_time: float = 0.25
    aggressiveness: float = 1.0
    initial_rate: float = 10e6

    def stream_cap(self, rtt: float) -> float:
        """Equilibrium cap of a single stream on a path with this RTT."""
        return stream_window_cap(self.buffer_bytes, rtt)

    def ramp_tau(self, rtt: float) -> float:
        """Relaxation time constant on a path with this RTT."""
        return max(self.min_ramp_time, self.ramp_rtts * rtt)

    def advance_rates(
        self, current: np.ndarray, target: np.ndarray, rtt: float, dt: float
    ) -> np.ndarray:
        """One fluid step of the stream-rate dynamics.

        Rates above their target drop instantly (multiplicative
        decrease is fast at fluid timescales); rates below relax up
        exponentially with time constant :meth:`ramp_tau`.
        """
        current = np.asarray(current, dtype=float)
        target = np.asarray(target, dtype=float)
        tau = self.ramp_tau(rtt)
        blend = 1.0 - np.exp(-dt / tau)
        ramped = current + (target - current) * blend
        return np.where(target < current, target, ramped)


#: Common presets.  All loss-based variants share fluid behaviour at this
#: abstraction level (the paper finds B=10 works for Cubic, Reno, HSTCP).
CUBIC = TcpModel(name="cubic")
RENO = TcpModel(name="reno")
HSTCP = TcpModel(name="hstcp")
#: BBR-flavoured extension: less loss-sensitive, claims extra share.
BBR = TcpModel(name="bbr", aggressiveness=1.6)
