"""Structured observability: deterministic tracing and metrics.

Public surface:

* :func:`use_tracing` / :func:`current_tracer` — ambient enable/query,
  mirroring :func:`repro.runner.use_runner`;
* :class:`Tracer` — the emit bus (simulation-clock timestamps);
* :class:`Metrics` — counters/gauges/histograms with deterministic
  snapshots;
* :class:`InMemoryExporter` / :class:`JsonlExporter` /
  :func:`read_events` — sinks and round-trip loader;
* the typed event records and :data:`EVENT_TYPES` registry in
  :mod:`repro.obs.events`, documented in ``docs/events.md``.

Tracing is off by default and costs one ``None`` check per
instrumentation site when off (see ``benchmarks/bench_obs.py``).
"""

from __future__ import annotations

from repro.obs.events import EVENT_TYPES, TraceEvent, from_dict
from repro.obs.exporters import InMemoryExporter, JsonlExporter, encode_event, read_events
from repro.obs.metrics import Counter, Gauge, Histogram, Metrics
from repro.obs.tracer import Tracer, current_tracer, use_tracing

__all__ = [
    "EVENT_TYPES",
    "TraceEvent",
    "from_dict",
    "InMemoryExporter",
    "JsonlExporter",
    "encode_event",
    "read_events",
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "Tracer",
    "current_tracer",
    "use_tracing",
]
