"""Typed, frozen trace-event records and the event-type registry.

Every observable fact a run produces — an engine step, a monitor
sample, an optimizer decision, a fault injection — is one frozen
dataclass here.  Records are *data*, never behaviour: fields are JSON
primitives so the JSONL exporter can round-trip them exactly, and the
registry (:data:`EVENT_TYPES`) is the single source of truth that
``docs/events.md`` is generated from (``python -m repro.obs.schema``).

Conventions:

* every event carries ``time`` — the simulation clock in seconds;
* field names ending in ``_bps`` / ``_bytes`` / ``_s`` carry their unit
  in the name; any other physical quantity documents its unit in the
  field metadata (``unit=...``) and the generated schema table;
* events are immutable and comparable — two runs with the same seed
  must produce equal event sequences (pinned by an integration test).
"""

from __future__ import annotations

from dataclasses import MISSING, asdict, dataclass, field, fields
from typing import Any, ClassVar, Iterator

#: Event-type name -> event dataclass; populated by :func:`event`.
EVENT_TYPES: dict[str, type["TraceEvent"]] = {}


def unit_field(unit: str, doc: str, default: Any = MISSING) -> Any:
    """A dataclass field annotated with a unit and description.

    ``unit`` uses the repo's canonical unit names (``s`` seconds,
    ``bps`` bits per second, ``bytes``, or ``-`` for unitless); both
    strings surface in the generated schema reference.
    """
    if default is MISSING:
        return field(metadata={"unit": unit, "doc": doc})
    return field(default=default, metadata={"unit": unit, "doc": doc})


def event(type_name: str, emitted_by: str) -> Any:
    """Class decorator: freeze, register, and label one event type.

    ``type_name`` is the wire name (the ``type`` key of every JSONL
    line); ``emitted_by`` names the instrumentation site for the schema
    reference.  Registration rejects duplicate wire names so the schema
    stays unambiguous.
    """

    def decorate(cls: type) -> type:
        frozen = dataclass(frozen=True)(cls)
        if type_name in EVENT_TYPES:
            raise ValueError(f"duplicate event type {type_name!r}")
        frozen.type = type_name
        frozen.emitted_by = emitted_by
        EVENT_TYPES[type_name] = frozen
        return frozen

    return decorate


@dataclass(frozen=True)
class TraceEvent:
    """Base record: anything that happened at a simulation time.

    ``time`` is the simulation clock in seconds (not wall time — traces
    must be byte-identical across machines and re-runs).
    """

    type: ClassVar[str] = ""
    emitted_by: ClassVar[str] = ""

    time: float = unit_field("s", "simulation time the event occurred at")

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping: ``type`` first, then fields in order."""
        out: dict[str, Any] = {"type": self.type}
        out.update(asdict(self))
        return out


def from_dict(data: dict[str, Any]) -> TraceEvent:
    """Rebuild an event from its :meth:`TraceEvent.to_dict` mapping."""
    payload = dict(data)
    type_name = payload.pop("type", None)
    cls = EVENT_TYPES.get(type_name or "")
    if cls is None:
        raise ValueError(f"unknown event type {type_name!r}")
    return cls(**payload)


def iter_event_types() -> Iterator[type[TraceEvent]]:
    """Registered event classes in wire-name order (schema order)."""
    for name in sorted(EVENT_TYPES):
        yield EVENT_TYPES[name]


def field_specs(cls: type[TraceEvent]) -> list[tuple[str, str, str, str]]:
    """``(name, type, unit, doc)`` rows for one event class.

    The unit column falls back to ``-`` (unitless) when the field
    carries its unit in its name (``*_bps``, ``*_bytes``, ``*_s``) or
    has none.
    """
    rows = []
    for f in fields(cls):
        ann = f.type if isinstance(f.type, str) else getattr(f.type, "__name__", str(f.type))
        rows.append(
            (
                f.name,
                ann,
                str(f.metadata.get("unit", "-")),
                str(f.metadata.get("doc", "")),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Engine events.
# ---------------------------------------------------------------------------


@event("engine.step", emitted_by="repro.sim.engine.SimulationEngine._advance_fluid")
class EngineStep(TraceEvent):
    """One fluid-integration step completed.

    ``time`` is the clock *after* the step; ``dt`` is the step span in
    seconds (the engine shortens steps to land exactly on event
    timestamps, so ``dt`` is at most the configured step size).
    """

    dt: float = unit_field("s", "span integrated by this step", 0.0)


@event("engine.adaptive_jump", emitted_by="repro.sim.engine.SimulationEngine._advance_fluid")
class AdaptiveJump(TraceEvent):
    """An adaptive multi-step: one analytic advance covering many grid steps.

    Emitted (right after the covering :class:`EngineStep`) when the
    engine's ``adaptive=True`` mode proved that no discrete transition
    lies inside the span and replaced ``skipped + 1`` fixed-dt steps
    with a single closed-form advance.  ``dt`` is the full span covered;
    ``step_s`` is the underlying grid step the jump is a multiple of.
    """

    dt: float = unit_field("s", "span covered by the jump", 0.0)
    step_s: float = unit_field("s", "grid step the jump is a multiple of", 0.0)
    skipped: int = unit_field("-", "fixed-dt steps the jump replaced beyond the first", 0)


@event("engine.event", emitted_by="repro.sim.engine.SimulationEngine._fire_due_events")
class EngineEventFired(TraceEvent):
    """A scheduled discrete event fired.

    Emitted immediately before the callback runs, so events the
    callback itself emits appear after this record in the trace.
    """

    name: str = unit_field("-", "event label passed to schedule_*", "")


# ---------------------------------------------------------------------------
# Fluid arbitration events.
# ---------------------------------------------------------------------------


@event("fluid.rebalance", emitted_by="repro.transfer.executor.FluidTransferNetwork.fluid_step")
class FluidRebalance(TraceEvent):
    """Per-step joint arbitration summary across all active sessions.

    ``time`` is the start of the fluid step the allocation applies to.
    """

    sessions: int = unit_field("-", "active sessions arbitrated", 0)
    workers: int = unit_field("-", "total workers across those sessions", 0)
    demand_bps: float = unit_field("bps", "sum of per-worker demand caps", 0.0)
    allocated_bps: float = unit_field("bps", "sum of granted equilibrium rates", 0.0)


@event("fluid.cascade", emitted_by="repro.sim.batch.BatchStore.step")
class BatchCascadeFallback(TraceEvent):
    """The batched advance fell back to per-worker cascade resolution.

    Emitted only on steps where at least one worker finished its file
    (completion cascades — queue pops, inter-file gaps, possible queue
    exhaustion — are the genuinely discrete part the vectorized pass
    cannot resolve).  A trace dominated by these records means the
    workload is completion-bound, not streaming-bound.
    """

    sessions: int = unit_field("-", "sessions with at least one cascading worker", 0)
    workers: int = unit_field("-", "workers resolved via the per-worker cascade", 0)


@event(
    "fluid.topology_rebuild",
    emitted_by="repro.transfer.executor.FluidTransferNetwork._topology",
)
class TopologyRebuild(TraceEvent):
    """The executor rebuilt its cached resource topology.

    Rebuilds happen when sessions join/leave or change worker count or
    parallelism; frequent rebuilds in a trace flag a thrashing cache.
    """

    sessions: int = unit_field("-", "sessions in the rebuilt topology", 0)
    workers: int = unit_field("-", "total workers in the rebuilt topology", 0)
    resources: int = unit_field("-", "shared resources being arbitrated", 0)


# ---------------------------------------------------------------------------
# Measurement / decision events.
# ---------------------------------------------------------------------------


@event("monitor.sample", emitted_by="repro.core.agent.FalconAgent.decide")
class MonitorSampleTaken(TraceEvent):
    """An agent collected one interval sample from its monitor."""

    session: str = unit_field("-", "session the sample measures", "")
    duration_s: float = unit_field("s", "full interval length", 0.0)
    throughput_bps: float = unit_field("bps", "measured (jittered) goodput", 0.0)
    loss_rate: float = unit_field("-", "fraction of sent bytes lost", 0.0)
    concurrency: int = unit_field("-", "workers in force during the interval", 0)
    parallelism: int = unit_field("-", "streams per worker during the interval", 1)
    pipelining: int = unit_field("-", "pipelining depth during the interval", 1)
    valid: bool = unit_field("-", "False when the interval overlapped an outage", True)


@event("utility.eval", emitted_by="repro.core.agent.FalconAgent.decide")
class UtilityEvaluated(TraceEvent):
    """A sample was scored by the shared utility function."""

    session: str = unit_field("-", "session being scored", "")
    utility: float = unit_field("-", "utility value assigned to the interval", 0.0)
    throughput_bps: float = unit_field("bps", "throughput the score was computed from", 0.0)
    loss_rate: float = unit_field("-", "loss rate the score was computed from", 0.0)


@event("optimizer.decision", emitted_by="repro.core.agent.FalconAgent.decide")
class OptimizerDecision(TraceEvent):
    """The online search proposed the next parameter setting."""

    session: str = unit_field("-", "session being tuned", "")
    optimizer: str = unit_field("-", "optimizer class name (GD/BO/HC/...)", "")
    concurrency: int = unit_field("-", "chosen worker count", 0)
    parallelism: int = unit_field("-", "chosen streams per worker", 1)
    pipelining: int = unit_field("-", "chosen pipelining depth", 1)
    utility: float = unit_field("-", "utility of the interval that drove the choice", 0.0)


# ---------------------------------------------------------------------------
# Session / transfer events.
# ---------------------------------------------------------------------------


@event("session.start", emitted_by="repro.transfer.executor.FluidTransferNetwork.add_session")
class SessionStart(TraceEvent):
    """A transfer session was attached to the fluid executor."""

    session: str = unit_field("-", "session name", "")
    concurrency: int = unit_field("-", "initial worker count", 0)
    parallelism: int = unit_field("-", "initial streams per worker", 1)


@event("session.params", emitted_by="repro.transfer.session.TransferSession.set_params")
class SessionParamsChange(TraceEvent):
    """A session's parameter vector actually changed."""

    session: str = unit_field("-", "session being retuned", "")
    concurrency: int = unit_field("-", "new worker count", 0)
    parallelism: int = unit_field("-", "new streams per worker", 1)
    pipelining: int = unit_field("-", "new pipelining depth", 1)


@event("session.complete", emitted_by="repro.transfer.session.TransferSession.step")
class SessionComplete(TraceEvent):
    """A session delivered its whole dataset."""

    session: str = unit_field("-", "completed session", "")
    good_bytes: float = unit_field("bytes", "goodput bytes delivered in total", 0.0)
    lost_bytes: float = unit_field("bytes", "bytes lost/retransmitted in total", 0.0)
    files: int = unit_field("-", "files delivered", 0)


@event("worker.crash", emitted_by="repro.transfer.session.TransferSession.crash_worker")
class WorkerCrashed(TraceEvent):
    """A worker process died (injected fault or watchdog kill)."""

    session: str = unit_field("-", "session owning the worker", "")
    worker: int = unit_field("-", "worker slot index", 0)
    requeued: bool = unit_field("-", "True when an in-progress file was handed back", False)


@event("worker.stall", emitted_by="repro.transfer.session.TransferSession.stall_worker")
class WorkerStalled(TraceEvent):
    """A worker was frozen by an injected stall (hung process)."""

    session: str = unit_field("-", "session owning the worker", "")
    worker: int = unit_field("-", "worker slot index", 0)
    duration_s: float = unit_field("s", "injected stall length", 0.0)


# ---------------------------------------------------------------------------
# Fault events.
# ---------------------------------------------------------------------------


@event("fault.inject", emitted_by="repro.faults.injector.FaultInjector._record")
class FaultInjected(TraceEvent):
    """A planned fault took effect (outage, burst, brownout, crash...)."""

    kind: str = unit_field("-", "fault kind (outage, loss-burst, brownout, ...)", "")
    target: str = unit_field("-", "link/host/session/job the fault hit", "")
    detail: str = unit_field("-", "free-form magnitude/duration description", "")


@event("fault.recover", emitted_by="repro.faults.injector.FaultInjector._record")
class FaultRecovered(TraceEvent):
    """A fault's scheduled recovery restored the target."""

    kind: str = unit_field("-", "fault kind that ended", "")
    target: str = unit_field("-", "link/host restored", "")


@event("fault.skip", emitted_by="repro.faults.injector.FaultInjector._record")
class FaultSkipped(TraceEvent):
    """A planned fault found no eligible target and was skipped."""

    kind: str = unit_field("-", "fault kind that was skipped", "")
    target: str = unit_field("-", "requested target spec", "")
    reason: str = unit_field("-", "why no target was eligible", "")


# ---------------------------------------------------------------------------
# Service / job lifecycle events.
# ---------------------------------------------------------------------------


@event("job.submit", emitted_by="repro.service.service.FalconService.submit")
class JobSubmitted(TraceEvent):
    """A transfer job entered the service queue."""

    job: str = unit_field("-", "job name", "")
    job_id: int = unit_field("-", "service-assigned job id", 0)


@event("job.state", emitted_by="repro.service.service.FalconService._transition")
class JobStateChanged(TraceEvent):
    """A job moved between lifecycle states."""

    job: str = unit_field("-", "job name", "")
    job_id: int = unit_field("-", "service-assigned job id", 0)
    old_state: str = unit_field("-", "state before the transition", "")
    new_state: str = unit_field("-", "state after the transition", "")


@event("job.restart", emitted_by="repro.service.service.FalconService.crash_job")
class JobRestarted(TraceEvent):
    """A crashed job relaunched, resuming its remaining files."""

    job: str = unit_field("-", "job name", "")
    restart: int = unit_field("-", "restart ordinal (1 = first relaunch)", 0)
    max_restarts: int = unit_field("-", "restart budget from the retry policy", 0)


@event("job.retry", emitted_by="repro.service.service.FalconService._file_failed")
class RetryScheduled(TraceEvent):
    """A failed file got a backoff timer before re-entering the queue."""

    job: str = unit_field("-", "job the file belongs to", "")
    attempt: int = unit_field("-", "failed attempts so far (the next is attempt+1)", 0)
    delay_s: float = unit_field("s", "backoff delay before the requeue", 0.0)
    size_bytes: float = unit_field("bytes", "size of the file being retried", 0.0)


@event("job.watchdog_kill", emitted_by="repro.service.service.FalconService._schedule_watchdog")
class WatchdogKilled(TraceEvent):
    """The no-progress watchdog killed a stuck worker."""

    job: str = unit_field("-", "job whose worker was killed", "")
    worker: int = unit_field("-", "worker slot index", 0)


# ---------------------------------------------------------------------------
# Control-plane events (admission, scheduling, overload).
# ---------------------------------------------------------------------------


@event("job.admit", emitted_by="repro.service.control.ControlPlane.submit")
class JobAdmitted(TraceEvent):
    """The control plane accepted a job into a tenant queue."""

    tenant: str = unit_field("-", "submitting tenant", "")
    job: str = unit_field("-", "job name", "")
    job_id: int = unit_field("-", "service-assigned job id", 0)
    priority: str = unit_field("-", "scheduling class (best-effort/normal/high)", "")
    queue_depth: int = unit_field("-", "control-plane queue depth after admission", 0)


@event("job.shed", emitted_by="repro.service.control.ControlPlane._shed")
class JobShed(TraceEvent):
    """The control plane rejected a job with a typed overload reason."""

    tenant: str = unit_field("-", "submitting tenant", "")
    job: str = unit_field("-", "job name", "")
    job_id: int = unit_field("-", "service-assigned job id", 0)
    priority: str = unit_field("-", "scheduling class of the shed job", "")
    reason: str = unit_field(
        "-", "typed cause: quota / queue-full / breaker-open / degraded", ""
    )


@event("quota.exhausted", emitted_by="repro.service.control.ControlPlane.submit")
class QuotaExhausted(TraceEvent):
    """A tenant's admission token bucket ran dry at submit time."""

    tenant: str = unit_field("-", "tenant whose bucket ran dry", "")
    job: str = unit_field("-", "job that was refused a token", "")
    rate: float = unit_field("jobs/s", "sustained refill rate of the bucket", 0.0)


@event("breaker.state", emitted_by="repro.service.control.ControlPlane._breaker")
class BreakerStateChanged(TraceEvent):
    """A per-testbed circuit breaker changed state."""

    testbed: str = unit_field("-", "testbed the breaker guards", "")
    old_state: str = unit_field("-", "state before (closed/open/half-open)", "")
    new_state: str = unit_field("-", "state after (closed/open/half-open)", "")
    failures: int = unit_field("-", "consecutive failures on this testbed", 0)


@event("job.route", emitted_by="repro.service.sharding.ShardedControlPlane.submit")
class JobRouted(TraceEvent):
    """An admitted job was placed on a data-plane shard.

    Emitted only by multi-shard planes (a 1-shard plane stays
    trace-identical to the unsharded control plane, so routing a
    single shard is not an event).  ``job_id`` is unique per shard
    service, not globally — pair it with ``shard``.
    """

    tenant: str = unit_field("-", "submitting tenant", "")
    job: str = unit_field("-", "job name", "")
    job_id: int = unit_field("-", "shard-service job id (unique per shard)", 0)
    shard: str = unit_field("-", "data-plane shard the job landed on", "")
    policy: str = unit_field("-", "placement policy (by_testbed / by_tenant / least_loaded)", "")
    queue_depth: int = unit_field("-", "chosen shard's queue depth after admission", 0)


@event("shard.saturated", emitted_by="repro.service.sharding.ShardedControlPlane.submit")
class ShardSaturated(TraceEvent):
    """A job's home shard refused it at admission time.

    ``rerouted_to`` names the shard that took the job instead when
    rebalance-on-shed found one with room; empty means every candidate
    refused and the job was shed on its home shard.
    """

    shard: str = unit_field("-", "saturated home shard", "")
    reason: str = unit_field("-", "refusal: breaker-open / degraded / queue-full", "")
    queue_depth: int = unit_field("-", "home shard's queue depth at refusal", 0)
    rerouted_to: str = unit_field("-", "shard that absorbed the job ('' = shed)", "")


@event("job.preempt", emitted_by="repro.service.control.ControlPlane._preempt_one")
class JobPreempted(TraceEvent):
    """A running job was suspended for a higher-priority arrival."""

    tenant: str = unit_field("-", "tenant of the preempted job", "")
    job: str = unit_field("-", "preempted job name", "")
    job_id: int = unit_field("-", "service-assigned job id", 0)
    priority: str = unit_field("-", "class of the preempted job", "")
    by_priority: str = unit_field("-", "class of the arrival that displaced it", "")
