"""Event exporters: in-memory capture and deterministic JSONL files.

The JSONL format is one JSON object per line with ``type`` first and
the remaining keys in dataclass field order, serialised with compact
separators and Python's shortest-repr floats — so a trace's bytes are a
pure function of the emitted event sequence, and same-seed runs produce
byte-identical files (pinned by an integration test).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable

from repro.obs.events import TraceEvent, from_dict


class InMemoryExporter:
    """Collects emitted events in a list (tests, summary tables)."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def export(self, event: TraceEvent) -> None:
        """Append one event to :attr:`events`."""
        self.events.append(event)


class JsonlExporter:
    """Streams events to a JSONL file (or any text stream).

    Accepts either a path (opened and owned — call :meth:`close` or use
    the instance as a context manager) or an open text stream (borrowed,
    left open).
    """

    def __init__(self, target: str | Path | IO[str]) -> None:
        if isinstance(target, (str, Path)):
            self._stream: IO[str] = Path(target).open("w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False

    def export(self, event: TraceEvent) -> None:
        """Write one event as a single JSON line."""
        self._stream.write(encode_event(event))
        self._stream.write("\n")

    def close(self) -> None:
        """Flush, and close the stream if this exporter opened it."""
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def encode_event(event: TraceEvent) -> str:
    """One event as its canonical JSON line (no trailing newline).

    Keys keep dataclass field order (``type`` first); separators are
    compact; floats use Python's shortest repr — all fixed so the
    encoding is byte-stable.
    """
    return json.dumps(event.to_dict(), separators=(",", ":"))


def read_events(source: str | Path | Iterable[str]) -> list[TraceEvent]:
    """Parse a JSONL trace back into typed event records.

    ``source`` is a file path or an iterable of lines; blank lines are
    skipped.  Round-trips exactly: ``read_events(path)`` equals the
    emitted sequence (pinned by the exporter unit tests).
    """
    if isinstance(source, (str, Path)):
        with Path(source).open("r", encoding="utf-8") as fh:
            lines = fh.readlines()
    else:
        lines = list(source)
    return [from_dict(json.loads(line)) for line in lines if line.strip()]
