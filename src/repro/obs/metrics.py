"""Deterministic metrics registry: counters, gauges, histograms.

Metrics complement the event trace: events answer *what happened when*,
metrics answer *how much in total*.  Every instrument lives in one
:class:`Metrics` registry keyed by a dotted name (``engine.steps``,
``faults.injected``); :meth:`Metrics.snapshot` renders the whole
registry as a plain dict with sorted keys, so two same-seed runs
produce byte-identical snapshots.

No wall-clock anywhere — histograms record whatever quantity the call
site observes (utilities, delays in simulated seconds), never host
timing, keeping snapshots reproducible across machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Counter:
    """A monotonically increasing total (events, bytes, decisions)."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (same unit as the counter's name implies)."""
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time level (active sessions, queue depth)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge with the latest observed level."""
        self.value = float(value)


@dataclass
class Histogram:
    """Summary statistics over observed values (count/sum/min/max).

    Exact quantiles would require retaining every observation; the
    four-field summary is enough for overhead tables and regression
    pins while staying O(1) per observation and fully deterministic.
    """

    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        """Fold one observation (unit defined by the histogram's name)."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0


class Metrics:
    """Registry of named instruments with a deterministic snapshot.

    Instruments are created on first use (``inc``/``set``/``observe``
    auto-register), so call sites never pre-declare anything.  A name
    must keep one instrument kind for the registry's lifetime.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created if absent)."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created if absent)."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created if absent)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        self.histogram(name).observe(value)

    def snapshot(self) -> dict[str, Any]:
        """The registry as nested plain dicts with sorted keys.

        Shape: ``{"counters": {name: value}, "gauges": {name: value},
        "histograms": {name: {count, total, min, max, mean}}}`` —
        JSON-ready and byte-stable for same-seed runs.
        """
        return {
            "counters": {k: self._counters[k].value for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {
                k: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min if h.count else 0.0,
                    "max": h.max if h.count else 0.0,
                    "mean": h.mean,
                }
                for k, h in ((k, self._histograms[k]) for k in sorted(self._histograms))
            },
        }
