"""The ambient tracing bus: ``Tracer``, ``current_tracer``, ``use_tracing``.

Mirrors the runner's ambient-configuration pattern
(:func:`repro.runner.use_runner`): instrumentation sites never receive
a tracer argument — they ask :func:`current_tracer` and skip all work
when it returns ``None``.  That single ``None`` check is the entire
disabled-path cost, which is how the <3% off-overhead budget on the
hot-path bench is met (pinned by ``benchmarks/bench_obs.py``).

Timestamps come from the simulation clock, never the wall clock: the
engine pushes its ``now`` into :attr:`Tracer.now` as it advances, so
events emitted from inside callbacks inherit the correct sim time and
same-seed traces are byte-identical.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, Optional, Protocol, Type

from repro.obs.events import TraceEvent
from repro.obs.metrics import Metrics


class Exporter(Protocol):
    """Anything that can receive emitted events (JSONL file, memory)."""

    def export(self, event: TraceEvent) -> None:
        """Record one emitted event."""
        ...


class Tracer:
    """Event sink plus metrics registry for one traced run.

    ``now`` is the current simulation time in seconds; the engine
    updates it as the clock advances, and :meth:`emit` stamps events
    with it unless the call site passes an explicit ``t``.
    """

    __slots__ = ("exporters", "metrics", "now")

    def __init__(self, *exporters: Exporter, metrics: Metrics | None = None) -> None:
        self.exporters: tuple[Exporter, ...] = exporters
        self.metrics = metrics if metrics is not None else Metrics()
        #: Simulation clock, seconds; pushed by the engine as it advances.
        self.now = 0.0

    def emit(self, cls: Type[TraceEvent], t: float | None = None, **fields: Any) -> TraceEvent:
        """Build one ``cls`` event and hand it to every exporter.

        The event is stamped with :attr:`now` (simulation seconds)
        unless ``t`` overrides it — e.g. a completion that lands
        mid-step at ``now + dt``.  Returns the frozen record.
        """
        event = cls(time=self.now if t is None else t, **fields)
        for exporter in self.exporters:
            exporter.export(event)
        return event


# The ambient tracer.  ``None`` means tracing is off: instrumentation
# sites see ``current_tracer() is None`` and do no further work.
_ACTIVE: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The ambient tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE


@contextmanager
def use_tracing(*exporters: Exporter, metrics: Metrics | None = None) -> Iterator[Tracer]:
    """Enable tracing for a ``with`` block, yielding the live tracer.

    Nested blocks stack: the inner tracer wins until its block exits,
    then the outer one is restored — matching ``use_runner``.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = Tracer(*exporters, metrics=metrics)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
