"""Evaluation harness: declarative tasks, fan-out, result caching.

Every paper artifact is a loop over independent deterministic
simulations; this package turns those loops into data.  An experiment
*emits* :class:`~repro.runner.task.SimTask` specs and the harness
decides how they execute: in-process (the default — identical to the
old inline loops), across a process pool (``--jobs N``), or straight
out of the content-addressed result cache when code, config, and
payload are all unchanged.

Import surface::

    from repro.runner import (
        SimTask, task, derive_seed,          # describing work
        run_tasks, use_runner,               # executing it
        ResultCache, task_key, code_fingerprint,  # caching it
    )

``repro.runner.suite`` (experiment-level tasks for ``repro run --all``)
is imported lazily by its consumers — it depends on the experiment
registry and would create an import cycle here.
"""

from repro.runner.cache import MISS, CacheStats, ResultCache, default_cache_dir, task_key
from repro.runner.executor import (
    RunnerConfig,
    TaskFailure,
    TaskReport,
    current_config,
    run_tasks,
    use_runner,
)
from repro.runner.fingerprint import code_fingerprint
from repro.runner.progress import ProgressWriter
from repro.runner.seeds import derive_seed
from repro.runner.task import SimTask, TaskSpecError, callable_path, resolve_callable, task

__all__ = [
    "MISS",
    "CacheStats",
    "ProgressWriter",
    "ResultCache",
    "RunnerConfig",
    "SimTask",
    "TaskFailure",
    "TaskReport",
    "TaskSpecError",
    "callable_path",
    "code_fingerprint",
    "current_config",
    "default_cache_dir",
    "derive_seed",
    "resolve_callable",
    "run_tasks",
    "task",
    "task_key",
    "use_runner",
]
