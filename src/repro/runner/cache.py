"""Content-addressed on-disk result cache.

A cache entry is addressed by a digest of ``(task payload, code
fingerprint)`` — there is no invalidation protocol because there is
nothing to invalidate: change the task, its config, or any source file
and the key simply changes.  Entries are single pickle files written
atomically (temp file + ``os.replace``), so concurrent writers — pool
workers caching their inner tasks — can never expose a torn entry.
Unreadable, truncated, or mismatched entries are treated as misses.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.runner.fingerprint import code_fingerprint
from repro.runner.task import SimTask, payload_fingerprint

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Sentinel distinguishing "miss" from a legitimately-None result.
MISS = object()

#: Bump when the entry layout changes — old entries become misses.
_ENTRY_VERSION = 1


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``./.repro-cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


def task_key(spec: SimTask, code_fp: str | None = None) -> str:
    """Content address of one task's result.

    Covers the task payload (callable path, kwargs — including any
    ``SimConfig`` the task carries — and seed) plus the code
    fingerprint of the whole ``repro`` package.  The cosmetic ``label``
    is excluded.
    """
    h = hashlib.sha256()
    h.update(b"repro-result-v%d\0" % _ENTRY_VERSION)
    h.update((code_fp if code_fp is not None else code_fingerprint()).encode())
    h.update(b"\0")
    payload_fingerprint(h, spec)
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    def summary(self) -> str:
        """One-line accounting for CLI output."""
        return f"{self.hits} hit(s), {self.misses} miss(es), {self.writes} write(s)"


@dataclass
class ResultCache:
    """Pickle-per-entry result store under ``root``."""

    root: Path = field(default_factory=default_cache_dir)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        """Entry path: two-level fan-out keeps directories small."""
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Any:
        """The cached result for ``key``, or :data:`MISS`.

        Every failure mode — absent file, partial write from a killed
        process, unpicklable bytes, an entry whose recorded key does
        not match its address — degrades to a miss; the cache never
        raises on read.
        """
        path = self.path_for(key)
        try:
            with path.open("rb") as fh:
                entry = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return MISS
        except Exception:
            # Corrupt or foreign file: drop it so the rewritten entry
            # is clean, and recompute.
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return MISS
        if not isinstance(entry, dict) or entry.get("key") != key:
            self.stats.corrupt += 1
            self.stats.misses += 1
            return MISS
        self.stats.hits += 1
        return entry["result"]

    def put(self, key: str, result: Any, *, task: SimTask | None = None, elapsed: float = 0.0) -> None:
        """Store ``result`` under ``key`` (atomic, last-writer-wins).

        ``elapsed`` is the task's wall-clock run time in seconds, kept
        as entry metadata.  Unpicklable results are skipped silently —
        caching is an optimisation and must never fail a run that would
        otherwise succeed.
        """
        entry = {
            "key": key,
            "result": result,
            "fn": task.fn if task else "",
            "label": task.label if task else "",
            "elapsed": elapsed,
        }
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("wb") as fh:
                pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
            self.stats.writes += 1
        except (OSError, pickle.PickleError, AttributeError, TypeError):
            # AttributeError/TypeError: pickle raises these (not just
            # PicklingError) for closures and other unpicklables.
            try:
                tmp.unlink()
            except OSError:
                pass
