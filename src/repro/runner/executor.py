"""Task execution: cache front, serial fallback, process fan-out.

``run_tasks`` is the single entry point every experiment goes through.
Execution mode is ambient configuration (:func:`use_runner`), not a
parameter threaded through twenty ``run()`` signatures — the CLI
establishes jobs/cache once and the experiment code stays declarative.

Three guarantees hold in every mode:

* **ordered collection** — results come back in task order, never
  completion order, so table rows don't depend on scheduling;
* **determinism** — a task's seed and payload fully determine its
  result; the pool only changes *when* work happens, never *what*;
* **worker serialisation** — a pool worker that itself calls
  ``run_tasks`` (an experiment fanning out its sweep points while the
  suite fans out experiments) executes serially instead of spawning a
  nested pool.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.runner.cache import MISS, ResultCache, task_key
from repro.runner.task import SimTask


@dataclass(frozen=True)
class TaskReport:
    """Progress event for one finished task."""

    index: int
    total: int
    label: str
    elapsed: float
    cached: bool


ProgressFn = Callable[[TaskReport], None]


@dataclass(frozen=True)
class RunnerConfig:
    """How ``run_tasks`` should execute: fan-out width and cache."""

    jobs: int = 1
    cache: ResultCache | None = None
    progress: ProgressFn | None = None


# The ambient configuration.  ``None`` means the default: serial, no
# cache — library callers (tests importing an experiment's run())
# get exactly the semantics of an inline loop.
_ACTIVE: RunnerConfig | None = None

#: Set in pool workers: forces nested run_tasks calls to run serially.
_IN_WORKER = False


def current_config() -> RunnerConfig:
    """The ambient runner configuration (default: serial, uncached)."""
    return _ACTIVE if _ACTIVE is not None else RunnerConfig()


@contextmanager
def use_runner(
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: ProgressFn | None = None,
) -> Iterator[RunnerConfig]:
    """Establish the ambient execution mode for a ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = RunnerConfig(jobs=max(1, int(jobs)), cache=cache, progress=progress)
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous


# ---------------------------------------------------------------------------
# Worker-side plumbing (must be top-level importable for spawn).
# ---------------------------------------------------------------------------


def _worker_init(cache_root: str | None) -> None:
    """Pool-worker initialiser: serial nested execution, own cache handle.

    Runs in the worker after fork/spawn.  Resets the ambient config the
    fork may have copied (a worker must never open a nested pool) while
    keeping inner-task caching alive so even partial sweeps warm the
    cache.
    """
    global _ACTIVE, _IN_WORKER
    _IN_WORKER = True
    cache = ResultCache(cache_root) if cache_root else None
    _ACTIVE = RunnerConfig(jobs=1, cache=cache, progress=None)


def _execute_spec(spec: SimTask) -> tuple[Any, float]:
    """Run one task in a worker, returning (result, wall seconds)."""
    start = time.perf_counter()
    result = spec.execute()
    return result, time.perf_counter() - start


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where the platform has it (cheap), spawn elsewhere.

    Tasks are declarative — a string path plus picklable kwargs — so
    spawn works identically, just with a slower cold start.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class TaskFailure(RuntimeError):
    """A task raised; carries the label so fan-out errors are traceable."""


# ---------------------------------------------------------------------------
# The entry point.
# ---------------------------------------------------------------------------


def run_tasks(
    tasks: Sequence[SimTask],
    *,
    jobs: int | None = None,
    cache: ResultCache | None | Any = ...,
    progress: ProgressFn | None | Any = ...,
) -> list[Any]:
    """Execute ``tasks``, returning their results in task order.

    Explicit keyword arguments override the ambient :func:`use_runner`
    configuration; the ellipsis default means "inherit".  The cache is
    consulted first (content-addressed, so a hit is always valid);
    misses execute serially when ``jobs == 1`` — or inside a pool
    worker — and through a ``ProcessPoolExecutor`` otherwise.
    """
    config = current_config()
    effective_jobs = config.jobs if jobs is None else max(1, int(jobs))
    effective_cache = config.cache if cache is ... else cache
    effective_progress = config.progress if progress is ... else progress
    if _IN_WORKER:
        effective_jobs = 1

    total = len(tasks)
    results: list[Any] = [MISS] * total

    def report(index: int, elapsed: float, cached: bool) -> None:
        if effective_progress is not None:
            effective_progress(
                TaskReport(
                    index=index,
                    total=total,
                    label=tasks[index].display(),
                    elapsed=elapsed,
                    cached=cached,
                )
            )

    # Cache front: replay whatever is already known.
    keys: list[str | None] = [None] * total
    pending: list[int] = []
    for i, spec in enumerate(tasks):
        if effective_cache is not None:
            keys[i] = task_key(spec)
            hit = effective_cache.get(keys[i])
            if hit is not MISS:
                results[i] = hit
                report(i, 0.0, cached=True)
                continue
        pending.append(i)

    if not pending:
        return results

    def record(i: int, value: Any, elapsed: float) -> None:
        results[i] = value
        if effective_cache is not None and keys[i] is not None:
            effective_cache.put(keys[i], value, task=tasks[i], elapsed=elapsed)
        report(i, elapsed, cached=False)

    if effective_jobs == 1 or len(pending) == 1:
        for i in pending:
            try:
                value, elapsed = _execute_spec(tasks[i])
            except Exception as exc:
                raise TaskFailure(f"task {tasks[i].display()!r} failed: {exc}") from exc
            record(i, value, elapsed)
        return results

    cache_root = str(effective_cache.root) if effective_cache is not None else None
    workers = min(effective_jobs, len(pending))
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_pool_context(),
        initializer=_worker_init,
        initargs=(cache_root,),
    ) as pool:
        futures = {pool.submit(_execute_spec, tasks[i]): i for i in pending}
        outstanding = set(futures)
        while outstanding:
            done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
            for future in done:
                i = futures[future]
                try:
                    value, elapsed = future.result()
                except Exception as exc:
                    for other in outstanding:
                        other.cancel()
                    raise TaskFailure(
                        f"task {tasks[i].display()!r} failed: {exc}"
                    ) from exc
                record(i, value, elapsed)
    return results
