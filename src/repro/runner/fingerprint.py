"""Code fingerprint: one hash over every source file of the package.

Cached results are only safe to replay while the code that produced
them is unchanged.  Rather than track which modules a task imports
(fragile), the cache keys include a single digest of *all* ``.py``
files under the ``repro`` package — any edit anywhere invalidates
everything, which is the conservative direction.  Hashing ~100 small
files costs a few milliseconds and is memoised per process.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

#: Memoised digests, keyed by resolved package root.
_CACHE: dict[str, str] = {}


def package_root() -> Path:
    """Directory of the installed ``repro`` package."""
    import repro

    return Path(repro.__file__).resolve().parent


def code_fingerprint(root: Path | str | None = None) -> str:
    """Hex digest over every ``*.py`` file under ``root``.

    The digest covers relative paths *and* contents, so renaming a
    module changes it even when no bytes moved.  Results are memoised:
    within one process the tree is assumed frozen (editing source while
    an experiment sweep is mid-flight is out of scope).
    """
    base = Path(root).resolve() if root is not None else package_root()
    key = str(base)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    for path in sorted(base.rglob("*.py")):
        h.update(str(path.relative_to(base)).encode("utf-8"))
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    digest = h.hexdigest()
    _CACHE[key] = digest
    return digest


def clear_memo() -> None:
    """Forget memoised digests (tests edit synthetic trees in place)."""
    _CACHE.clear()
