"""Serialised progress output for parallel runs.

``print(..., file=sys.stderr)`` issues two writes per call (the text,
then the newline); when several threads report task completions
concurrently under ``--jobs N`` the halves interleave into garbled
lines.  :class:`ProgressWriter` fixes this by always emitting one
complete, newline-terminated line per write under a lock.
"""

from __future__ import annotations

import sys
import threading
from typing import IO

from repro.runner.executor import TaskReport


class ProgressWriter:
    """Writes one complete line per progress event, never fragments.

    Instances are callable with a :class:`TaskReport`, so a writer can
    be passed directly as the ``progress`` argument of ``use_runner`` /
    ``run_tasks``.
    """

    def __init__(self, stream: IO[str] | None = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()

    def line(self, text: str) -> None:
        """Emit ``text`` as one atomic newline-terminated write."""
        with self._lock:
            self._stream.write(text + "\n")
            self._stream.flush()

    def __call__(self, report: TaskReport) -> None:
        """Format and emit one task-completion report.

        ``report.elapsed`` is wall-clock seconds; cache replays show
        ``cache`` instead of a duration.
        """
        how = "cache" if report.cached else f"{report.elapsed:.1f}s"
        self.line(f"[{report.index + 1}/{report.total}] {report.label} ({how})")
