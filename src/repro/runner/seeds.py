"""Deterministic per-task seed derivation.

Fan-out must not change results, so a task's seed can never depend on
*when* or *where* it runs — only on what it is.  ``derive_seed`` maps a
base seed plus any printable labels to a stable 31-bit seed via a keyed
hash, so experiments can give every task its own independent stream
while serial, parallel, and cached executions all agree.
"""

from __future__ import annotations

import hashlib

#: Seeds stay below 2**31 so they are valid for every RNG constructor
#: in the tree (numpy accepts wider, but int32 consumers may not).
_SEED_SPACE = 2**31 - 1


def derive_seed(base: int, *parts: object) -> int:
    """A stable seed for the task identified by ``base`` + ``parts``.

    ``parts`` are rendered with :func:`repr`, so use primitives (str,
    int, float, tuple) whose repr is stable across processes.

    >>> derive_seed(0, "fig09", "XSEDE") == derive_seed(0, "fig09", "XSEDE")
    True
    >>> derive_seed(0, "fig09", "XSEDE") != derive_seed(1, "fig09", "XSEDE")
    True
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(base)).encode("utf-8"))
    for part in parts:
        h.update(b"\x1f")
        h.update(repr(part).encode("utf-8"))
    return int.from_bytes(h.digest(), "big") % _SEED_SPACE
