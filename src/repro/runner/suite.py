"""Suite-level execution: every experiment as one cacheable task.

``repro run --all`` has two levels of fan-out.  Each experiment's own
``run()`` emits fine-grained tasks (sweep points, per-network runs)
through :func:`~repro.runner.executor.run_tasks`; the suite then treats
*whole experiments* as tasks too, so independent figures regenerate
concurrently and a warm cache replays the entire result set from one
entry per experiment.  Workers never nest pools — an experiment running
inside a suite worker executes its inner tasks serially (but still
reads/writes the shared content-addressed cache).

The *quick profile* is the CI-sized parameterisation: same experiments,
same code paths, reduced horizons.  It lives here — next to the task
boundary — so every consumer (CLI smoke, benchmarks) reduces durations
the same way and their cache entries are shared.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.runner.cache import ResultCache
from repro.runner.executor import TaskReport, run_tasks
from repro.runner.task import task

#: Reduced-duration run() overrides per experiment (the quick profile).
QUICK_PROFILE: dict[str, dict[str, Any]] = {
    "table1": {},
    "fig01": {"measure_time": 5.0},
    "fig02": {"settle": 60.0},
    "fig04": {"measure_time": 6.0},
    "fig06": {"duration": 120.0},
    "fig07": {"duration": 120.0},
    "fig08": {"join_at": 80.0, "duration": 200.0},
    "fig09": {"duration": 90.0},
    "fig10": {"duration": 90.0},
    "fig11": {"phase": 60.0},
    "fig12": {"phase": 60.0},
    "fig13": {"phase": 60.0},
    "fig14": {"duration": 90.0},
    "fig15": {"duration": 120.0},
    "fig16": {"falcon_join": 60.0, "settle": 150.0},
    "related-work": {"duration": 150.0},
    "bbr": {"duration": 150.0},
    "robustness": {"cycle": 60.0, "cycles": 2},
    "overhead": {"duration": 120.0},
    "fault-tolerance": {"files": 120, "horizon": 200.0},
    # Horizon stays >= 120 s: shorter windows can draw an empty seed-0
    # chaos plan, and the quick flaky-network leg must actually flake.
    "open-workload": {"horizon": 120.0, "rate_per_hour": 2400.0},
}


def render_experiment(name: str, quick: bool = False) -> str:
    """Run one registered experiment and return its rendered output.

    This is the suite's task callable: top-level importable, fed only
    primitives, returning a plain string — the exact bytes the
    byte-identical guarantee is stated over.
    """
    from repro.experiments import REGISTRY

    module_path = REGISTRY.get(name)
    if module_path is None:
        raise KeyError(f"unknown experiment {name!r}")
    module = importlib.import_module(module_path)
    kwargs = QUICK_PROFILE.get(name, {}) if quick else {}
    result = module.run(**kwargs)
    render = getattr(result, "render", None)
    return render() if callable(render) else str(result)


@dataclass(frozen=True)
class SuiteOutcome:
    """One experiment's rendered output plus how it was obtained."""

    name: str
    output: str
    elapsed: float
    cached: bool


def run_suite(
    names: Sequence[str],
    *,
    quick: bool = False,
    jobs: int = 1,
    cache: ResultCache | None = None,
    progress: Callable[[TaskReport], None] | None = None,
) -> list[SuiteOutcome]:
    """Run experiments as tasks, returning outcomes in request order."""
    specs = [
        task(render_experiment, name=name, quick=quick, label=name) for name in names
    ]
    timings: dict[int, TaskReport] = {}

    def capture(report: TaskReport) -> None:
        timings[report.index] = report
        if progress is not None:
            progress(report)

    outputs = run_tasks(specs, jobs=jobs, cache=cache, progress=capture)
    return [
        SuiteOutcome(
            name=name,
            output=output,
            elapsed=timings[i].elapsed if i in timings else 0.0,
            cached=timings[i].cached if i in timings else False,
        )
        for i, (name, output) in enumerate(zip(names, outputs))
    ]
