"""The declarative task model the evaluation harness executes.

A :class:`SimTask` is a *picklable description* of one independent
simulation: the dotted path of a top-level callable, keyword arguments,
and an optional seed.  Keeping tasks declarative (no closures, no live
engines) is what makes the three execution modes interchangeable — the
same payload can run in-process, be shipped to a pool worker, or be
hashed into a cache key.

Payloads are restricted to values with a *canonical byte encoding*:
primitives, lists/tuples, string-keyed dicts, dataclasses of such
values, and numpy arrays.  :func:`payload_fingerprint` feeds that
encoding into a hash; anything it cannot encode deterministically is a
:class:`TaskSpecError` at task-construction time rather than a silent
cache-key collision later.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Hashable

import numpy as np


class TaskSpecError(TypeError):
    """A task payload that cannot be executed or fingerprinted."""


# ---------------------------------------------------------------------------
# Callable <-> dotted path.
# ---------------------------------------------------------------------------


def callable_path(fn: Callable[..., Any] | str) -> str:
    """``"module:qualname"`` for a top-level importable callable.

    Lambdas, nested functions, and bound methods are rejected: a task
    must be reconstructible in a worker process from its path alone.
    """
    if isinstance(fn, str):
        resolve_callable(fn)  # validate eagerly
        return fn
    name = getattr(fn, "__qualname__", None)
    module = getattr(fn, "__module__", None)
    if not name or not module:
        raise TaskSpecError(f"task callable {fn!r} has no importable name")
    if name == "<lambda>" or "<locals>" in name or "." in name:
        raise TaskSpecError(
            f"task callable {module}.{name} is not a top-level function; "
            "process fan-out needs importable (picklable) callables"
        )
    if module == "__main__":
        raise TaskSpecError(
            f"task callable __main__.{name} is only importable in this entry "
            "point; move it into a real module so workers can resolve it"
        )
    resolved = getattr(import_module(module), name, None)
    if resolved is not fn:
        raise TaskSpecError(
            f"task callable {module}.{name} does not resolve to itself on import"
        )
    return f"{module}:{name}"


def resolve_callable(path: str) -> Callable[..., Any]:
    """Import the callable a :class:`SimTask` references."""
    module_path, _, name = path.partition(":")
    if not module_path or not name:
        raise TaskSpecError(f"malformed task path {path!r} (want 'module:function')")
    try:
        fn = getattr(import_module(module_path), name, None)
    except ImportError as exc:
        raise TaskSpecError(f"cannot import task module {module_path!r}") from exc
    if not callable(fn):
        raise TaskSpecError(f"task path {path!r} does not name a callable")
    return fn


# ---------------------------------------------------------------------------
# Canonical payload encoding.
# ---------------------------------------------------------------------------


def _feed(h: Any, obj: Any) -> None:
    """Feed a canonical byte encoding of ``obj`` into hasher ``h``.

    Type tags keep distinct shapes distinct (``1`` vs ``1.0`` vs
    ``"1"``), and containers encode their length so concatenations
    cannot collide.
    """
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, np.generic):
        # Before the scalar branches: numpy scalars subclass Python
        # numbers (np.float64 is a float) but repr differently, so they
        # must decay to the equivalent Python value first.
        _feed(h, obj.item())
    elif isinstance(obj, bool):  # before int: bool is an int subclass
        h.update(b"b1" if obj else b"b0")
    elif isinstance(obj, int):
        h.update(b"i" + str(obj).encode())
    elif isinstance(obj, float):
        h.update(b"f" + repr(obj).encode())
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        h.update(b"s" + str(len(raw)).encode() + b":" + raw)
    elif isinstance(obj, bytes):
        h.update(b"y" + str(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, (list, tuple)):
        h.update(b"l" + str(len(obj)).encode() + b"[")
        for item in obj:
            _feed(h, item)
        h.update(b"]")
    elif isinstance(obj, dict):
        if not all(isinstance(k, str) for k in obj):
            raise TaskSpecError("task payload dicts must use string keys")
        h.update(b"d" + str(len(obj)).encode() + b"{")
        for key in sorted(obj):
            _feed(h, key)
            _feed(h, obj[key])
        h.update(b"}")
    elif isinstance(obj, np.ndarray):
        h.update(b"a" + obj.dtype.str.encode() + str(obj.shape).encode())
        h.update(np.ascontiguousarray(obj).tobytes())
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        h.update(b"D" + f"{cls.__module__}.{cls.__qualname__}".encode() + b"(")
        for f in dataclasses.fields(obj):
            _feed(h, f.name)
            _feed(h, getattr(obj, f.name))
        h.update(b")")
    else:
        raise TaskSpecError(
            f"cannot canonically encode task payload value of type "
            f"{type(obj).__module__}.{type(obj).__qualname__}; "
            "use primitives, containers, dataclasses, or numpy arrays"
        )


def payload_fingerprint(h: Any, spec: "SimTask") -> None:
    """Feed a task's identity (fn, kwargs, seed) into hasher ``h``."""
    _feed(h, spec.fn)
    _feed(h, spec.kwargs)
    _feed(h, spec.seed)


# ---------------------------------------------------------------------------
# The task itself.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SimTask:
    """One independent unit of simulation work.

    ``fn`` is a ``"module:function"`` path; ``kwargs`` its declarative
    keyword arguments; ``seed`` (when set) is passed as the ``seed=``
    keyword.  ``label`` is cosmetic — progress output only — and is
    deliberately excluded from the cache key.
    """

    fn: str
    kwargs: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None
    label: str = ""

    def call_kwargs(self) -> dict[str, Any]:
        """The keyword arguments the callable actually receives."""
        if self.seed is None:
            return dict(self.kwargs)
        return {**self.kwargs, "seed": self.seed}

    def execute(self) -> Any:
        """Run the task in the current process."""
        return resolve_callable(self.fn)(**self.call_kwargs())

    def display(self) -> str:
        """Human-readable name for progress lines."""
        return self.label or self.fn.partition(":")[2] or self.fn


def task(
    fn: Callable[..., Any] | str,
    *,
    seed: int | None = None,
    label: str | None = None,
    **kwargs: Any,
) -> SimTask:
    """Build a validated :class:`SimTask`.

    Validation happens here, at construction: the callable must be
    top-level importable and every kwarg canonically encodable, so a
    bad spec fails where it is written, not inside a pool worker.
    """
    path = callable_path(fn)
    spec = SimTask(fn=path, kwargs=kwargs, seed=seed, label=label or "")
    probe = _NullHasher()
    payload_fingerprint(probe, spec)  # raises TaskSpecError on bad payloads
    return spec


class _NullHasher:
    """Hash-shaped sink used to validate payload encodability."""

    def update(self, _data: Hashable) -> None:
        pass
