"""Falcon as a transfer service.

The paper's conclusion sketches "a cloud-based web service to deploy
Falcon ... eliminating the tedious installation process".  This package
is that deployment story as a library: a :class:`FalconService` accepts
transfer *jobs* (dataset + endpoints), runs at most ``max_active`` at a
time (FIFO queue), drives each with its own Falcon agent, and produces
a completion report per job.
"""

from repro.service.jobs import JobState, TransferJob, TransferReport
from repro.service.policy import RetryPolicy
from repro.service.service import FalconService

__all__ = ["FalconService", "JobState", "RetryPolicy", "TransferJob", "TransferReport"]
