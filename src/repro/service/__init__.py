"""Falcon as a transfer service.

The paper's conclusion sketches "a cloud-based web service to deploy
Falcon ... eliminating the tedious installation process".  This package
is that deployment story as a library: a :class:`FalconService` accepts
transfer *jobs* (dataset + endpoints), runs at most ``max_active`` at a
time (FIFO queue), drives each with its own Falcon agent, and produces
a completion report per job.

For multi-tenant traffic, wrap the service in a
:class:`~repro.service.control.ControlPlane`: per-tenant admission
quotas, weighted fair scheduling, priority preemption, circuit
breakers, and bounded-queue load shedding with typed rejections.  The
control plane is opt-in — a bare service behaves exactly as before.

To scale past one engine, shard the data plane: ``make_shards(n)``
builds N fully independent engine+network+service triples and a
:class:`~repro.service.sharding.ShardedControlPlane` routes admitted
jobs across them with deterministic placement policies, shard-local
breaker/fault scoping, and rebalance-on-shed.  A 1-shard plane is
bit-identical to the unsharded control plane.
"""

from repro.service.breaker import BreakerState, CircuitBreaker
from repro.service.control import ControlPlane, ControlPolicy
from repro.service.jobs import JobState, Priority, TransferJob, TransferReport
from repro.service.policy import RetryPolicy
from repro.service.service import FalconService
from repro.service.sharding import DataShard, ShardedControlPlane, ShardRouter, make_shards
from repro.service.tenancy import TenantSpec, TokenBucket

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "ControlPlane",
    "ControlPolicy",
    "DataShard",
    "FalconService",
    "ShardRouter",
    "ShardedControlPlane",
    "make_shards",
    "JobState",
    "Priority",
    "RetryPolicy",
    "TenantSpec",
    "TokenBucket",
    "TransferJob",
    "TransferReport",
]
