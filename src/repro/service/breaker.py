"""Per-testbed circuit breaker: stop feeding jobs to a failing endpoint.

A testbed that fails ``threshold`` jobs in a row is probably down, not
unlucky — every further job sent there burns a slot for the whole
retry/restart budget before failing too.  The breaker cuts that off:

* **CLOSED** — healthy; jobs flow normally.  ``threshold`` consecutive
  FAILED jobs trip it to OPEN.
* **OPEN** — no admissions for ``cooldown_s`` simulated seconds; jobs
  bound for this testbed are shed at submit time with reason
  ``breaker-open``.
* **HALF_OPEN** — after the cooldown, exactly one *probe* job is let
  through.  Success closes the breaker; failure re-opens it for
  another full cooldown.

All clocking is simulation time passed in by the caller, so the
breaker is as deterministic as the engine driving it.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional


class BreakerState(enum.Enum):
    """Health gate for one testbed."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probes.

    Parameters
    ----------
    threshold:
        Consecutive FAILED jobs (count) that trip CLOSED -> OPEN.
    cooldown_s:
        Simulated seconds an OPEN breaker rejects before allowing a
        probe.
    on_change:
        Optional ``(old, new, now)`` callback fired on every state
        change (the control plane emits a typed event from it).
    """

    def __init__(
        self,
        threshold: int,
        cooldown_s: float,
        on_change: Optional[Callable[[BreakerState, BreakerState, float], None]] = None,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown_s <= 0.0:
            raise ValueError("cooldown_s must be positive")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.on_change = on_change
        self.state = BreakerState.CLOSED
        #: Consecutive failures since the last success (count).
        self.failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False

    # -- queries ---------------------------------------------------------------

    def admits(self, now: float) -> bool:
        """Non-consuming check: could a job for this testbed queue now?

        False only while hard-OPEN inside the cooldown window.  A
        breaker whose cooldown has elapsed admits the job — dispatch
        will consume the probe via :meth:`allow`.
        """
        if self.state is not BreakerState.OPEN:
            return True
        return now - self._opened_at >= self.cooldown_s

    def allow(self, now: float) -> bool:
        """Consuming check at dispatch time: may this job start?

        OPEN past its cooldown transitions to HALF_OPEN and admits the
        caller as the single probe; HALF_OPEN with a probe already in
        flight refuses.
        """
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now - self._opened_at < self.cooldown_s:
                return False
            self._set(BreakerState.HALF_OPEN, now)
            self._probe_in_flight = True
            return True
        # HALF_OPEN: one probe at a time.
        if self._probe_in_flight:
            return False
        self._probe_in_flight = True
        return True

    # -- outcomes --------------------------------------------------------------

    def record(self, now: float, failed: bool, probe: bool = False) -> None:
        """Account one finished job (COMPLETED or FAILED) for this testbed.

        In HALF_OPEN only the *probe* job's verdict moves the state —
        a straggler admitted before the breaker opened must not close
        (or re-open) it on the probe's behalf.
        """
        if failed:
            self.failures += 1
            if self.state is BreakerState.HALF_OPEN and probe:
                # Probe failed: back to a full cooldown.
                self._probe_in_flight = False
                self._set(BreakerState.OPEN, now)
                self._opened_at = now
            elif self.state is BreakerState.CLOSED and self.failures >= self.threshold:
                self._set(BreakerState.OPEN, now)
                self._opened_at = now
        else:
            self.failures = 0
            if self.state is BreakerState.HALF_OPEN and probe:
                self._probe_in_flight = False
                self._set(BreakerState.CLOSED, now)
                self._opened_at = None

    def release_probe(self) -> None:
        """The in-flight probe ended without a verdict (cancelled/preempted)."""
        self._probe_in_flight = False

    # -- internals -------------------------------------------------------------

    def _set(self, state: BreakerState, now: float) -> None:
        old = self.state
        if old is state:
            return
        self.state = state
        if self.on_change is not None:
            self.on_change(old, state, now)
