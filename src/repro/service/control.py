"""Multi-tenant control plane: admission, fair scheduling, overload.

:class:`ControlPlane` sits in front of a :class:`~repro.service.service.
FalconService` and owns *which* job runs *when*; the service stays the
data plane (sessions, agents, retries, reports).  The split follows the
modular-architecture line of work (PAPERS.md): admission decisions are
cheap, typed, and deterministic, so the system has a defined behavior
under any load instead of an unbounded FIFO.

What it adds, in decision order at submit time:

1. **Circuit breaker** (per testbed) — jobs bound for an endpoint that
   failed ``breaker_threshold`` jobs in a row are shed with reason
   ``breaker-open`` until a cooldown elapses and a probe succeeds.
2. **Admission quota** (per tenant) — a sim-clock token bucket; a
   tenant submitting faster than its sustained rate has the excess
   shed with reason ``quota``.
3. **Graceful degradation** — past ``degrade_at`` queue occupancy,
   BEST_EFFORT jobs are shed with reason ``degraded`` so paying
   traffic keeps its queue room.
4. **Bounded queue** — at ``max_queue`` occupancy something must go:
   the newest job of the lowest queued class if the arrival outranks
   it, else the arrival itself (reason ``queue-full``).

Dispatch serves priority classes strictly high-to-low; within a class,
tenants share by weighted deficit round-robin denominated in dataset
bytes (a tenant's long-run byte share tracks its weight even when its
jobs are smaller or larger than its peers').  When enabled, a queued
job whose class outranks the lowest-priority *running* job preempts
it: the victim's in-flight files return to its queue with progress
kept, and it resumes later from where it stopped.

Every decision is observable (``job.admit`` / ``job.shed`` /
``quota.exhausted`` / ``breaker.state`` / ``job.preempt`` events) and
every shed job ends in the terminal ``REJECTED`` state carrying its
typed ``rejection_reason``.  The control plane is strictly opt-in:
constructing one installs the service's ``on_terminal`` hook, and a
service without one behaves bit-identically to previous releases.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.events import (
    BreakerStateChanged,
    JobAdmitted,
    JobPreempted,
    JobShed,
    QuotaExhausted,
)
from repro.obs.tracer import current_tracer
from repro.service.breaker import BreakerState, CircuitBreaker
from repro.service.jobs import JobState, Priority, TransferJob
from repro.service.service import FalconService
from repro.service.tenancy import TenantSpec, TokenBucket
from repro.testbeds.base import Testbed
from repro.transfer.dataset import Dataset
from repro.units import GB

#: Typed rejection reasons (the closed vocabulary of ``rejection_reason``).
SHED_QUOTA = "quota"
SHED_QUEUE_FULL = "queue-full"
SHED_BREAKER = "breaker-open"
SHED_DEGRADED = "degraded"


@dataclass(frozen=True)
class ControlPolicy:
    """Knobs of the control plane (all deterministic, no RNG).

    Parameters
    ----------
    max_queue:
        Bound on jobs queued across all tenants (count); arrivals past
        it force a ``queue-full`` shed.
    quantum_bytes:
        Deficit round-robin quantum in dataset bytes added to a
        tenant's deficit each time the scheduler's pointer reaches it;
        weights multiply it.
    breaker_threshold:
        Consecutive FAILED jobs on one testbed that open its breaker.
    breaker_cooldown_s:
        Simulated seconds an open breaker sheds before probing.
    degrade_at:
        Queue-occupancy fraction (of ``max_queue``) at which
        BEST_EFFORT arrivals start being shed with reason ``degraded``.
    preemption:
        Whether a higher-class queued job may suspend the
        lowest-class running job to take its slot.
    """

    max_queue: int = 64
    quantum_bytes: float = 4.0 * GB
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 120.0
    degrade_at: float = 0.75
    preemption: bool = True

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.quantum_bytes <= 0.0:
            raise ValueError("quantum_bytes must be positive")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_s <= 0.0:
            raise ValueError("breaker_cooldown_s must be positive")
        if not 0.0 < self.degrade_at <= 1.0:
            raise ValueError("degrade_at must be in (0, 1]")


@dataclass
class _ClassState:
    """One priority class's round-robin ring over its tenants."""

    #: Tenant names in registration order — the deterministic tie-break.
    ring: list = field(default_factory=list)
    #: Index of the tenant the pointer is currently visiting.
    pos: int = 0
    #: Whether the current visit already received its arrival quantum.
    granted: bool = False
    #: Queued jobs across the class's tenants (kept in step with the
    #: deques so the dispatch fast path never scans them).
    count: int = 0


@dataclass
class _TenantState:
    """Mutable scheduler-side record for one registered tenant."""

    spec: TenantSpec
    bucket: TokenBucket
    cls: _ClassState
    queue: deque = field(default_factory=deque)
    #: Deficit round-robin balance in dataset bytes.
    deficit: float = 0.0


class ControlPlane:
    """Admission, quotas, fair scheduling, and load shedding.

    Construct it around a :class:`FalconService` whose ``on_terminal``
    hook is free; the plane installs itself there to learn about
    completions.  Register tenants, then submit through
    :meth:`submit` — jobs from the service's own ``submit()`` keep
    working untouched (they bypass the control queue entirely).
    """

    def __init__(self, service: FalconService, policy: ControlPolicy | None = None) -> None:
        if service.on_terminal is not None:
            raise ValueError("service already has an on_terminal hook installed")
        self.service = service
        self.policy = policy or ControlPolicy()
        service.on_terminal = self._on_terminal
        self._tenants: dict[str, _TenantState] = {}
        self._classes: dict[Priority, _ClassState] = {}
        #: Classes high-to-low (cached; rebuilt on registration).
        self._class_order: list[Priority] = []
        #: Running count of queued jobs (kept in step with the deques —
        #: the dispatch loop reads it once per iteration).
        self._depth = 0
        self._breakers: dict[str, CircuitBreaker] = {}
        self._pumping = False
        #: Dataset bytes waiting in the tenant queues (the shard router's
        #: load gauge; kept in step with ``_depth`` at every touch point).
        self._queued_bytes = 0.0
        #: Shed jobs in decision order (terminal REJECTED, with reasons).
        self.shed: list[TransferJob] = []

    # -- registration ----------------------------------------------------------

    def register_tenant(self, spec: TenantSpec) -> None:
        """Add a tenant; registration order is the scheduler tie-break."""
        if spec.name in self._tenants:
            raise ValueError(f"tenant {spec.name!r} already registered")
        now = self.service.engine.now
        cls = self._classes.setdefault(spec.priority, _ClassState())
        cls.ring.append(spec.name)
        self._tenants[spec.name] = _TenantState(
            spec=spec, bucket=TokenBucket(spec.quota_rate, spec.quota_burst, now), cls=cls
        )
        self._class_order = sorted(self._classes, reverse=True)

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        testbed: Testbed,
        dataset: Dataset,
        tenant: str,
        name: Optional[str] = None,
    ) -> TransferJob:
        """Admit, queue, shed, or start one job for ``tenant``.

        Always returns the job; a shed job comes back already in the
        ``REJECTED`` state with ``rejection_reason`` set, so callers
        never need a second channel for the verdict.
        """
        st = self._tenants.get(tenant)
        if st is None:
            raise KeyError(f"unknown tenant {tenant!r}")
        now = self.service.engine.now
        job = self.service.register(
            testbed, dataset, name=name, tenant=tenant, priority=st.spec.priority
        )
        breaker = self._breaker(testbed)
        if not breaker.admits(now):
            self._shed(job, SHED_BREAKER)
            return job
        if not st.bucket.try_take(now):
            tracer = current_tracer()
            if tracer is not None:
                tracer.emit(
                    QuotaExhausted, tenant=tenant, job=job.name, rate=st.spec.quota_rate
                )
                tracer.metrics.inc("control.quota_exhausted")
            self._shed(job, SHED_QUOTA)
            return job
        depth = self.depth
        if (
            job.priority is Priority.BEST_EFFORT
            and depth >= self.policy.degrade_at * self.policy.max_queue
        ):
            self._shed(job, SHED_DEGRADED)
            return job
        if depth >= self.policy.max_queue and not self._evict_for(job):
            self._shed(job, SHED_QUEUE_FULL)
            return job
        # The DRR cost (dataset bytes) is read on every scheduling pass;
        # price it once at admission.
        job._extras["cost"] = job.dataset.total_bytes
        st.queue.append(job)
        st.cls.count += 1
        self._depth += 1
        self._queued_bytes += job._extras["cost"]
        tracer = current_tracer()
        if tracer is not None:
            tracer.emit(
                JobAdmitted,
                tenant=tenant,
                job=job.name,
                job_id=job.job_id,
                priority=job.priority.label,
                queue_depth=self.depth,
            )
            tracer.metrics.inc("control.admitted")
        self._pump()
        return job

    # -- introspection ---------------------------------------------------------

    @property
    def depth(self) -> int:
        """Jobs currently waiting in control-plane queues (count)."""
        return self._depth

    @property
    def queued_bytes(self) -> float:
        """Dataset bytes waiting in control-plane queues.

        Together with the running set this is the load gauge the shard
        router's ``least_loaded`` placement reads
        (:class:`repro.service.sharding.ShardRouter`).
        """
        return self._queued_bytes

    def admission_verdict(self, testbed: Testbed, priority: Priority) -> Optional[str]:
        """Would a ``priority`` job for ``testbed`` be shed right now?

        Side-effect-free preview of the admission pipeline *minus* the
        quota stage (quotas are per tenant and, under sharding, global
        rather than shard-local): returns the typed shed reason a
        submission would get, or ``None`` if it would queue.  The shard
        router uses this to try alternate shards before a saturated one
        sheds a reroutable job.
        """
        now = self.service.engine.now
        if not self._breaker(testbed).admits(now):
            return SHED_BREAKER
        depth = self.depth
        if (
            priority is Priority.BEST_EFFORT
            and depth >= self.policy.degrade_at * self.policy.max_queue
        ):
            return SHED_DEGRADED
        if depth >= self.policy.max_queue and not self._eviction_room(priority):
            return SHED_QUEUE_FULL
        return None

    def shed_job(self, job: TransferJob, reason: str) -> None:
        """Shed a registered-but-unqueued job with a typed reason.

        External-router surface (mirrors :meth:`FalconService.reject`
        being public for this plane): the sharded control plane sheds
        quota-rejected jobs here so audit trail, events, and metrics
        are identical to a locally shed job.
        """
        self._shed(job, reason)

    def queued(self) -> list[TransferJob]:
        """Waiting jobs in service order: class high-to-low, ring, FIFO."""
        out: list[TransferJob] = []
        for prio in self._class_order:
            for tenant in self._classes[prio].ring:
                out.extend(self._tenants[tenant].queue)
        return out

    def breaker_state(self, testbed: Testbed) -> BreakerState:
        """Current breaker state for ``testbed`` (CLOSED if never used)."""
        return self._breaker(testbed).state

    # -- shedding --------------------------------------------------------------

    def _shed(self, job: TransferJob, reason: str) -> None:
        """Reject ``job`` (must be QUEUED) with a typed reason."""
        tracer = current_tracer()
        if tracer is not None:
            tracer.emit(
                JobShed,
                tenant=job.tenant or "",
                job=job.name,
                job_id=job.job_id,
                priority=job.priority.label,
                reason=reason,
            )
            tracer.metrics.inc(f"control.shed.{reason}")
        self.shed.append(job)
        self.service.reject(job, reason)

    def _eviction_room(self, priority: Priority) -> bool:
        """Pure twin of :meth:`_evict_for`: could room be made?

        True iff the lowest queued class is strictly below ``priority``
        (the same predicate ``_evict_for`` acts on, without shedding).
        """
        for prio in reversed(self._class_order):
            if any(self._tenants[t].queue for t in self._classes[prio].ring):
                return prio < priority
        return False

    def _evict_for(self, incoming: TransferJob) -> bool:
        """Make queue room for ``incoming`` by shedding a lower job.

        True if room was made (a strictly lower-class queued job was
        shed); False if the arrival itself is the right victim.
        """
        victim_class: Optional[Priority] = None
        for prio in reversed(self._class_order):
            if any(self._tenants[t].queue for t in self._classes[prio].ring):
                victim_class = prio
                break
        if victim_class is None or victim_class >= incoming.priority:
            return False
        # Newest job of the lowest class: last in, least sunk waiting.
        candidates: list[TransferJob] = []
        for tenant in self._classes[victim_class].ring:
            candidates.extend(self._tenants[tenant].queue)
        victim = max(candidates, key=lambda j: j.job_id)
        self._unqueue(victim)
        self._shed(victim, SHED_QUEUE_FULL)
        return True

    def _unqueue(self, job: TransferJob) -> None:
        """Drop ``job`` from its tenant queue if it is waiting there."""
        if job.tenant is None:
            return
        st = self._tenants.get(job.tenant)
        if st is not None and job in st.queue:
            st.queue.remove(job)
            st.cls.count -= 1
            self._depth -= 1
            self._queued_bytes -= job._extras["cost"]

    # -- scheduling ------------------------------------------------------------

    def _pick(self) -> Optional[TransferJob]:
        """Dequeue the next job: highest class first, WDRR within it."""
        for prio in self._class_order:
            cls = self._classes[prio]
            if cls.count:
                return self._pick_drr(cls)
        return None

    def _pick_drr(self, cls: _ClassState) -> TransferJob:
        """Weighted deficit round-robin over one class's tenants.

        The pointer grants ``quantum_bytes * weight`` on *arrival* at a
        nonempty tenant, serves while the deficit covers the head job's
        dataset bytes, and moves on otherwise (deficit kept).  A tenant
        that empties forfeits its deficit — credit never accrues to an
        idle queue.  Caller guarantees some tenant in the class has
        work, so the loop terminates: every full lap grants quantum to
        a nonempty queue.
        """
        quantum = self.policy.quantum_bytes
        while True:
            st = self._tenants[cls.ring[cls.pos]]
            if not cls.granted:
                if st.queue:
                    st.deficit += quantum * st.spec.weight
                cls.granted = True
            if st.queue:
                cost = st.queue[0]._extras["cost"]
                if st.deficit >= cost:
                    st.deficit -= cost
                    job = st.queue.popleft()
                    cls.count -= 1
                    self._depth -= 1
                    self._queued_bytes -= cost
                    if not st.queue:
                        st.deficit = 0.0
                    return job
            else:
                st.deficit = 0.0
            cls.pos = (cls.pos + 1) % len(cls.ring)
            cls.granted = False

    def _preempt_one(self) -> bool:
        """Suspend the weakest running job if a queued job outranks it.

        The victim is the lowest-class, most-recently-started running
        job (job id breaks the final tie).  Same-class jobs never
        preempt each other, so ping-pong is impossible.  Jobs that
        entered through the service's own ``submit()`` (no tenant) are
        never preempted — the plane has no queue to resume them from.
        """
        waiting = self.queued()
        if not waiting:
            return False
        top = max(j.priority for j in waiting)
        victims = [
            j for j in self.service.running() if j.tenant is not None and j.priority < top
        ]
        if not victims:
            return False
        victim = min(victims, key=lambda j: (j.priority, -(j.started_at or 0.0), -j.job_id))
        if victim._extras.pop("probe", None):
            self._breaker(victim.testbed).release_probe()
        tracer = current_tracer()
        if tracer is not None:
            tracer.emit(
                JobPreempted,
                tenant=victim.tenant or "",
                job=victim.name,
                job_id=victim.job_id,
                priority=victim.priority.label,
                by_priority=Priority(top).label,
            )
            tracer.metrics.inc("control.preempted")
        self.service.preempt(victim)
        # Back of the line would double-charge its wait: resume first.
        if victim.tenant is not None:
            st = self._tenants[victim.tenant]
            st.queue.appendleft(victim)
            st.cls.count += 1
            self._depth += 1
            self._queued_bytes += victim._extras["cost"]
        return True

    def _pump(self) -> None:
        """Start queued jobs while slots (or preemptable victims) exist."""
        if self._pumping:
            return
        self._pumping = True
        try:
            while self.depth > 0:
                if not self.service.has_slot:
                    if not (self.policy.preemption and self._preempt_one()):
                        break
                    if not self.service.has_slot:
                        break
                job = self._pick()
                if job is None:
                    break
                breaker = self._breaker(job.testbed)
                was_probing = breaker.state is not BreakerState.CLOSED
                if not breaker.allow(self.service.engine.now):
                    self._shed(job, SHED_BREAKER)
                    continue
                if was_probing:
                    job._extras["probe"] = True
                self.service.start_job(job)
        finally:
            self._pumping = False

    # -- completion feedback ---------------------------------------------------

    def _on_terminal(self, job: TransferJob) -> None:
        """Service hook: account the outcome, then refill freed slots."""
        if job.state is JobState.REJECTED:
            return
        if job.state is JobState.CANCELLED:
            # Cancelled while waiting in our queues, or mid-run while
            # holding the breaker probe: tidy both.
            self._unqueue(job)
            if job._extras.pop("probe", None):
                self._breaker(job.testbed).release_probe()
        elif job.tenant is not None:
            probe = bool(job._extras.pop("probe", None))
            self._breaker(job.testbed).record(
                self.service.engine.now, failed=job.state is JobState.FAILED, probe=probe
            )
        self._pump()

    # -- breakers --------------------------------------------------------------

    def _breaker(self, testbed: Testbed) -> CircuitBreaker:
        """The (lazily created) breaker guarding ``testbed``."""
        brk = self._breakers.get(testbed.name)
        if brk is None:

            def on_change(old: BreakerState, new: BreakerState, now: float, tb=testbed) -> None:
                tracer = current_tracer()
                if tracer is not None:
                    tracer.emit(
                        BreakerStateChanged,
                        testbed=tb.name,
                        old_state=old.value,
                        new_state=new.value,
                        failures=self._breakers[tb.name].failures,
                    )
                    tracer.metrics.inc("control.breaker_changes")

            brk = CircuitBreaker(
                self.policy.breaker_threshold,
                self.policy.breaker_cooldown_s,
                on_change=on_change,
            )
            self._breakers[testbed.name] = brk
        return brk
