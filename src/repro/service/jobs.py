"""Transfer jobs and completion reports."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.testbeds.base import Testbed
from repro.transfer.dataset import Dataset
from repro.units import format_duration, format_rate, format_size


class JobState(enum.Enum):
    """Lifecycle of a submitted transfer job."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"
    #: Terminal: retries/restarts exhausted; ``report`` covers the
    #: partial progress made before the service gave up.
    FAILED = "failed"
    #: Terminal: the control plane shed this job at admission or
    #: dispatch time; ``rejection_reason`` carries the typed cause
    #: (quota, queue-full, breaker-open, degraded) and the job never
    #: moved a byte.
    REJECTED = "rejected"

    @property
    def is_terminal(self) -> bool:
        """True for states no transition ever leaves."""
        return self in _TERMINAL_STATES


_TERMINAL_STATES = frozenset(
    {JobState.COMPLETED, JobState.CANCELLED, JobState.FAILED, JobState.REJECTED}
)


class Priority(enum.IntEnum):
    """Scheduling class of a job; higher classes go first and preempt.

    The control plane serves classes strictly in descending order and,
    under overload, sheds strictly in ascending order — BEST_EFFORT
    traffic is the first to go and HIGH traffic the last.
    """

    BEST_EFFORT = 0
    NORMAL = 1
    HIGH = 2

    @property
    def label(self) -> str:
        """Wire/report name (``best-effort``, ``normal``, ``high``)."""
        return self.name.lower().replace("_", "-")


@dataclass(frozen=True)
class TransferReport:
    """What a finished job reports back to its submitter.

    Attributes
    ----------
    bytes_moved:
        Goodput bytes delivered.
    duration:
        Wall (simulation) seconds from start to completion.
    mean_throughput_bps:
        ``bytes_moved * 8 / duration``.
    files:
        Files delivered.
    decisions:
        Number of tuning decisions the agent made.
    final_concurrency:
        Concurrency in force when the job completed.
    loss_fraction:
        Lost bytes over sent bytes across the whole job.
    process_seconds:
        Worker-process lifetime consumed across both end hosts (the
        overhead metric; each worker is a process at the source *and*
        the destination).
    completed:
        True only for jobs that delivered their whole dataset; False
        for cancelled/failed partial reports.
    retries:
        File re-queues scheduled by the retry policy (worker crashes
        and watchdog kills that got a backoff timer).
    restarts:
        Whole-job restarts after job crashes.
    worker_crashes:
        Worker processes lost (injected or watchdog-killed), summed
        across restarts.
    stalled_seconds:
        Worker-seconds spent inside injected stalls, summed across
        restarts.
    failed_files:
        Files that exhausted their attempt budget (nonzero only on
        FAILED jobs).
    preemptions:
        Times the control plane suspended the job to make room for a
        higher-priority one (each resume kept the remaining files).
    """

    bytes_moved: float
    duration: float
    mean_throughput_bps: float
    files: int
    decisions: int
    final_concurrency: int
    loss_fraction: float
    process_seconds: float
    completed: bool = True
    retries: int = 0
    restarts: int = 0
    worker_crashes: int = 0
    stalled_seconds: float = 0.0
    failed_files: int = 0
    preemptions: int = 0

    def summary(self) -> str:
        """One-line human-readable report."""
        line = (
            f"{format_size(self.bytes_moved)} in {format_duration(self.duration)} "
            f"({format_rate(self.mean_throughput_bps)}), {self.files} files, "
            f"loss {self.loss_fraction:.2%}, {self.decisions} decisions, "
            f"final n={self.final_concurrency}"
        )
        if self.retries or self.restarts or self.worker_crashes:
            line += (
                f", {self.worker_crashes} crashes/"
                f"{self.retries} retries/{self.restarts} restarts"
            )
        if not self.completed:
            line += " [partial]"
        return line


@dataclass
class TransferJob:
    """One submitted transfer."""

    job_id: int
    name: str
    testbed: Testbed
    dataset: Dataset
    state: JobState = JobState.QUEUED
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    report: Optional[TransferReport] = None
    #: Fault-tolerance counters, accumulated across restarts.
    retries: int = 0
    restarts: int = 0
    failed_files: int = 0
    #: Control-plane fields; all stay at their defaults when jobs go
    #: through the plain ``FalconService.submit`` path.
    tenant: Optional[str] = None
    priority: Priority = Priority.NORMAL
    rejection_reason: Optional[str] = None
    preemptions: int = 0
    #: Timestamped lifecycle events: ``(time, kind, detail)`` for
    #: retries, watchdog kills, restarts, and the final failure reason.
    events: list = field(default_factory=list, repr=False)
    _extras: dict = field(default_factory=dict, repr=False)

    @property
    def queue_wait(self) -> float:
        """Seconds spent queued (None-safe: 0 until started)."""
        if self.started_at is None:
            return 0.0
        return self.started_at - self.submitted_at

    def note(self, time: float, kind: str, detail: str = "") -> None:
        """Append one lifecycle event."""
        self.events.append((time, kind, detail))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Job#{self.job_id}({self.name}, {self.state.value})"
