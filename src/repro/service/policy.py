"""Retry/backoff/watchdog policy for the transfer service.

One frozen object holds every fault-tolerance knob, so experiments can
flip the whole behaviour with ``fault_policy=None`` (legacy: no
retries, no watchdog, job crashes are fatal) versus
``fault_policy=RetryPolicy()`` (production defaults).

Backoff is capped exponential with deterministic jitter: attempt ``k``
(1-based) of a file waits ::

    min(backoff_cap, backoff_base * backoff_multiplier**(k-1))
        * (1 + backoff_jitter * u),   u ~ U[0, 1)

with ``u`` drawn from the job's dedicated fault stream — retries
de-phase across files without perturbing any other random sequence.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How the service responds to worker/job failures.

    Attributes
    ----------
    enabled:
        Master switch; a disabled policy behaves like ``None`` (no
        retries, no watchdog, no restarts) while keeping the object
        around for reporting.
    max_attempts:
        Total transfer attempts allowed per file (first try included).
        A file failing this many times fails the whole job — by then
        the fault is systemic, not transient.
    backoff_base / backoff_multiplier / backoff_cap:
        Capped exponential backoff schedule, seconds.
    backoff_jitter:
        Fractional jitter on each backoff (0.25 = up to +25%).
    stall_timeout:
        Seconds a worker may hold a file without moving a byte before
        the watchdog kills it.
    watchdog_interval:
        How often the no-progress watchdog inspects workers.
    max_restarts:
        Whole-job restarts allowed after a job crash; each restart
        resumes from the files not yet delivered.
    """

    enabled: bool = True
    max_attempts: int = 4
    backoff_base: float = 2.0
    backoff_multiplier: float = 2.0
    backoff_cap: float = 30.0
    backoff_jitter: float = 0.25
    stall_timeout: float = 15.0
    watchdog_interval: float = 5.0
    max_restarts: int = 2

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base <= 0 or self.backoff_cap <= 0:
            raise ValueError("backoff_base and backoff_cap must be positive")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter must be non-negative")
        if self.stall_timeout <= 0:
            raise ValueError("stall_timeout must be positive")
        if self.watchdog_interval <= 0:
            raise ValueError("watchdog_interval must be positive")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")

    def backoff(self, attempt: int, u: float = 0.0) -> float:
        """Delay before re-queueing a file that has failed ``attempt`` times.

        ``u`` is the jitter draw in ``[0, 1)``.
        """
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        raw = self.backoff_base * self.backoff_multiplier ** (attempt - 1)
        return min(self.backoff_cap, raw) * (1.0 + self.backoff_jitter * u)
