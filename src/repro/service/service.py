"""The Falcon transfer service: job queue + per-job agents.

Jobs run at most ``max_active`` at a time per service instance; excess
submissions wait in FIFO order.  Each running job gets its own Falcon
agent (all sharing the same utility, as the equilibrium argument
requires), so concurrent jobs on the same testbed converge to fair
shares automatically — the service needs no bandwidth broker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.agent import FalconAgent
from repro.core.controller import attach_agent
from repro.core.gradient_descent import GradientDescent
from repro.core.optimizer import ConcurrencyOptimizer
from repro.core.utility import NonlinearPenaltyUtility, UtilityFunction
from repro.service.jobs import JobState, TransferJob, TransferReport
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngStreams
from repro.testbeds.base import Testbed
from repro.transfer.dataset import Dataset
from repro.transfer.executor import FluidTransferNetwork

OptimizerFactory = Callable[[np.random.Generator], ConcurrencyOptimizer]


def _default_optimizer(rng: np.random.Generator) -> ConcurrencyOptimizer:
    return GradientDescent(lo=1, hi=64)


@dataclass
class FalconService:
    """Accepts, schedules, tunes, and reports transfer jobs.

    Parameters
    ----------
    engine, network:
        The simulation substrate to run on.
    max_active:
        Concurrent-job limit; further submissions queue FIFO.
    optimizer_factory:
        Builds a fresh search algorithm per job.
    utility:
        Shared utility function (one function for all jobs — required
        for the fair-equilibrium guarantee).
    seed:
        Root seed for per-job measurement-jitter streams.
    """

    engine: SimulationEngine
    network: FluidTransferNetwork
    max_active: int = 4
    optimizer_factory: OptimizerFactory = _default_optimizer
    utility: UtilityFunction = field(default_factory=NonlinearPenaltyUtility)
    seed: int = 0

    _jobs: list[TransferJob] = field(default_factory=list)
    _queue: list[TransferJob] = field(default_factory=list)
    _active: list[TransferJob] = field(default_factory=list)
    _streams: RngStreams = field(init=False)
    _next_id: int = 1

    def __post_init__(self) -> None:
        if self.max_active < 1:
            raise ValueError("max_active must be >= 1")
        self._streams = RngStreams(self.seed)

    # -- submission ------------------------------------------------------------

    def submit(self, testbed: Testbed, dataset: Dataset, name: str | None = None) -> TransferJob:
        """Queue a transfer; it starts when a slot is free."""
        job = TransferJob(
            job_id=self._next_id,
            name=name or f"job-{self._next_id}",
            testbed=testbed,
            dataset=dataset,
            submitted_at=self.engine.now,
        )
        self._next_id += 1
        self._jobs.append(job)
        self._queue.append(job)
        self._dispatch()
        return job

    def cancel(self, job: TransferJob) -> None:
        """Cancel a queued or running job.

        Cancelling a running job tears its workers down the same way a
        concurrency decrease does — in-flight files return to the queue
        with their progress kept — and attaches a *partial*
        :class:`TransferReport` covering the work done so far.
        """
        if job.state is JobState.QUEUED:
            self._queue.remove(job)
            job.state = JobState.CANCELLED
            job.finished_at = self.engine.now
        elif job.state is JobState.RUNNING:
            session = job._extras["session"]
            agent: FalconAgent = job._extras["agent"]
            # Tear down the worker pool: in-progress files go back to
            # the session's queue via push_back with progress intact
            # (restartable-transfer semantics), not silently stranded.
            session._resize_workers(0)
            session.finished_at = self.engine.now
            if session in self.network.sessions:
                self.network.remove_session(session)
            job.state = JobState.CANCELLED
            job.finished_at = self.engine.now
            job.report = self._partial_report(job, session, agent)
            self._active.remove(job)
            self._dispatch()

    # -- introspection ----------------------------------------------------------

    @property
    def jobs(self) -> list[TransferJob]:
        """All jobs ever submitted, in submission order."""
        return list(self._jobs)

    def queued(self) -> list[TransferJob]:
        """Jobs waiting for a slot."""
        return list(self._queue)

    def running(self) -> list[TransferJob]:
        """Jobs currently transferring."""
        return list(self._active)

    # -- internals ----------------------------------------------------------------

    def _dispatch(self) -> None:
        while self._queue and len(self._active) < self.max_active:
            job = self._queue.pop(0)
            self._start(job)

    def _start(self, job: TransferJob) -> None:
        session = job.testbed.new_session(job.dataset, name=job.name)
        rng = self._streams.get(f"job/{job.job_id}")
        agent = FalconAgent(
            session=session,
            optimizer=self.optimizer_factory(rng),
            utility=self.utility,
            rng=rng,
        )
        job.state = JobState.RUNNING
        job.started_at = self.engine.now
        job._extras["session"] = session
        job._extras["agent"] = agent
        self._active.append(job)
        session.on_complete = lambda s, j=job: self._finish(j)
        self.network.add_session(session)
        # De-phase decision clocks across jobs (see experiments.common).
        interval = job.testbed.sample_interval * (1.0 + float(rng.uniform(-0.08, 0.08)))
        attach_agent(self.engine, agent, interval=interval)

    def _finish(self, job: TransferJob) -> None:
        session = job._extras["session"]
        agent: FalconAgent = job._extras["agent"]
        job.state = JobState.COMPLETED
        job.finished_at = self.engine.now
        job.report = self._partial_report(job, session, agent)
        if job in self._active:
            self._active.remove(job)
        self._dispatch()

    def _partial_report(self, job: TransferJob, session, agent: FalconAgent) -> TransferReport:
        """Report covering whatever the session moved up to now."""
        duration = max((job.finished_at or 0.0) - (job.started_at or 0.0), 1e-9)
        sent = session.total_good_bytes + session.total_lost_bytes
        return TransferReport(
            bytes_moved=session.total_good_bytes,
            duration=duration,
            mean_throughput_bps=session.total_good_bytes * 8.0 / duration,
            files=session.files_completed,
            decisions=len(agent.history),
            final_concurrency=session.params.concurrency,
            loss_fraction=session.total_lost_bytes / sent if sent > 0 else 0.0,
            process_seconds=session.process_seconds,
        )
