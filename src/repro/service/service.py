"""The Falcon transfer service: job queue + per-job agents.

Jobs run at most ``max_active`` at a time per service instance; excess
submissions wait in FIFO order.  Each running job gets its own Falcon
agent (all sharing the same utility, as the equilibrium argument
requires), so concurrent jobs on the same testbed converge to fair
shares automatically — the service needs no bandwidth broker.

Fault tolerance is opt-in via ``fault_policy``:

* a crashed worker's file re-enters the queue after a capped
  exponential backoff with deterministic jitter; a file exhausting its
  attempt budget fails the whole job;
* a no-progress watchdog kills workers that hold a file without moving
  a byte for ``stall_timeout`` seconds (hung process, not dead — exit
  codes never fire);
* a crashed *job* is restarted up to ``max_restarts`` times, resuming
  from the files its previous incarnation had not delivered (same
  :class:`~repro.transfer.dataset.FileQueue` object, so progress and
  pending retry timers survive the restart);
* with retries exhausted (or ``fault_policy=None``) the job lands in
  ``FAILED`` with a partial report instead of hanging forever.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.agent import FalconAgent
from repro.core.controller import attach_agent
from repro.core.gradient_descent import GradientDescent
from repro.core.optimizer import ConcurrencyOptimizer
from repro.core.utility import NonlinearPenaltyUtility, UtilityFunction
from repro.obs.events import (
    JobRestarted,
    JobStateChanged,
    JobSubmitted,
    RetryScheduled,
    WatchdogKilled,
)
from repro.obs.tracer import current_tracer
from repro.service.jobs import JobState, Priority, TransferJob, TransferReport
from repro.service.policy import RetryPolicy
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngStreams
from repro.testbeds.base import Testbed
from repro.transfer.dataset import Dataset, FileQueue
from repro.transfer.executor import FluidTransferNetwork

OptimizerFactory = Callable[[np.random.Generator], ConcurrencyOptimizer]

#: Zero carry-over stats for a job's first incarnation.
_ZERO_CARRY = {
    "good": 0.0,
    "lost": 0.0,
    "files": 0,
    "decisions": 0,
    "process_seconds": 0.0,
    "crashes": 0,
    "stalled": 0.0,
}


def _default_optimizer(rng: np.random.Generator) -> ConcurrencyOptimizer:
    return GradientDescent(lo=1, hi=64)


@dataclass
class FalconService:
    """Accepts, schedules, tunes, and reports transfer jobs.

    Parameters
    ----------
    engine, network:
        The simulation substrate to run on.
    max_active:
        Concurrent-job limit; further submissions queue FIFO.
    optimizer_factory:
        Builds a fresh search algorithm per job.
    utility:
        Shared utility function (one function for all jobs — required
        for the fair-equilibrium guarantee).
    seed:
        Root seed for per-job measurement-jitter streams.
    fault_policy:
        Retry/watchdog/restart behaviour; ``None`` reproduces the
        legacy service exactly (no retries, crashes are fatal).
    on_terminal:
        External-scheduler hook: called with each job the moment it
        reaches a terminal state (COMPLETED/FAILED/CANCELLED/REJECTED),
        after the internal FIFO dispatch has run.  ``None`` (the
        default) keeps the service fully self-contained — the
        control plane (:class:`repro.service.control.ControlPlane`)
        installs itself here.
    """

    engine: SimulationEngine
    network: FluidTransferNetwork
    max_active: int = 4
    optimizer_factory: OptimizerFactory = _default_optimizer
    utility: UtilityFunction = field(default_factory=NonlinearPenaltyUtility)
    seed: int = 0
    fault_policy: RetryPolicy | None = None
    on_terminal: Callable[[TransferJob], None] | None = None

    _jobs: list[TransferJob] = field(default_factory=list)
    _queue: deque = field(default_factory=deque)
    _active: list[TransferJob] = field(default_factory=list)
    _streams: RngStreams = field(init=False)
    _next_id: int = 1

    def __post_init__(self) -> None:
        if self.max_active < 1:
            raise ValueError("max_active must be >= 1")
        self._streams = RngStreams(self.seed)

    @property
    def _policy_active(self) -> bool:
        return self.fault_policy is not None and self.fault_policy.enabled

    # -- submission ------------------------------------------------------------

    def register(
        self,
        testbed: Testbed,
        dataset: Dataset,
        name: str | None = None,
        tenant: str | None = None,
        priority: Priority = Priority.NORMAL,
    ) -> TransferJob:
        """Create and record a job without queueing it.

        This is the control-plane entry point: an external scheduler
        owns admission and ordering, so the job must exist (id, events,
        ``JobSubmitted`` record) before any admission decision — a shed
        job still has a full audit trail.  Plain ``submit()`` is
        ``register()`` + FIFO enqueue.
        """
        job = TransferJob(
            job_id=self._next_id,
            name=name or f"job-{self._next_id}",
            testbed=testbed,
            dataset=dataset,
            submitted_at=self.engine.now,
            tenant=tenant,
            priority=Priority(priority),
        )
        self._next_id += 1
        self._jobs.append(job)
        tracer = current_tracer()
        if tracer is not None:
            tracer.emit(JobSubmitted, job=job.name, job_id=job.job_id)
            tracer.metrics.inc("jobs.submitted")
        return job

    def submit(self, testbed: Testbed, dataset: Dataset, name: str | None = None) -> TransferJob:
        """Queue a transfer; it starts when a slot is free."""
        job = self.register(testbed, dataset, name=name)
        self._queue.append(job)
        self._dispatch()
        return job

    # -- external-scheduler surface ---------------------------------------------
    #
    # The control plane (repro.service.control) owns admission and
    # ordering; these methods let it drive the job lifecycle directly
    # without going through the internal FIFO.  None of them touch
    # ``_queue``, so plain ``submit()`` traffic is unaffected.

    @property
    def has_slot(self) -> bool:
        """True while another job could start right now."""
        return len(self._active) < self.max_active

    def start_job(self, job: TransferJob) -> None:
        """Start a registered job immediately (control-plane dispatch).

        The job must be QUEUED and a slot free.  A previously preempted
        job resumes from its stashed file queue, so files it already
        delivered are not moved again.
        """
        if job.state is not JobState.QUEUED:
            raise ValueError(f"cannot start {job}: not queued")
        if not self.has_slot:
            raise ValueError(f"cannot start {job}: no free slot")
        queue = job._extras.pop("resume_queue", None)
        self._transition(job, JobState.RUNNING)
        if job.started_at is None:
            job.started_at = self.engine.now
        self._active.append(job)
        self._launch(job, queue=queue)

    def reject(self, job: TransferJob, reason: str) -> None:
        """Shed a queued job with a typed reason (control-plane overload)."""
        if job.state is not JobState.QUEUED:
            raise ValueError(f"cannot reject {job}: not queued")
        if job in self._queue:
            self._queue.remove(job)
        job._extras.pop("watchdog", None)
        job.rejection_reason = reason
        job.note(self.engine.now, "rejected", reason)
        self._transition(job, JobState.REJECTED)
        job.finished_at = self.engine.now
        self._notify_terminal(job)

    def preempt(self, job: TransferJob) -> None:
        """Suspend a running job so a higher-priority one can take the slot.

        Teardown matches a job crash — in-flight files return to the
        queue with progress kept — but the job transitions back to
        QUEUED with its file queue stashed, so a later
        :meth:`start_job` resumes where it stopped.  Does *not*
        dispatch: the caller is about to start its own pick.
        """
        if job.state is not JobState.RUNNING:
            raise ValueError(f"cannot preempt {job}: not running")
        session = job._extras["session"]
        agent: FalconAgent = job._extras["agent"]
        self._teardown_session(session)
        self._accumulate_carry(job, session, agent)
        job.preemptions += 1
        job._extras["resume_queue"] = session.queue
        job._extras.pop("watchdog", None)
        job._extras.pop("watch", None)
        job.note(self.engine.now, "preempted", f"#{job.preemptions}")
        self._transition(job, JobState.QUEUED)
        self._active.remove(job)

    def cancel(self, job: TransferJob) -> None:
        """Cancel a queued or running job.

        Cancelling a running job tears its workers down the same way a
        concurrency decrease does — in-flight files return to the queue
        with their progress kept — and attaches a *partial*
        :class:`TransferReport` covering the work done so far.
        """
        if job.state is JobState.QUEUED:
            # A control-plane job waits in the control plane's own
            # queues, not in ``_queue``; tolerate either home.
            if job in self._queue:
                self._queue.remove(job)
            job._extras.pop("watchdog", None)
            self._transition(job, JobState.CANCELLED)
            job.finished_at = self.engine.now
            self._notify_terminal(job)
        elif job.state is JobState.RUNNING:
            session = job._extras["session"]
            agent: FalconAgent = job._extras["agent"]
            self._teardown_session(session)
            job._extras.pop("watchdog", None)
            self._transition(job, JobState.CANCELLED)
            job.finished_at = self.engine.now
            job.report = self._partial_report(job, session, agent, completed=False)
            self._active.remove(job)
            self._dispatch()
            self._notify_terminal(job)

    def crash_job(self, job: TransferJob) -> None:
        """Kill a running job's whole process tree (fault injection).

        With a retry policy and restarts left, the job relaunches and
        *resumes*: the replacement session consumes the crashed one's
        file queue, so already-delivered files are not moved again.
        Otherwise the job fails with a partial report.
        """
        if job.state is not JobState.RUNNING:
            return
        now = self.engine.now
        session = job._extras["session"]
        agent: FalconAgent = job._extras["agent"]
        self._teardown_session(session)
        policy = self.fault_policy
        if self._policy_active and job.restarts < policy.max_restarts:
            job.restarts += 1
            job.note(now, "restart", f"{job.restarts}/{policy.max_restarts}")
            tracer = current_tracer()
            if tracer is not None:
                tracer.emit(
                    JobRestarted,
                    job=job.name,
                    restart=job.restarts,
                    max_restarts=policy.max_restarts,
                )
                tracer.metrics.inc("jobs.restarted")
            self._accumulate_carry(job, session, agent)
            self._launch(job, queue=session.queue)
        else:
            self._fail(job, reason="job crashed (no restarts left)")

    # -- introspection ----------------------------------------------------------

    @property
    def jobs(self) -> list[TransferJob]:
        """All jobs ever submitted, in submission order."""
        return list(self._jobs)

    def queued(self) -> list[TransferJob]:
        """Jobs waiting for a slot."""
        return list(self._queue)

    def running(self) -> list[TransferJob]:
        """Jobs currently transferring."""
        return list(self._active)

    # -- internals ----------------------------------------------------------------

    def _dispatch(self) -> None:
        while self._queue and len(self._active) < self.max_active:
            job = self._queue.popleft()
            self._start(job)

    def _transition(self, job: TransferJob, state: JobState) -> None:
        """Move ``job`` to ``state``, mirroring the change to the tracer."""
        old = job.state
        job.state = state
        tracer = current_tracer()
        if tracer is not None:
            tracer.emit(
                JobStateChanged,
                job=job.name,
                job_id=job.job_id,
                old_state=old.value,
                new_state=state.value,
            )
            tracer.metrics.inc(f"jobs.{state.value}")

    def _start(self, job: TransferJob) -> None:
        self._transition(job, JobState.RUNNING)
        job.started_at = self.engine.now
        self._active.append(job)
        self._launch(job)

    def _launch(self, job: TransferJob, queue: FileQueue | None = None) -> None:
        """(Re)create the session+agent pair for a running job.

        ``queue`` carries the remaining files of a crashed incarnation
        into the replacement session (job resume).
        """
        suffix = f"+r{job.restarts}" if job.restarts else ""
        if job.preemptions:
            suffix += f"+p{job.preemptions}"
        session = job.testbed.new_session(
            job.dataset, name=f"{job.name}{suffix}", queue=queue
        )
        rng = self._streams.get(f"job/{job.job_id}")
        agent = FalconAgent(
            session=session,
            optimizer=self.optimizer_factory(rng),
            utility=self.utility,
            rng=rng,
        )
        job._extras["session"] = session
        job._extras["agent"] = agent
        session.on_complete = lambda s, j=job: self._finish(j)
        if self._policy_active:
            session.on_file_failure = (
                lambda size, done, attempts, j=job: self._file_failed(
                    j, size, done, attempts
                )
            )
            if "watchdog" not in job._extras:
                self._schedule_watchdog(job)
        self.network.add_session(session)
        # De-phase decision clocks across jobs (see experiments.common).
        interval = job.testbed.sample_interval * (1.0 + float(rng.uniform(-0.08, 0.08)))
        attach_agent(self.engine, agent, interval=interval)

    def _teardown_session(self, session) -> None:
        """Detach and silence a session whose job is ending or restarting.

        Worker teardown pushes in-flight files back into the queue with
        progress kept (restartable-transfer semantics) — which is
        exactly what makes the queue resumable by a successor session.
        """
        session.on_complete = None
        session.on_file_failure = None
        session._resize_workers(0)
        session.finished_at = self.engine.now
        if session in self.network.sessions:
            self.network.remove_session(session)

    # -- retry path -----------------------------------------------------------

    def _file_failed(self, job: TransferJob, size: float, done: float, attempts: int) -> None:
        """A worker died holding a file: back off and requeue, or give up.

        ``attempts`` counts failures *before* this one.
        """
        if job.state is not JobState.RUNNING:
            return
        now = self.engine.now
        policy = self.fault_policy
        failed = attempts + 1
        if failed >= policy.max_attempts:
            job.failed_files += 1
            job.note(now, "file-failed", f"{failed} attempts on {size:.0f}B file")
            self._fail(job, reason=f"file exhausted {failed} attempts")
            return
        u = float(self._streams.get(f"job/{job.job_id}/faults").random())
        delay = policy.backoff(failed, u)
        job.retries += 1
        job.note(now, "retry", f"attempt {failed + 1} in {delay:.1f}s")
        tracer = current_tracer()
        if tracer is not None:
            tracer.emit(
                RetryScheduled, job=job.name, attempt=failed, delay_s=delay, size_bytes=size
            )
            tracer.metrics.inc("jobs.retries")
        queue = job._extras["session"].queue
        # The hold keeps the file counted as remaining work so the
        # session cannot declare completion while the timer runs.  The
        # queue object survives restarts, so the requeue lands in the
        # live incarnation even if the job crashes meanwhile.
        queue.hold()

        def requeue() -> None:
            # Inert after a terminal transition: the job's report is
            # sealed and nothing will ever consume the queue again, so
            # the callback must not resurrect work.  A *preempted* job
            # is QUEUED (not terminal) and its queue is stashed for
            # resume — the retry must still land there.
            if job.state.is_terminal:
                return
            queue.release()
            queue.push_back(size, done, failed)

        self.engine.schedule_in(delay, requeue, name=f"retry:{job.name}")

    # -- watchdog ---------------------------------------------------------------

    def _schedule_watchdog(self, job: TransferJob):
        """Periodic no-progress check; kills workers stuck past the timeout.

        The tick re-reads the session from the job's extras each time,
        so one watchdog follows the job across restarts.  It retires by
        token: the tick keeps running only while *this* arming's token
        is still installed in ``job._extras["watchdog"]`` and the job
        is RUNNING.  Terminal transitions and preemption pop the key,
        so a pending tick after either is inert — and a preempted job
        that resumes gets a *fresh* watchdog without ever having two
        live at once.
        """
        policy = self.fault_policy
        token = object()
        job._extras["watchdog"] = token

        def tick() -> None:
            if job._extras.get("watchdog") is not token:
                raise StopIteration
            if job.state is not JobState.RUNNING:
                raise StopIteration
            session = job._extras["session"]
            watch = job._extras.get("watch")
            if watch is None or watch["session"] is not session:
                # New incarnation: re-baseline.
                job._extras["watch"] = {
                    "session": session,
                    "done": session.file_done.copy(),
                    "size": session.file_size.copy(),
                    "streak": np.zeros(session.file_done.size),
                }
                return
            # Progress = any change to the (file, bytes-done) pair —
            # completions swap the file, so they count as progress even
            # though bytes-done can shrink.  Pool resizes are
            # prefix-stable, so surviving workers carry their streaks;
            # new slots start fresh (counted as "moved").
            n = session.file_done.size
            m = min(n, watch["streak"].size)
            moved = np.ones(n, dtype=bool)
            moved[:m] = (session.file_done[:m] != watch["done"][:m]) | (
                session.file_size[:m] != watch["size"][:m]
            )
            carried = np.zeros(n)
            carried[:m] = watch["streak"][:m]
            streak = np.where(
                session.has_file & ~moved,
                carried + policy.watchdog_interval,
                0.0,
            )
            watch["done"] = session.file_done.copy()
            watch["size"] = session.file_size.copy()
            watch["streak"] = streak
            for w in np.flatnonzero(streak >= policy.stall_timeout).tolist():
                # A kill can cascade into job failure mid-loop.
                if job.state is not JobState.RUNNING:
                    break
                if w >= session.rates.size or not session.has_file[w]:
                    continue
                job.note(self.engine.now, "watchdog-kill", f"worker {w}")
                tracer = current_tracer()
                if tracer is not None:
                    tracer.emit(WatchdogKilled, job=job.name, worker=w)
                    tracer.metrics.inc("jobs.watchdog_kills")
                streak[w] = 0.0
                session.crash_worker(w)

        self.engine.schedule_every(
            policy.watchdog_interval, tick, name=f"watchdog:{job.name}"
        )

    # -- completion / failure ----------------------------------------------------

    def _finish(self, job: TransferJob) -> None:
        session = job._extras["session"]
        agent: FalconAgent = job._extras["agent"]
        job._extras.pop("watchdog", None)
        self._transition(job, JobState.COMPLETED)
        job.finished_at = self.engine.now
        job.report = self._partial_report(job, session, agent, completed=True)
        if job in self._active:
            self._active.remove(job)
        self._dispatch()
        self._notify_terminal(job)

    def _fail(self, job: TransferJob, reason: str = "") -> None:
        """Terminal failure: partial report, slot freed, no hang."""
        if job.state is not JobState.RUNNING:
            return
        session = job._extras["session"]
        agent: FalconAgent = job._extras["agent"]
        if session.finished_at is None:
            self._teardown_session(session)
        job._extras.pop("watchdog", None)
        self._transition(job, JobState.FAILED)
        job.finished_at = self.engine.now
        job.note(self.engine.now, "failed", reason)
        job.report = self._partial_report(job, session, agent, completed=False)
        if job in self._active:
            self._active.remove(job)
        self._dispatch()
        self._notify_terminal(job)

    def _notify_terminal(self, job: TransferJob) -> None:
        """Tell the external scheduler, if any, that ``job`` just ended."""
        if self.on_terminal is not None:
            self.on_terminal(job)

    # -- reporting ----------------------------------------------------------------

    def _accumulate_carry(self, job: TransferJob, session, agent: FalconAgent) -> None:
        """Bank a dead incarnation's stats so reports span restarts."""
        carry = job._extras.setdefault("carry", dict(_ZERO_CARRY))
        carry["good"] += session.total_good_bytes
        carry["lost"] += session.total_lost_bytes
        carry["files"] += session.files_completed
        carry["decisions"] += len(agent.history)
        carry["process_seconds"] += session.process_seconds
        carry["crashes"] += session.worker_crashes
        carry["stalled"] += session.stalled_seconds

    def _partial_report(
        self, job: TransferJob, session, agent: FalconAgent, completed: bool
    ) -> TransferReport:
        """Report covering whatever the job moved up to now (all incarnations)."""
        carry = job._extras.get("carry", _ZERO_CARRY)
        duration = max((job.finished_at or 0.0) - (job.started_at or 0.0), 1e-9)
        good = carry["good"] + session.total_good_bytes
        lost = carry["lost"] + session.total_lost_bytes
        sent = good + lost
        return TransferReport(
            bytes_moved=good,
            duration=duration,
            mean_throughput_bps=good * 8.0 / duration,
            files=carry["files"] + session.files_completed,
            decisions=carry["decisions"] + len(agent.history),
            final_concurrency=session.params.concurrency,
            loss_fraction=lost / sent if sent > 0 else 0.0,
            process_seconds=carry["process_seconds"] + session.process_seconds,
            completed=completed,
            retries=job.retries,
            restarts=job.restarts,
            worker_crashes=carry["crashes"] + session.worker_crashes,
            stalled_seconds=carry["stalled"] + session.stalled_seconds,
            failed_files=job.failed_files,
            preemptions=job.preemptions,
        )
