"""Sharded data plane: N independent transfer engines behind one plane.

The modular-architecture line of work (PAPERS.md) splits a transfer
service into a thin control plane and a fleet of high-throughput data
movers.  :class:`~repro.service.control.ControlPlane` (PR 8) built the
first half; this module adds the *shard* axis:

* a :class:`DataShard` is one fully independent data-plane engine —
  its own :class:`~repro.sim.engine.SimulationEngine`, its own
  :class:`~repro.transfer.executor.FluidTransferNetwork` (and hence
  its own contiguous :class:`~repro.sim.batch.BatchStore`), its own
  :class:`~repro.service.service.FalconService`, and its own replicas
  of every testbed it serves.  Nothing is shared across shards, so a
  fault, a breaker trip, or a saturated queue on one shard cannot
  touch another;
* a :class:`ShardRouter` maps admitted jobs onto shards with
  deterministic placement policies — ``by_testbed`` and ``by_tenant``
  (stable keyed-hash affinity) or ``least_loaded`` (per-shard
  queued-bytes / active-session gauges, lowest index breaking ties);
* a :class:`ShardedControlPlane` composes one per-shard
  :class:`~repro.service.control.ControlPlane` (shard-local WDRR
  queues, degradation bounds, and circuit breakers) under a global
  layer that owns what must not be sharded — tenant admission quotas
  and the placement decision — plus *rebalance-on-shed*: a job whose
  home shard would shed it is offered to the other shards in
  least-loaded order before any shedding happens.

Per-shard optimizer state stays isolated by construction (each shard's
service derives its own RNG streams), so tuning signals are never
cross-contaminated between shards — the heuristic-tuning concern of
Arslan & Kosar (PAPERS.md).

Determinism and parity:

* all placement is pure arithmetic over names and gauges — no RNG;
* shard engines advance in index order to the same target time
  (:meth:`ShardedControlPlane.run_until`), so traces interleave
  deterministically;
* a 1-shard plane is **bit-identical** to an unsharded
  :class:`ControlPlane` driven the same way (the shards=1 parity
  test): the pre-checks it adds are side-effect-free, shard 0 keeps
  the caller's base seed, and routing events (``job.route`` /
  ``shard.saturated``) are emitted only when there are 2+ shards.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence, Union

from repro.config import DEFAULT_CONFIG, SimConfig
from repro.obs.events import JobRouted, QuotaExhausted, ShardSaturated
from repro.obs.tracer import current_tracer
from repro.service.control import SHED_BREAKER, SHED_QUOTA, ControlPlane, ControlPolicy
from repro.service.jobs import JobState, TransferJob
from repro.service.policy import RetryPolicy
from repro.service.service import FalconService
from repro.service.tenancy import TenantSpec, TokenBucket
from repro.sim.engine import SimulationEngine
from repro.testbeds.base import Testbed
from repro.transfer.dataset import Dataset
from repro.transfer.executor import FluidTransferNetwork

#: A testbed, or a zero-argument factory each shard calls to build its
#: own private replica.  Multi-shard planes require the factory form —
#: sharing one Testbed instance would share links (double-booking
#: capacity) and leak faults across shards.
TestbedSpec = Union[Testbed, Callable[[], Testbed]]

#: The closed vocabulary of placement policies.
PLACEMENTS = ("by_testbed", "by_tenant", "least_loaded")


def _stable_index(key: str, n: int) -> int:
    """Deterministic shard index for ``key`` (keyed blake2b, mod ``n``).

    Same construction as :func:`repro.runner.seeds.derive_seed`: stable
    across processes and runs, independent of registration order.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % n


@dataclass
class DataShard:
    """One independent data-plane engine.

    The engine/network/service triple is fully private to the shard;
    ``plane`` (the shard-local :class:`ControlPlane`) is installed by
    :class:`ShardedControlPlane` at construction.  Testbed replicas
    built from factories are cached per shard in ``_testbeds`` (keyed
    by the factory object; never iterated, so identity keys stay
    deterministic).
    """

    index: int
    name: str
    engine: SimulationEngine
    network: FluidTransferNetwork
    service: FalconService
    plane: Optional[ControlPlane] = None
    _testbeds: dict = field(default_factory=dict, repr=False)

    def localize(self, spec: TestbedSpec) -> Testbed:
        """This shard's replica of ``spec`` (built once per factory)."""
        if isinstance(spec, Testbed):
            return spec
        testbed = self._testbeds.get(spec)
        if testbed is None:
            testbed = spec()
            self._testbeds[spec] = testbed
        return testbed

    # -- load gauges (what least_loaded placement reads) -----------------------

    @property
    def queued_bytes(self) -> float:
        """Dataset bytes waiting in this shard's control queues."""
        return self.plane.queued_bytes if self.plane is not None else 0.0

    @property
    def active_sessions(self) -> int:
        """Jobs currently transferring on this shard (count)."""
        return len(self.service.running())

    @property
    def load_bytes(self) -> float:
        """Queued plus in-flight dataset bytes — the placement gauge."""
        running = sum(job.dataset.total_bytes for job in self.service.running())
        return self.queued_bytes + running

    @property
    def busy(self) -> bool:
        """True while this shard still has queued or running work."""
        if self.plane is not None and self.plane.depth > 0:
            return True
        return bool(self.service.running())


def make_shards(
    n: int,
    *,
    seed: int = 0,
    max_active: int = 4,
    config: SimConfig = DEFAULT_CONFIG,
    fault_policy: RetryPolicy | None = None,
    adaptive: bool = False,
) -> list[DataShard]:
    """Build ``n`` independent data-plane shards.

    Shard 0 keeps the caller's base ``seed`` — that is what makes a
    1-shard plane bit-identical to an unsharded service — and shards
    1..n-1 derive independent seeds through the runner's keyed hash,
    so per-shard measurement jitter and optimizer state never
    correlate across shards.
    """
    from repro.runner.seeds import derive_seed

    if n < 1:
        raise ValueError("need at least one shard")
    shards: list[DataShard] = []
    for i in range(n):
        engine = SimulationEngine(dt=config.dt)
        network = FluidTransferNetwork(engine, config, adaptive=adaptive)
        service = FalconService(
            engine=engine,
            network=network,
            max_active=max_active,
            seed=seed if i == 0 else derive_seed(seed, "shard", i),
            fault_policy=fault_policy,
        )
        shards.append(
            DataShard(index=i, name=f"shard{i}", engine=engine, network=network, service=service)
        )
    return shards


class ShardRouter:
    """Deterministic placement of admitted jobs onto data-plane shards.

    ``by_testbed`` and ``by_tenant`` are affinity policies: a stable
    keyed hash of the routing key picks the home shard, so the same
    testbed (or tenant) always lands on the same shard — which is what
    keeps per-shard optimizer history coherent and makes shard-local
    breakers meaningful.  ``least_loaded`` reads the per-shard gauges
    (queued + in-flight dataset bytes, then active sessions, then the
    shard index as the final tie-break) at each placement, spreading
    load without any RNG.
    """

    def __init__(self, shards: Sequence[DataShard], placement: str = "least_loaded") -> None:
        if not shards:
            raise ValueError("need at least one shard")
        if placement not in PLACEMENTS:
            raise ValueError(f"unknown placement {placement!r} (one of {PLACEMENTS})")
        self.shards = list(shards)
        self.placement = placement

    def place(self, tenant: str, testbed_key: str) -> DataShard:
        """The home shard for one (tenant, testbed) submission."""
        n = len(self.shards)
        if self.placement == "by_testbed":
            return self.shards[_stable_index(testbed_key, n)]
        if self.placement == "by_tenant":
            return self.shards[_stable_index(tenant, n)]
        return min(self.shards, key=self._load_key)

    def fallbacks(self, home: DataShard) -> list[DataShard]:
        """Every other shard, least-loaded first (rebalance order)."""
        rest = [shard for shard in self.shards if shard is not home]
        rest.sort(key=self._load_key)
        return rest

    @staticmethod
    def _load_key(shard: DataShard) -> tuple:
        return (shard.load_bytes, shard.active_sessions, shard.index)


@dataclass
class _GlobalTenant:
    """Sharded-plane tenant record: the spec plus its *global* quota."""

    spec: TenantSpec
    bucket: TokenBucket


class ShardedControlPlane:
    """Admission and routing across N independent data-plane shards.

    Composition: each shard gets its own :class:`ControlPlane` — that
    sub-plane owns everything that must be shard-local (WDRR tenant
    queues, the bounded queue and degradation threshold, per-testbed
    circuit breakers, preemption, dispatch).  This wrapper owns the
    two things that must stay global: per-tenant admission quotas (a
    tenant cannot multiply its rate by the shard count) and the
    placement decision.

    Admission order matches the unsharded plane exactly — breaker,
    quota, degradation, bounded queue — with one addition between the
    breaker and the final verdict: if the home shard would shed the
    job, *rebalance-on-shed* offers it to the other shards in
    least-loaded order, and only when every shard refuses does the
    home shard shed it (``shard.saturated`` records the refusal either
    way).  With a single shard all of this collapses to the unsharded
    code path, bit for bit.
    """

    def __init__(
        self,
        shards: Sequence[DataShard],
        policy: ControlPolicy | None = None,
        *,
        placement: str = "least_loaded",
        rebalance: bool = True,
    ) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        names = [shard.name for shard in shards]
        if len(set(names)) != len(names):
            raise ValueError("shard names must be unique")
        self.shards = list(shards)
        self.policy = policy or ControlPolicy()
        self.router = ShardRouter(self.shards, placement)
        self.rebalance = rebalance
        for shard in self.shards:
            shard.plane = ControlPlane(shard.service, self.policy)
        self._tenants: dict[str, _GlobalTenant] = {}
        #: Routing key per factory object (prototype testbed name).
        self._route_keys: dict = {}
        #: Shed jobs across all shards, in decision order.
        self.shed: list[TransferJob] = []

    # -- clock -----------------------------------------------------------------

    @property
    def now(self) -> float:
        """The shared simulation clock (shard 0 is the reference)."""
        return self.shards[0].engine.now

    def run_until(self, time: float) -> None:
        """Advance every shard engine to ``time``, in shard order.

        Shards are independent simulations, so advancing them one
        after another is exact — there is no cross-shard event to
        interleave — and the fixed order keeps traces deterministic.
        """
        for shard in self.shards:
            shard.engine.run_until(time)

    def run_for(self, span: float) -> None:
        """Advance every shard engine by ``span`` seconds."""
        self.run_until(self.now + span)

    @property
    def busy(self) -> bool:
        """True while any shard has queued or running work."""
        return any(shard.busy for shard in self.shards)

    def drain(self, deadline: float, step: float) -> None:
        """Run until idle or ``deadline``, advancing ``step`` at a time."""
        while self.now < deadline and self.busy:
            self.run_until(min(deadline, self.now + step))

    # -- registration ----------------------------------------------------------

    def register_tenant(self, spec: TenantSpec) -> None:
        """Register ``spec`` on every shard; its quota stays global.

        Sub-planes receive the spec with an unlimited quota — the
        single global token bucket here is the only admission rate
        limit, so a tenant's sustained rate does not scale with the
        shard count.
        """
        if spec.name in self._tenants:
            raise ValueError(f"tenant {spec.name!r} already registered")
        self._tenants[spec.name] = _GlobalTenant(
            spec=spec, bucket=TokenBucket(spec.quota_rate, spec.quota_burst, self.now)
        )
        unlimited = replace(spec, quota_rate=math.inf)
        for shard in self.shards:
            shard.plane.register_tenant(unlimited)

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        testbed: TestbedSpec,
        dataset: Dataset,
        tenant: str,
        name: Optional[str] = None,
    ) -> TransferJob:
        """Route, admit, queue, or shed one job for ``tenant``.

        ``testbed`` must be a zero-argument factory when there are 2+
        shards (each shard builds its own replica); a plain
        :class:`Testbed` is accepted on a 1-shard plane.  Like the
        unsharded plane, always returns the job — shed jobs come back
        terminal ``REJECTED`` with a typed ``rejection_reason``.
        """
        st = self._tenants.get(tenant)
        if st is None:
            raise KeyError(f"unknown tenant {tenant!r}")
        now = self.now
        priority = st.spec.priority
        home = self.router.place(tenant, self._route_key(testbed))
        chosen = home
        verdict = home.plane.admission_verdict(home.localize(testbed), priority)
        if verdict is not None and len(self.shards) > 1:
            target: Optional[DataShard] = None
            if self.rebalance:
                for alt in self.router.fallbacks(home):
                    if alt.plane.admission_verdict(alt.localize(testbed), priority) is None:
                        target = alt
                        break
            self._note_saturated(home, verdict, target)
            if target is not None:
                chosen, verdict = target, None
        # Quota is global and sits between the breaker gate and the
        # occupancy gates, exactly as in the unsharded pipeline: a
        # breaker-shed job never pays a token.
        if verdict != SHED_BREAKER and not st.bucket.try_take(now):
            job = chosen.service.register(
                chosen.localize(testbed), dataset, name=name, tenant=tenant, priority=priority
            )
            tracer = current_tracer()
            if tracer is not None:
                tracer.emit(
                    QuotaExhausted, tenant=tenant, job=job.name, rate=st.spec.quota_rate
                )
                tracer.metrics.inc("control.quota_exhausted")
            chosen.plane.shed_job(job, SHED_QUOTA)
            self.shed.append(job)
            return job
        job = chosen.plane.submit(chosen.localize(testbed), dataset, tenant, name=name)
        if job.state is JobState.REJECTED:
            self.shed.append(job)
        elif len(self.shards) > 1:
            tracer = current_tracer()
            if tracer is not None:
                tracer.emit(
                    JobRouted,
                    tenant=tenant,
                    job=job.name,
                    job_id=job.job_id,
                    shard=chosen.name,
                    policy=self.router.placement,
                    queue_depth=chosen.plane.depth,
                )
                tracer.metrics.inc("control.routed")
        return job

    # -- introspection ---------------------------------------------------------

    @property
    def depth(self) -> int:
        """Jobs waiting across every shard's control queues (count)."""
        return sum(shard.plane.depth for shard in self.shards)

    def queued(self) -> list[TransferJob]:
        """Waiting jobs, shard by shard in index order."""
        out: list[TransferJob] = []
        for shard in self.shards:
            out.extend(shard.plane.queued())
        return out

    def jobs(self) -> list[TransferJob]:
        """Every job ever registered, shard by shard in index order."""
        out: list[TransferJob] = []
        for shard in self.shards:
            out.extend(shard.service.jobs)
        return out

    # -- internals -------------------------------------------------------------

    def _route_key(self, spec: TestbedSpec) -> str:
        """Stable routing key: the testbed's name.

        Factories are resolved through a cached prototype build, so
        anonymous factories (lambdas, partials) key correctly by the
        testbed they produce rather than colliding on ``__name__``.
        """
        if isinstance(spec, Testbed):
            if len(self.shards) > 1:
                raise ValueError(
                    "multi-shard planes need a testbed factory (each shard "
                    "builds its own replica); got a Testbed instance"
                )
            return spec.name
        key = self._route_keys.get(spec)
        if key is None:
            key = spec().name
            self._route_keys[spec] = key
        return key

    def _note_saturated(
        self, home: DataShard, reason: str, target: Optional[DataShard]
    ) -> None:
        """Record a home-shard refusal (and the reroute, if any)."""
        tracer = current_tracer()
        if tracer is None:
            return
        tracer.emit(
            ShardSaturated,
            shard=home.name,
            reason=reason,
            queue_depth=home.plane.depth,
            rerouted_to=target.name if target is not None else "",
        )
        tracer.metrics.inc(
            "control.rebalanced" if target is not None else "control.saturated"
        )
