"""Tenants and admission quotas for the control plane.

A *tenant* is one bandwidth customer: a science collaboration, a
portal, a batch pipeline.  Its :class:`TenantSpec` fixes three things
the scheduler needs — a weight (long-run share under contention), a
priority class (who preempts whom), and an admission quota (how fast
it may *submit*, enforced by a token bucket before a job ever
queues).

The token bucket runs on simulation time supplied by the caller, so
quota decisions replay deterministically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.service.jobs import Priority


@dataclass(frozen=True)
class TenantSpec:
    """Declarative per-tenant policy.

    Parameters
    ----------
    name:
        Unique tenant id (registration order is the scheduler's
        deterministic tie-break, so order of ``register_tenant`` calls
        matters and must itself be deterministic).
    weight:
        Relative long-run share under weighted deficit round-robin
        (dimensionless, >= 1 recommended; byte-denominated deficits
        accrue proportionally).
    quota_rate:
        Sustained admission rate in jobs per simulated second
        (``math.inf`` disables the quota).
    quota_burst:
        Bucket depth in jobs: how many submissions can arrive
        back-to-back before the rate limit bites.
    priority:
        Scheduling class for every job this tenant submits.
    """

    name: str
    weight: float = 1.0
    quota_rate: float = math.inf
    quota_burst: int = 8
    priority: Priority = Priority.NORMAL

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0.0:
            raise ValueError("weight must be positive")
        if self.quota_rate <= 0.0:
            raise ValueError("quota_rate must be positive (use math.inf to disable)")
        if self.quota_burst < 1:
            raise ValueError("quota_burst must be >= 1")


class TokenBucket:
    """Sim-clock token bucket: ``rate`` tokens/s, capacity ``burst``.

    Starts full.  ``try_take`` refills lazily from the elapsed
    simulated time and consumes one token if available — no engine
    callbacks, no wall clock, fully deterministic.
    """

    def __init__(self, rate: float, burst: int, now: float) -> None:
        self.rate = rate
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = now

    def try_take(self, now: float) -> bool:
        """Consume one token at simulated time ``now`` if one is available."""
        if math.isinf(self.rate):
            return True
        elapsed = now - self._stamp
        self._stamp = now
        if elapsed > 0.0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    @property
    def tokens(self) -> float:
        """Tokens available as of the last :meth:`try_take` (jobs)."""
        return self._tokens
