"""Discrete-event / fluid-flow simulation substrate.

The substrate has three pieces:

* :mod:`repro.sim.rng` — deterministic per-component random streams so
  experiments are reproducible and components stay decoupled.
* :mod:`repro.sim.fairshare` — progressive-filling max-min fair
  bandwidth allocation, the arbitration rule every shared resource
  (bottleneck link, storage array, NIC) uses.
* :mod:`repro.sim.engine` — an event queue with fixed-step fluid
  integration between events.
"""

from repro.sim.engine import Event, SimulationEngine
from repro.sim.fairshare import max_min_fair_share, weighted_max_min_fair_share
from repro.sim.rng import RngStreams

__all__ = [
    "Event",
    "SimulationEngine",
    "max_min_fair_share",
    "weighted_max_min_fair_share",
    "RngStreams",
]
