"""Batched per-worker state store: one contiguous array set for all sessions.

At scale (hundreds of sessions, tens of thousands of workers) the cost
of a fluid step is dominated by *per-session* numpy dispatch: every
session advancing its own small arrays costs dozens of interpreter
round trips, multiplied by the session count.  This module hoists that
state into one set of contiguous global arrays — ``rates``,
``file_size``, ``file_done``, ``gap_left``, ``stall_left``,
``attempts``, ``has_file`` — indexed by the executor's global worker
numbering (``_Topology.offsets``), so one vectorized pass advances
every session and link at once.

View discipline
---------------
Each attached :class:`~repro.transfer.session.TransferSession` holds
*views* into the global arrays (``session.rates is store.rates[lo:hi]``
memory-wise), installed by :meth:`TransferSession.adopt_state`.  All
in-place mutation — fault injection's ``crash_worker``/``stall_worker``,
``assign_files``, the cascade advance — therefore writes straight
through to the store.  Operations that *rebind* a session's arrays
(worker resize via ``np.concatenate``/slicing) detach that session from
the store; they already raise the executor's topology-dirty flag, so
the next fluid step rebuilds the topology and re-gathers every
session's current arrays into a fresh store.

Bit-for-bit parity
------------------
The batched pass is required to reproduce the per-session path exactly
(``tests/integration/test_batch_parity.py``).  Three rules make that
hold:

* every elementwise update uses the same expression as the per-session
  code, with per-session scalars (loss goodput factor, TCP ramp blend)
  expanded per worker through the precomputed session-index gather
  (``v[self._expand]``, built once per topology epoch and
  value-identical to ``np.repeat(v, counts)`` — IEEE elementwise ops
  don't care whether the operand is broadcast, repeated, or gathered);
* per-session reductions are contiguous-slice ``.sum()`` calls, which
  numpy's pairwise summation resolves identically to the session's own
  standalone array of the same length (``np.add.reduceat`` does *not*
  guarantee that and is only ever used as a boolean selector here);
* workers whose file completes inside the step fall back to the
  session's per-worker cascade (`TransferSession._advance_worker`), in
  ascending worker order — the same order, and therefore the same queue
  pops and float accumulation, as the per-session path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.obs.events import BatchCascadeFallback
from repro.obs.tracer import current_tracer

if TYPE_CHECKING:
    from repro.transfer.session import TransferSession


class BatchStore:
    """Contiguous per-worker state spanning every attached session.

    Built by the executor's topology rebuild from the session list and
    the global worker ``offsets`` (session ``i`` owns worker rows
    ``offsets[i]:offsets[i+1]``); lives exactly as long as the cached
    topology it belongs to.
    """

    def __init__(self, sessions: Sequence["TransferSession"], offsets: np.ndarray) -> None:
        self.sessions = list(sessions)
        self.offsets = np.asarray(offsets, dtype=np.intp)
        self.counts = np.diff(self.offsets)
        self.total = int(self.offsets[-1]) if self.offsets.size else 0

        n = self.total
        self.rates = np.empty(n)
        self.file_size = np.empty(n)
        self.file_done = np.empty(n)
        self.gap_left = np.empty(n)
        self.stall_left = np.empty(n)
        self.attempts = np.empty(n, dtype=np.intp)
        self.has_file = np.empty(n, dtype=bool)

        for i, s in enumerate(self.sessions):
            lo, hi = self.offsets[i], self.offsets[i + 1]
            self.rates[lo:hi] = s.rates
            self.file_size[lo:hi] = s.file_size
            self.file_done[lo:hi] = s.file_done
            self.gap_left[lo:hi] = s.gap_left
            self.stall_left[lo:hi] = s.stall_left
            self.attempts[lo:hi] = s.attempts
            self.has_file[lo:hi] = s.has_file
            s.adopt_state(
                self.rates[lo:hi],
                self.file_size[lo:hi],
                self.file_done[lo:hi],
                self.gap_left[lo:hi],
                self.stall_left[lo:hi],
                self.attempts[lo:hi],
                self.has_file[lo:hi],
            )

        #: Per-session TCP ramp time constants (fixed for a session's
        #: lifetime: path RTT and transport are frozen at construction).
        self._tau = [float(s.tcp.ramp_tau(s.path_rtt)) for s in self.sessions]
        #: Session index of each worker row: the expansion gather that
        #: turns a per-session vector into a per-worker one.  Fixed for
        #: the store's lifetime (one topology epoch), so per-step
        #: ``np.repeat(per_session, counts)`` calls become plain fancy
        #: indexing — value-identical, repeat(v, c) == v[expand].
        self._expand = np.repeat(np.arange(len(self.sessions), dtype=np.intp), self.counts)
        self._blend_cache: dict[float, tuple[np.ndarray, np.ndarray]] = {}

    # -- view management -----------------------------------------------------

    def detach(self, session: "TransferSession") -> None:
        """Give ``session`` back standalone copies of its state.

        Called when a session leaves the executor so its final state
        stops aliasing the (soon to be rebuilt) global arrays.
        """
        session.adopt_state(
            session.rates.copy(),
            session.file_size.copy(),
            session.file_done.copy(),
            session.gap_left.copy(),
            session.stall_left.copy(),
            session.attempts.copy(),
            session.has_file.copy(),
        )

    # -- per-session idle bookkeeping ----------------------------------------

    def busy_counts(self) -> np.ndarray:
        """Workers holding a file, per session (one global reduction).

        ``np.add.reduceat`` is safe here: the result is only ever
        compared against worker counts, never fed into float state.
        """
        return np.add.reduceat(self.has_file.astype(np.int64), self.offsets[:-1])

    # -- the batched advance --------------------------------------------------

    #: Distinct step lengths memoized before the blend cache resets.
    #: Fixed-dt runs see a handful of neighbouring floats; adaptive runs
    #: add one entry per distinct grid step (still few) — the cap only
    #: guards pathological callers that sweep dt continuously.
    _BLEND_CACHE_MAX = 256

    def _blends_for(self, dt: float) -> tuple[np.ndarray, np.ndarray]:
        """``(per_session, per_worker)`` TCP ramp blends ``1 - exp(-dt / tau)``.

        Computed from per-session *scalar* exponentials (bit-identical
        to :meth:`TcpModel.advance_rates`) and expanded per worker;
        memoized per exact ``dt`` value — the engine's accumulated clock
        makes the step size wobble between a handful of neighbouring
        float values, so a dict (not a last-value slot) is what keeps
        the hit rate near 100%.  The key is the *actual* step length:
        adaptive jumps advance on the same grid as fixed-dt stepping but
        event clamping still produces variable spans, and a blend for
        the wrong dt would silently skew every ramp.
        """
        entry = self._blend_cache.get(dt)
        if entry is None:
            if len(self._blend_cache) >= self._BLEND_CACHE_MAX:
                self._blend_cache.clear()
            per_session = np.array(
                [1.0 - float(np.exp(-dt / tau)) for tau in self._tau]
            )
            entry = self._blend_cache[dt] = (per_session, per_session[self._expand])
        return entry

    def _blend_for(self, dt: float) -> np.ndarray:
        """Per-worker TCP ramp blend (see :meth:`_blends_for`)."""
        return self._blends_for(dt)[1]

    def step(self, dt: float, targets: np.ndarray, losses: np.ndarray, now: float) -> None:
        """Advance every session by ``dt`` in one vectorized pass.

        Parameters
        ----------
        targets:
            Global per-worker allocated equilibrium rates (bps) from the
            executor's waterfill, in store order.
        losses:
            Per-session path-loss fractions this step.
        now:
            Simulation time at the *start* of the step.
        """
        sessions = self.sessions
        n_sess = len(sessions)
        offsets = self.offsets

        goodput = 1.0 - losses
        gf_w = goodput[self._expand]

        # TCP dynamics: instant decrease, exponential relaxation up —
        # the same expression as TcpModel.advance_rates, in place.
        rates = self.rates
        blend = self._blend_for(dt)
        ramped = rates + (targets - rates) * blend
        rates[:] = np.where(targets < rates, targets, ramped)

        # Stalls first (hung workers move nothing), then gaps.  Workers
        # with no stall see budget == dt exactly, so running every
        # session through the stall branch is value-identical to the
        # per-session path's branch-per-session structure.
        if self.stall_left.any():
            stall_used = np.minimum(self.stall_left, dt)
            self.stall_left -= stall_used
            consumed = np.add.reduceat(stall_used, offsets[:-1])
            for i in np.flatnonzero(consumed > 0.0).tolist():
                lo, hi = offsets[i], offsets[i + 1]
                sessions[i].stalled_seconds += float(stall_used[lo:hi].sum())
            budget = dt - stall_used
            time_left = np.maximum(0.0, budget - self.gap_left)
            self.gap_left[:] = np.maximum(0.0, self.gap_left - budget)
        else:
            time_left = np.maximum(0.0, dt - self.gap_left)
            self.gap_left[:] = np.maximum(0.0, self.gap_left - dt)

        good_rate_Bps = rates * gf_w / 8.0

        good_totals = [0.0] * n_sess
        cascade_sessions = 0
        cascade_workers = 0
        moving = np.flatnonzero(
            self.has_file & (time_left > 1e-12) & (good_rate_Bps > 1e-9)
        )
        if moving.size:
            need = self.file_size[moving] - self.file_done[moving]
            finishes = (need / good_rate_Bps[moving]) <= time_left[moving]

            # Streaming workers (no completion this step): one global
            # update, then per-session contiguous-slice sums.
            streaming = moving[~finishes]
            moved = good_rate_Bps[streaming] * time_left[streaming]
            self.file_done[streaming] += moved
            bounds = np.searchsorted(streaming, offsets)
            for i in np.flatnonzero(np.diff(bounds)).tolist():
                good_totals[i] = float(moved[bounds[i] : bounds[i + 1]].sum())

            # Completion cascade: only workers that actually finish a
            # file fall back to the per-worker advance, in worker order.
            if finishes.any():
                cascading = moving[finishes]
                cascade_workers = int(cascading.size)
                w_bounds = np.searchsorted(cascading, offsets)
                for i in np.flatnonzero(np.diff(w_bounds)).tolist():
                    cascade_sessions += 1
                    s = sessions[i]
                    base = int(offsets[i])
                    gf = float(goodput[i])
                    total = good_totals[i]
                    for w in cascading[w_bounds[i] : w_bounds[i + 1]].tolist():
                        good, _ = s._advance_worker(
                            w - base,
                            float(time_left[w]),
                            float(good_rate_Bps[w]),
                            gf,
                        )
                        total += good
                    good_totals[i] = total

        if cascade_workers:
            tracer = current_tracer()
            if tracer is not None:
                tracer.emit(
                    BatchCascadeFallback,
                    sessions=cascade_sessions,
                    workers=cascade_workers,
                )
                tracer.metrics.inc("fluid.cascade_fallbacks")

        # Per-session accounting and file assignment.  Only sessions
        # with an idle worker need the assignment/completion scan.
        busy = self.busy_counts()
        counts = self.counts
        for i, s in enumerate(sessions):
            gf = float(goodput[i])
            good = good_totals[i]
            sent = good / gf if gf > 0 else good
            s.current_loss = float(losses[i])
            s._finish_step(good, sent, dt, now, idle_workers=bool(busy[i] < counts[i]))

    # -- adaptive stepping -----------------------------------------------------

    def next_transition(
        self, now: float, targets: np.ndarray, losses: np.ndarray
    ) -> float:
        """Absolute time of the earliest future per-worker transition.

        Under a frozen equilibrium (``targets`` per worker, ``losses``
        per session) the discrete transitions the fluid state can hit
        are (a) a moving worker finishing its file and (b) an idle
        worker's stall/gap budget expiring, at which point it starts
        moving.  The completion bound uses the *allocated* rate: actual
        rates only ever ramp up toward the allocation from below
        (decreases snap instantly), so ``need / (target * gf / 8)`` is
        the earliest the file can possibly complete — conservative for
        jump planning.  TCP ramp convergence is deliberately *not* a
        transition: :meth:`jump` reproduces the oracle's discretized
        ramp in closed form, converged or not.  Returns ``inf`` when
        nothing bounds the span (e.g. every remaining worker is
        fileless and demands nothing).
        """
        gf_w = (1.0 - losses)[self._expand]
        good_rate_Bps = targets * gf_w / 8.0
        idle_time = self.stall_left + self.gap_left
        bound = np.inf
        movers = self.has_file & (idle_time <= 0.0) & (good_rate_Bps > 1e-9)
        if movers.any():
            need = self.file_size[movers] - self.file_done[movers]
            bound = float((need / good_rate_Bps[movers]).min())
        waking = self.has_file & (idle_time > 0.0)
        if waking.any():
            bound = min(bound, float(idle_time[waking].min()))
        return now + bound

    def jump(
        self, h: float, n: int, targets: np.ndarray, losses: np.ndarray, now: float
    ) -> None:
        """Advance every session by ``n`` grid steps of size ``h`` at once.

        Closed-form equivalent of ``n`` consecutive :meth:`step` calls
        under a frozen equilibrium — constant ``targets``/``losses`` and
        no worker starting, finishing, or acquiring a file inside the
        window, which is exactly what the executor's jump planner
        proves before calling.  Per grid step the oracle ramps
        ``r_i = T - (T - r_{i-1}) * q`` with ``q = 1 - blend(h)`` and
        then moves ``r_i * gf / 8 * h`` bytes, so after ``n`` steps::

            r_n   = T - (T - r_0) * q^n
            bytes = gf/8 * h * (T*n - (T - r_0) * q * (1 - q^n) / (1 - q))

        evaluated here directly.  The only divergence from the iterated
        oracle is float round-off: the geometric series is summed in
        closed form instead of accumulated step by step.  Throughput
        monitors receive one record covering the whole span (totals are
        preserved; tail-windowed samples see coarser granularity, but
        agent sample boundaries are engine events, which bound jumps).
        """
        sessions = self.sessions
        n_sess = len(sessions)
        offsets = self.offsets
        span = h * n

        goodput = 1.0 - losses
        gf_w = goodput[self._expand]

        blend_s, _ = self._blends_for(h)
        q_s = 1.0 - blend_s
        qn_s = q_s**n
        # sum_{i=1..n} q^i with the q == 1 limit (tau >> h) -> n.
        safe_blend = np.where(blend_s > 0.0, blend_s, 1.0)
        series_s = np.where(blend_s > 0.0, (q_s - q_s * qn_s) / safe_blend, float(n))
        qn_w = qn_s[self._expand]
        series_w = series_s[self._expand]

        rates = self.rates
        # Ramp gap toward the allocation; zero for workers snapping down
        # (the oracle's instant decrease lands them on target in step 1).
        ramp_gap = np.maximum(targets - rates, 0.0)
        new_rates = targets - ramp_gap * qn_w

        # Stall/gap budgets drain linearly and sequentially, so the
        # n-step drain equals one span-sized drain (same expressions as
        # :meth:`step` with dt = span).
        if self.stall_left.any():
            stall_used = np.minimum(self.stall_left, span)
            self.stall_left -= stall_used
            consumed = np.add.reduceat(stall_used, offsets[:-1])
            for i in np.flatnonzero(consumed > 0.0).tolist():
                lo, hi = offsets[i], offsets[i + 1]
                sessions[i].stalled_seconds += float(stall_used[lo:hi].sum())
            budget = span - stall_used
            time_left = np.maximum(0.0, budget - self.gap_left)
            self.gap_left[:] = np.maximum(0.0, self.gap_left - budget)
        else:
            time_left = np.maximum(0.0, span - self.gap_left)
            self.gap_left[:] = np.maximum(0.0, self.gap_left - span)

        # Bytes over the window from the ramp series above.  The planner
        # guarantees movers are full-span movers (no mid-window wake-ups
        # or completions), so time_left is binary: span or 0.
        moved_w = gf_w / 8.0 * h * (targets * float(n) - ramp_gap * series_w)
        good_totals = [0.0] * n_sess
        moving = np.flatnonzero(self.has_file & (time_left > 1e-12))
        if moving.size:
            moved = moved_w[moving]
            self.file_done[moving] += moved
            bounds = np.searchsorted(moving, offsets)
            for i in np.flatnonzero(np.diff(bounds)).tolist():
                good_totals[i] = float(moved[bounds[i] : bounds[i + 1]].sum())
        rates[:] = new_rates

        busy = self.busy_counts()
        counts = self.counts
        for i, s in enumerate(sessions):
            gf = float(goodput[i])
            good = good_totals[i]
            sent = good / gf if gf > 0 else good
            s.current_loss = float(losses[i])
            s._finish_step(good, sent, span, now, idle_workers=bool(busy[i] < counts[i]))
