"""Batched per-worker state store: one contiguous array set for all sessions.

At scale (hundreds of sessions, tens of thousands of workers) the cost
of a fluid step is dominated by *per-session* numpy dispatch: every
session advancing its own small arrays costs dozens of interpreter
round trips, multiplied by the session count.  This module hoists that
state into one set of contiguous global arrays — ``rates``,
``file_size``, ``file_done``, ``gap_left``, ``stall_left``,
``attempts``, ``has_file`` — indexed by the executor's global worker
numbering (``_Topology.offsets``), so one vectorized pass advances
every session and link at once.

View discipline
---------------
Each attached :class:`~repro.transfer.session.TransferSession` holds
*views* into the global arrays (``session.rates is store.rates[lo:hi]``
memory-wise), installed by :meth:`TransferSession.adopt_state`.  All
in-place mutation — fault injection's ``crash_worker``/``stall_worker``,
``assign_files``, the cascade advance — therefore writes straight
through to the store.  Operations that *rebind* a session's arrays
(worker resize via ``np.concatenate``/slicing) detach that session from
the store; they already raise the executor's topology-dirty flag, so
the next fluid step rebuilds the topology and re-gathers every
session's current arrays into a fresh store.

Bit-for-bit parity
------------------
The batched pass is required to reproduce the per-session path exactly
(``tests/integration/test_batch_parity.py``).  Three rules make that
hold:

* every elementwise update uses the same expression as the per-session
  code, with per-session scalars (loss goodput factor, TCP ramp blend)
  expanded via ``np.repeat`` — IEEE elementwise ops are value-identical
  whether the operand is a broadcast scalar or a repeated array;
* per-session reductions are contiguous-slice ``.sum()`` calls, which
  numpy's pairwise summation resolves identically to the session's own
  standalone array of the same length (``np.add.reduceat`` does *not*
  guarantee that and is only ever used as a boolean selector here);
* workers whose file completes inside the step fall back to the
  session's per-worker cascade (`TransferSession._advance_worker`), in
  ascending worker order — the same order, and therefore the same queue
  pops and float accumulation, as the per-session path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.obs.events import BatchCascadeFallback
from repro.obs.tracer import current_tracer

if TYPE_CHECKING:
    from repro.transfer.session import TransferSession


class BatchStore:
    """Contiguous per-worker state spanning every attached session.

    Built by the executor's topology rebuild from the session list and
    the global worker ``offsets`` (session ``i`` owns worker rows
    ``offsets[i]:offsets[i+1]``); lives exactly as long as the cached
    topology it belongs to.
    """

    def __init__(self, sessions: Sequence["TransferSession"], offsets: np.ndarray) -> None:
        self.sessions = list(sessions)
        self.offsets = np.asarray(offsets, dtype=np.intp)
        self.counts = np.diff(self.offsets)
        self.total = int(self.offsets[-1]) if self.offsets.size else 0

        n = self.total
        self.rates = np.empty(n)
        self.file_size = np.empty(n)
        self.file_done = np.empty(n)
        self.gap_left = np.empty(n)
        self.stall_left = np.empty(n)
        self.attempts = np.empty(n, dtype=np.intp)
        self.has_file = np.empty(n, dtype=bool)

        for i, s in enumerate(self.sessions):
            lo, hi = self.offsets[i], self.offsets[i + 1]
            self.rates[lo:hi] = s.rates
            self.file_size[lo:hi] = s.file_size
            self.file_done[lo:hi] = s.file_done
            self.gap_left[lo:hi] = s.gap_left
            self.stall_left[lo:hi] = s.stall_left
            self.attempts[lo:hi] = s.attempts
            self.has_file[lo:hi] = s.has_file
            s.adopt_state(
                self.rates[lo:hi],
                self.file_size[lo:hi],
                self.file_done[lo:hi],
                self.gap_left[lo:hi],
                self.stall_left[lo:hi],
                self.attempts[lo:hi],
                self.has_file[lo:hi],
            )

        #: Per-session TCP ramp time constants (fixed for a session's
        #: lifetime: path RTT and transport are frozen at construction).
        self._tau = [float(s.tcp.ramp_tau(s.path_rtt)) for s in self.sessions]
        self._blend_cache: dict[float, np.ndarray] = {}

    # -- view management -----------------------------------------------------

    def detach(self, session: "TransferSession") -> None:
        """Give ``session`` back standalone copies of its state.

        Called when a session leaves the executor so its final state
        stops aliasing the (soon to be rebuilt) global arrays.
        """
        session.adopt_state(
            session.rates.copy(),
            session.file_size.copy(),
            session.file_done.copy(),
            session.gap_left.copy(),
            session.stall_left.copy(),
            session.attempts.copy(),
            session.has_file.copy(),
        )

    # -- per-session idle bookkeeping ----------------------------------------

    def busy_counts(self) -> np.ndarray:
        """Workers holding a file, per session (one global reduction).

        ``np.add.reduceat`` is safe here: the result is only ever
        compared against worker counts, never fed into float state.
        """
        return np.add.reduceat(self.has_file.astype(np.int64), self.offsets[:-1])

    # -- the batched advance --------------------------------------------------

    def _blend_for(self, dt: float) -> np.ndarray:
        """Per-worker TCP ramp blend ``1 - exp(-dt / tau)``.

        Computed from per-session *scalar* exponentials (bit-identical
        to :meth:`TcpModel.advance_rates`) and expanded per worker;
        memoized per exact ``dt`` value — the engine's accumulated clock
        makes the step size wobble between a handful of neighbouring
        float values, so a dict (not a last-value slot) is what keeps
        the hit rate near 100%.
        """
        blend = self._blend_cache.get(dt)
        if blend is None:
            per_session = np.array(
                [1.0 - float(np.exp(-dt / tau)) for tau in self._tau]
            )
            blend = self._blend_cache[dt] = np.repeat(per_session, self.counts)
        return blend

    def step(self, dt: float, targets: np.ndarray, losses: np.ndarray, now: float) -> None:
        """Advance every session by ``dt`` in one vectorized pass.

        Parameters
        ----------
        targets:
            Global per-worker allocated equilibrium rates (bps) from the
            executor's waterfill, in store order.
        losses:
            Per-session path-loss fractions this step.
        now:
            Simulation time at the *start* of the step.
        """
        sessions = self.sessions
        n_sess = len(sessions)
        offsets = self.offsets

        goodput = 1.0 - losses
        gf_w = np.repeat(goodput, self.counts)

        # TCP dynamics: instant decrease, exponential relaxation up —
        # the same expression as TcpModel.advance_rates, in place.
        rates = self.rates
        blend = self._blend_for(dt)
        ramped = rates + (targets - rates) * blend
        rates[:] = np.where(targets < rates, targets, ramped)

        # Stalls first (hung workers move nothing), then gaps.  Workers
        # with no stall see budget == dt exactly, so running every
        # session through the stall branch is value-identical to the
        # per-session path's branch-per-session structure.
        if self.stall_left.any():
            stall_used = np.minimum(self.stall_left, dt)
            self.stall_left -= stall_used
            consumed = np.add.reduceat(stall_used, offsets[:-1])
            for i in np.flatnonzero(consumed > 0.0).tolist():
                lo, hi = offsets[i], offsets[i + 1]
                sessions[i].stalled_seconds += float(stall_used[lo:hi].sum())
            budget = dt - stall_used
            time_left = np.maximum(0.0, budget - self.gap_left)
            self.gap_left[:] = np.maximum(0.0, self.gap_left - budget)
        else:
            time_left = np.maximum(0.0, dt - self.gap_left)
            self.gap_left[:] = np.maximum(0.0, self.gap_left - dt)

        good_rate_Bps = rates * gf_w / 8.0

        good_totals = [0.0] * n_sess
        cascade_sessions = 0
        cascade_workers = 0
        moving = np.flatnonzero(
            self.has_file & (time_left > 1e-12) & (good_rate_Bps > 1e-9)
        )
        if moving.size:
            need = self.file_size[moving] - self.file_done[moving]
            finishes = (need / good_rate_Bps[moving]) <= time_left[moving]

            # Streaming workers (no completion this step): one global
            # update, then per-session contiguous-slice sums.
            streaming = moving[~finishes]
            moved = good_rate_Bps[streaming] * time_left[streaming]
            self.file_done[streaming] += moved
            bounds = np.searchsorted(streaming, offsets)
            for i in np.flatnonzero(np.diff(bounds)).tolist():
                good_totals[i] = float(moved[bounds[i] : bounds[i + 1]].sum())

            # Completion cascade: only workers that actually finish a
            # file fall back to the per-worker advance, in worker order.
            if finishes.any():
                cascading = moving[finishes]
                cascade_workers = int(cascading.size)
                w_bounds = np.searchsorted(cascading, offsets)
                for i in np.flatnonzero(np.diff(w_bounds)).tolist():
                    cascade_sessions += 1
                    s = sessions[i]
                    base = int(offsets[i])
                    gf = float(goodput[i])
                    total = good_totals[i]
                    for w in cascading[w_bounds[i] : w_bounds[i + 1]].tolist():
                        good, _ = s._advance_worker(
                            w - base,
                            float(time_left[w]),
                            float(good_rate_Bps[w]),
                            gf,
                        )
                        total += good
                    good_totals[i] = total

        if cascade_workers:
            tracer = current_tracer()
            if tracer is not None:
                tracer.emit(
                    BatchCascadeFallback,
                    sessions=cascade_sessions,
                    workers=cascade_workers,
                )
                tracer.metrics.inc("fluid.cascade_fallbacks")

        # Per-session accounting and file assignment.  Only sessions
        # with an idle worker need the assignment/completion scan.
        busy = self.busy_counts()
        counts = self.counts
        for i, s in enumerate(sessions):
            gf = float(goodput[i])
            good = good_totals[i]
            sent = good / gf if gf > 0 else good
            s.current_loss = float(losses[i])
            s._finish_step(good, sent, dt, now, idle_workers=bool(busy[i] < counts[i]))
