"""Hybrid event-driven / fixed-step fluid simulation engine.

File-transfer dynamics have two time scales:

* *discrete events* — transfer tasks joining or leaving, agents making
  tuning decisions at the end of each sample interval, files completing;
* *continuous flow* — every active stream's rate evolves smoothly as
  TCP ramps and resources are re-arbitrated.

The engine keeps a priority queue of timestamped events and, between
events, advances the continuous state in fixed ``dt`` steps by calling a
registered *fluid step* callback.  This mirrors how fluid network
simulators (and e.g. ns-3's hybrid models) are structured, and keeps
experiments deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Optional

from repro.obs.events import AdaptiveJump, EngineEventFired, EngineStep
from repro.obs.tracer import current_tracer

if TYPE_CHECKING:
    from repro.sim.profile import PerfCounters

FluidStepFn = Callable[[float, float], None]
#: ``(now, step, max_steps) -> n``: how many grid steps of size ``step``
#: can be covered by one analytic jump without crossing a transition.
JumpPlanFn = Callable[[float, float, int], int]
#: ``(now, step, n) -> None``: advance continuous state by ``n`` grid
#: steps of size ``step`` in one closed-form pass.
FluidJumpFn = Callable[[float, float, int], None]
EventFn = Callable[[], None]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events at the same timestamp fire in insertion order (the ``seq``
    tiebreaker), which keeps multi-agent experiments deterministic.
    """

    time: float
    seq: int
    action: EventFn = field(compare=False)
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class SimulationEngine:
    """Event queue with fluid integration between events.

    Parameters
    ----------
    dt:
        Fluid-integration step, seconds.
    fluid_step:
        Callback ``(now, dt) -> None`` advancing continuous state.  May
        be set later via :attr:`fluid_step`.
    adaptive:
        Opt-in event-driven stepping.  When True *and* a fluid callback
        has registered :attr:`jump_planner` / :attr:`fluid_jump`, the
        engine asks the planner how many grid steps it can prove free of
        discrete transitions (file completions, gap/stall expiries,
        equilibrium changes) and covers them with one analytic jump.
        Fixed-dt remains the default oracle; the adaptive trajectory
        matches it to float round-off because jumps land exactly on the
        fixed grid and reproduce its discretized TCP ramp in closed
        form.  Without a planner the flag is inert (plain fixed-dt).

    Notes
    -----
    The engine never advances the fluid state past the next pending
    event: if an event lies mid-step, the step is shortened so state at
    the event timestamp is exact.  Adaptive jumps obey the same bound:
    the span is clamped against the event queue *before* the planner
    runs, and the planner may only shorten it further.
    """

    def __init__(
        self,
        dt: float = 0.1,
        fluid_step: Optional[FluidStepFn] = None,
        adaptive: bool = False,
    ) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.dt = float(dt)
        self.fluid_step = fluid_step
        self.adaptive = bool(adaptive)
        #: Set by the fluid callback's owner (e.g. FluidTransferNetwork)
        #: when it supports adaptive jumps; both must be set together.
        self.jump_planner: Optional[JumpPlanFn] = None
        self.fluid_jump: Optional[FluidJumpFn] = None
        #: Optional :class:`~repro.sim.profile.PerfCounters` collecting
        #: per-subsystem wall time and steps/sec.  ``None`` = no profiling.
        self.profile: Optional[PerfCounters] = None
        self._now = 0.0
        self._queue: list[Event] = []
        self._seq: Iterator[int] = itertools.count()
        self._stopped = False

    def enable_profiling(self) -> "PerfCounters":
        """Attach (and return) a fresh perf-counter set to this engine."""
        from repro.sim.profile import PerfCounters

        self.profile = PerfCounters()
        return self.profile

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule_at(self, time: float, action: EventFn, name: str = "") -> Event:
        """Schedule ``action`` at absolute simulation time ``time``."""
        if time < self._now - 1e-12:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        event = Event(time=max(time, self._now), seq=next(self._seq), action=action, name=name)
        heapq.heappush(self._queue, event)
        return event

    def schedule_in(self, delay: float, action: EventFn, name: str = "") -> Event:
        """Schedule ``action`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule_at(self._now + delay, action, name)

    def schedule_every(
        self, interval: float, action: EventFn, name: str = "", start: float | None = None
    ) -> Event:
        """Schedule ``action`` periodically.  Returns the *first* event.

        Cancelling the returned event stops only the first firing; for a
        stoppable periodic task have ``action`` raise ``StopIteration``
        or re-check a flag itself.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")

        def fire() -> None:
            try:
                action()
            except StopIteration:
                return
            self.schedule_in(interval, fire, name)

        first = self._now + (interval if start is None else max(0.0, start - self._now))
        return self.schedule_at(first, fire, name)

    def stop(self) -> None:
        """Request that :meth:`run_until` return at the current time.

        A stop requested while no run is in progress (e.g. by a service
        callback firing right after the previous ``run_until`` returned)
        stays pending: the *next* ``run_until`` returns immediately
        without advancing the clock.
        """
        self._stopped = True

    def run_until(self, end_time: float) -> None:
        """Advance the simulation to ``end_time``.

        Alternates between firing due events and integrating the fluid
        state in steps of at most ``dt``.  Each call consumes at most
        one :meth:`stop` request — whether it arrived mid-run or was
        already pending at entry.
        """
        if end_time < self._now:
            raise ValueError("end_time is in the past")
        if self._stopped:
            # Honor (and consume) a stop requested between runs instead
            # of silently discarding it.
            self._stopped = False
            return
        while not self._stopped:
            next_event_time = self._peek_time()
            if next_event_time is not None and next_event_time <= self._now + 1e-12:
                self._fire_due_events()
                continue
            horizon = end_time if next_event_time is None else min(end_time, next_event_time)
            if horizon <= self._now + 1e-12:
                break
            self._advance_fluid(horizon)
        stopped = self._stopped
        self._stopped = False
        if not stopped:
            self._now = max(self._now, end_time)

    def run_for(self, duration: float) -> None:
        """Advance the simulation by ``duration`` seconds."""
        self.run_until(self._now + duration)

    # -- internals ---------------------------------------------------------

    def _peek_time(self) -> Optional[float]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def _fire_due_events(self) -> None:
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > self._now + 1e-12:
                break
            heapq.heappop(self._queue)
            self._now = max(self._now, head.time)
            tracer = current_tracer()
            if tracer is not None:
                tracer.now = self._now
                tracer.emit(EngineEventFired, name=head.name)
            head.action()

    def _advance_fluid(self, horizon: float) -> None:
        """Integrate continuous state up to ``horizon`` in dt-steps.

        The step size is chosen so the span divides evenly (avoiding a
        tiny ragged final step), and events scheduled *by* a fluid step
        (e.g. a file completing mid-interval) fire before integration
        continues.  The remaining span is re-clamped against the event
        queue after every step: an event a fluid callback schedules
        inside the original span shortens the following steps so it
        fires exactly at its timestamp instead of on the old grid (up
        to one full step late).
        """
        while not self._stopped:
            if horizon - self._now <= 1e-12:
                self._now = max(self._now, horizon)
                return
            nxt = self._peek_time()
            target = horizon if nxt is None else min(horizon, nxt)
            span = target - self._now
            if span <= 1e-12:
                self._fire_due_events()
                continue
            steps = max(1, math.ceil(span / self.dt - 1e-9))
            step = span / steps
            jump = 1
            if (
                self.adaptive
                and steps > 1
                and self.jump_planner is not None
                and self.fluid_jump is not None
            ):
                # The planner may only shorten the (already event-clamped)
                # span; a jump of n covers exactly n grid steps so the
                # remaining span still divides evenly on the same grid.
                jump = max(1, min(int(self.jump_planner(self._now, step, steps)), steps))
            tracer = current_tracer()
            if tracer is not None:
                # Events emitted *inside* the fluid callback (rebalance
                # summaries) carry the step's start time.
                tracer.now = self._now
            if jump > 1:
                assert self.fluid_jump is not None
                self.fluid_jump(self._now, step, jump)
                advanced = step * jump
            else:
                if self.fluid_step is not None:
                    self.fluid_step(self._now, step)
                advanced = step
            self._now += advanced
            if tracer is not None:
                tracer.now = self._now
                tracer.emit(EngineStep, dt=advanced)
                tracer.metrics.inc("engine.steps")
                if jump > 1:
                    tracer.emit(AdaptiveJump, dt=advanced, step_s=step, skipped=jump - 1)
                    tracer.metrics.inc("engine.adaptive_jumps")
            if self.profile is not None:
                self.profile.note_step(advanced)
            nxt = self._peek_time()
            if nxt is not None and nxt <= self._now + 1e-12:
                self._fire_due_events()
