"""Max-min fair bandwidth allocation (progressive filling).

Equal-RTT TCP flows sharing a bottleneck converge to an approximately
max-min fair allocation (the paper leans on this: "most commonly used
TCP variants ... guarantee fairness among competing flows with the same
RTT").  Every shared resource in the simulator — bottleneck links,
storage arrays, NICs — arbitrates demand with the functions below.

The implementation is the classic water-filling algorithm, vectorised
with numpy: sort demands, find the breakpoint where the remaining
capacity split evenly no longer satisfies the next demand, and cap
everything beyond it at the fair level.
"""

from __future__ import annotations

import numpy as np

from repro.obs.tracer import current_tracer


def max_min_fair_share(demands: np.ndarray, capacity: float) -> np.ndarray:
    """Allocate ``capacity`` among ``demands`` max-min fairly.

    Parameters
    ----------
    demands:
        1-D array of non-negative demanded rates.
    capacity:
        Total capacity to divide (same unit as demands).

    Returns
    -------
    numpy.ndarray
        Allocation with ``0 <= alloc <= demand`` elementwise,
        ``alloc.sum() <= capacity`` (with equality when
        ``demands.sum() >= capacity``), and the max-min property: every
        unsatisfied flow receives the common fair level, which no
        satisfied flow exceeds.
    """
    demands = np.asarray(demands, dtype=float)
    if demands.ndim != 1:
        raise ValueError("demands must be a 1-D array")
    if np.any(demands < 0):
        raise ValueError("demands must be non-negative")
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    # Only the public wrapper is metered: the unchecked fast path runs
    # tens of thousands of times per simulated second, where even a
    # no-op tracer check would eat the <3% off-overhead budget.
    tracer = current_tracer()
    if tracer is not None:
        tracer.metrics.inc("fairshare.allocations")
        if demands.sum() > capacity:
            tracer.metrics.inc("fairshare.saturated")
    return _fair_share_unchecked(demands, capacity)


def _fair_share_unchecked(demands: np.ndarray, capacity: float) -> np.ndarray:
    """:func:`max_min_fair_share` without input validation.

    Internal fast path for the simulator's resource allocators, which
    call this tens of thousands of times per simulated second with
    demands they constructed themselves (1-D float, non-negative).
    """
    n = demands.size
    if n == 0:
        return np.zeros(0)
    total = demands.sum()
    # repro: lint-ok[F003]: exact-zero guard — total is a sum of
    # non-negative demands, which is 0.0 iff every demand is 0.0.
    if total <= capacity or total == 0.0:
        return demands.copy()

    # Progressive filling via the sorted-prefix formulation: after
    # sorting demands ascending, flow k is fully satisfied iff
    # prefix_sum(k) + d[k] * (n - k - 1) <= capacity  (serving all
    # smaller demands exactly and giving everyone else at least d[k]).
    order = np.argsort(demands, kind="stable")
    d = demands[order]
    prefix = np.concatenate(([0.0], np.cumsum(d)[:-1]))
    remaining_flows = n - np.arange(n)
    satisfiable = prefix + d * remaining_flows <= capacity

    alloc_sorted = d.copy()
    if not satisfiable.all():
        k = int(np.argmin(satisfiable))  # first unsatisfiable index
        fair_level = (capacity - prefix[k]) / (n - k)
        alloc_sorted[k:] = fair_level

    alloc = np.empty(n)
    alloc[order] = alloc_sorted
    return alloc


def weighted_max_min_fair_share(
    demands: np.ndarray, weights: np.ndarray, capacity: float
) -> np.ndarray:
    """Weighted max-min fair allocation.

    Flow *i*'s fair level is proportional to ``weights[i]``; used to
    model flows with different aggressiveness (e.g. a BBR-flavoured
    stream competing with loss-based TCP).

    Implemented by the substitution ``d'_i = d_i / w_i`` — running plain
    max-min on normalised demands and scaling back.
    """
    demands = np.asarray(demands, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if demands.shape != weights.shape:
        raise ValueError("demands and weights must have the same shape")
    if np.any(weights <= 0):
        raise ValueError("weights must be positive")
    if np.any(demands < 0):
        raise ValueError("demands must be non-negative")
    if capacity < 0:
        raise ValueError("capacity must be non-negative")
    tracer = current_tracer()
    if tracer is not None:
        tracer.metrics.inc("fairshare.weighted_allocations")
    if demands.sum() <= capacity:
        return demands.copy()
    return _weighted_fill(demands, weights, capacity)


def _weighted_fill(
    demands: np.ndarray, weights: np.ndarray, capacity: float
) -> np.ndarray:
    """Exact weighted progressive filling (iterative)."""
    n = demands.size
    alloc = np.zeros(n)
    active = demands > 0
    remaining = float(capacity)
    # Each round either saturates at least one flow or exhausts
    # capacity, so this loop runs at most n times.
    while active.any() and remaining > 1e-12 * max(capacity, 1.0):
        w_active = weights[active]
        level = remaining / w_active.sum()
        head_room = demands[active] - alloc[active]
        grant = np.minimum(head_room, level * w_active)
        alloc[active] += grant
        remaining -= grant.sum()
        newly_done = np.zeros(n, dtype=bool)
        newly_done[active] = alloc[active] >= demands[active] - 1e-12 * np.maximum(
            demands[active], 1.0
        )
        if not newly_done.any():
            break  # everyone hit the fair level exactly; capacity gone
        active &= ~newly_done
    return alloc


def bottleneck_utilization(demands: np.ndarray, capacity: float) -> float:
    """Fraction of ``capacity`` actually used after fair allocation."""
    if capacity <= 0:
        return 0.0
    return float(max_min_fair_share(demands, capacity).sum() / capacity)
