"""Lightweight wall-time accounting for the simulator hot path.

:class:`PerfCounters` accumulates wall seconds per named subsystem
(demand caps, waterfill, loss, session step, ...) plus the fluid-step
count, so a run can report where simulation time actually goes and how
many fluid steps per wall second the engine sustains.  Attach one to an
engine with :meth:`SimulationEngine.enable_profiling`; the executor
times its subsystems whenever one is attached, and skips all timing
when it is not (``engine.profile is None`` costs one attribute check
per step).

The counters are deliberately simple — a dict of float accumulators
driven by :func:`time.perf_counter` — so the measurement overhead stays
far below the measured quantities (a fluid step on the benchmark
scenario costs milliseconds; a timer pair costs ~100 ns).
"""

from __future__ import annotations

# repro: lint-ok-file[F001,F012]: this module's entire purpose is wall-clock
# measurement; it observes the simulator and never feeds sim state.

import time
from contextlib import contextmanager

from repro.units import seconds_to_us


class PerfCounters:
    """Per-subsystem wall-time accumulators and fluid-step throughput."""

    def __init__(self) -> None:
        self.totals: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self.fluid_steps: int = 0
        self.sim_seconds: float = 0.0
        self._wall_start = time.perf_counter()

    # -- recording ----------------------------------------------------------

    def add(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` of wall time under ``name``."""
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    @contextmanager
    def timer(self, name: str):
        """Context manager timing one subsystem invocation."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0)

    def note_step(self, dt: float) -> None:
        """Record one completed fluid step of size ``dt``."""
        self.fluid_steps += 1
        self.sim_seconds += dt

    # -- reporting ----------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        """Wall time since this counter set was created."""
        return time.perf_counter() - self._wall_start

    def steps_per_second(self) -> float:
        """Fluid steps per wall second since creation."""
        wall = self.wall_seconds
        return self.fluid_steps / wall if wall > 0 else 0.0

    def snapshot(self) -> dict:
        """All counters as a JSON-friendly dict."""
        return {
            "fluid_steps": self.fluid_steps,
            "sim_seconds": round(self.sim_seconds, 6),
            "wall_seconds": round(self.wall_seconds, 6),
            "steps_per_second": round(self.steps_per_second(), 1),
            "subsystem_seconds": {k: round(v, 6) for k, v in sorted(self.totals.items())},
        }

    def report(self) -> str:
        """Human-readable table of where wall time went."""
        lines = [
            f"fluid steps: {self.fluid_steps} "
            f"({self.sim_seconds:.1f} sim-s, {self.steps_per_second():.0f} steps/s)"
        ]
        for name in sorted(self.totals, key=self.totals.get, reverse=True):
            total = self.totals[name]
            calls = self.counts[name]
            per_call = seconds_to_us(total / calls) if calls else 0.0
            lines.append(
                f"  {name:<14} {total:8.4f}s  {calls:>7} calls  {per_call:8.1f} us/call"
            )
        return "\n".join(lines)
