"""Deterministic, decoupled random-number streams.

Every stochastic component of the simulator (measurement jitter, random
sampling inside Bayesian optimization, dataset generation, ...) draws
from its *own* named stream derived from a single experiment seed.  This
keeps experiments bit-reproducible while ensuring that adding a draw in
one component does not perturb the sequence seen by another — the
standard trick for trustworthy stochastic simulations.
"""

from __future__ import annotations

import numpy as np


class RngStreams:
    """A family of independent :class:`numpy.random.Generator` streams.

    Streams are created lazily by name.  Two ``RngStreams`` built from
    the same root seed hand out identical streams for identical names,
    regardless of creation order.

    Examples
    --------
    >>> streams = RngStreams(seed=42)
    >>> jitter = streams.get("measurement")
    >>> bo = streams.get("bayesopt/agent-0")
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed this family was built from."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the stream for ``name``.

        The stream's seed sequence is derived from the root seed and a
        stable hash of the name, so it is independent of when or in what
        order other streams were requested.
        """
        stream = self._streams.get(name)
        if stream is None:
            seq = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(_stable_hash(name),)
            )
            stream = np.random.default_rng(seq)
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RngStreams":
        """Return a child family rooted at a name-derived seed.

        Useful when a sub-component (e.g. one Falcon agent) owns several
        streams of its own.
        """
        return RngStreams(seed=(self._seed * 0x9E3779B1 + _stable_hash(name)) % 2**63)


def _stable_hash(name: str) -> int:
    """FNV-1a hash of ``name`` — stable across processes (unlike ``hash``)."""
    acc = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) % 2**64
    return acc % 2**63
