"""Storage substrate: devices, parallel file systems, per-process throttles.

The paper's central storage observation (Fig. 1) is that on parallel
file systems and RAID arrays a *single* reader/writer gets only a small
fraction of the aggregate bandwidth — concurrent I/O streams are needed
to reach full utilisation, with mild degradation past saturation from
contention.  :class:`ParallelFileSystem` models exactly that: a
per-process rate limit, a saturating aggregate capacity, and a
contention term.
"""

from repro.storage.device import HDD, NVME_SSD, SATA_SSD, StorageDevice
from repro.storage.parallel_fs import ParallelFileSystem, throttled_fs
from repro.storage.throttle import TokenBucket

__all__ = [
    "StorageDevice",
    "ParallelFileSystem",
    "throttled_fs",
    "TokenBucket",
    "HDD",
    "SATA_SSD",
    "NVME_SSD",
]
