"""Single storage device rate model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import Gbps


@dataclass(frozen=True)
class StorageDevice:
    """A raw block device with independent read and write rate limits.

    Rates are in bits per second to match the rest of the simulator
    (the paper quotes disk speeds in Gbps, e.g. "single file read/write
    speed is less than 10 Gbps with hard drives").

    Attributes
    ----------
    name:
        Device label ("hdd", "nvme0", ...).
    read_bps / write_bps:
        Sequential read/write throughput limits.
    open_latency:
        Fixed cost of opening a file, seconds — matters for lots-of-
        small-files workloads where per-file overheads dominate.
    """

    name: str = "disk"
    read_bps: float = 1.0 * Gbps
    write_bps: float = 1.0 * Gbps
    open_latency: float = 1e-3

    def __post_init__(self) -> None:
        if self.read_bps <= 0 or self.write_bps <= 0:
            raise ValueError("device rates must be positive")
        if self.open_latency < 0:
            raise ValueError("open_latency must be non-negative")


#: Representative presets (sequential rates; conservative production-ish).
HDD = StorageDevice("hdd", read_bps=1.6 * Gbps, write_bps=1.2 * Gbps, open_latency=8e-3)
SATA_SSD = StorageDevice("sata-ssd", read_bps=4.0 * Gbps, write_bps=3.0 * Gbps, open_latency=5e-4)
NVME_SSD = StorageDevice("nvme", read_bps=24.0 * Gbps, write_bps=16.0 * Gbps, open_latency=2e-4)
