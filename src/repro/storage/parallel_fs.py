"""Parallel file system / RAID array model.

Captures the throughput-vs-stream-count behaviour of Lustre, GPFS, and
RAID arrays that drives the whole paper:

* one I/O stream is limited to ``per_process_*_bps`` (single OST/NSD
  pipeline, single-threaded copy loop);
* aggregate throughput rises with concurrent streams up to
  ``aggregate_*_bps``;
* past saturation, extra streams cause *contention* (seek amplification,
  lock traffic, OST congestion) that slightly **reduces** aggregate
  throughput — the gentle downward slope at the right of Fig. 1(a).

Allocation among streams is max-min fair against the effective aggregate
capacity, with each stream's demand capped at the per-process limit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.fairshare import _fair_share_unchecked
from repro.units import Gbps


@dataclass(frozen=True)
class ParallelFileSystem:
    """A shared storage backend with per-process and aggregate limits.

    Attributes
    ----------
    name:
        Label ("lustre", "gpfs", "raid0-nvme", ...).
    per_process_read_bps / per_process_write_bps:
        Rate limit of a single I/O stream.
    aggregate_read_bps / aggregate_write_bps:
        Peak aggregate throughput with enough concurrent streams.
    contention:
        Fractional aggregate-capacity degradation per active stream
        beyond :attr:`contention_knee` (e.g. 0.005 = 0.5%/stream).
    contention_knee:
        Stream count at which contention starts to bite; defaults to
        the count needed to saturate the aggregate.
    open_latency:
        Per-file open/create cost, seconds.
    """

    name: str = "pfs"
    per_process_read_bps: float = 2.0 * Gbps
    per_process_write_bps: float = 2.0 * Gbps
    aggregate_read_bps: float = 20.0 * Gbps
    aggregate_write_bps: float = 20.0 * Gbps
    contention: float = 0.004
    contention_knee: int | None = None
    open_latency: float = 1e-3

    def __post_init__(self) -> None:
        for field_name in (
            "per_process_read_bps",
            "per_process_write_bps",
            "aggregate_read_bps",
            "aggregate_write_bps",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if self.contention < 0:
            raise ValueError("contention must be non-negative")
        if self.open_latency < 0:
            raise ValueError("open_latency must be non-negative")

    # -- saturation structure ------------------------------------------------

    def read_saturation_streams(self) -> int:
        """Streams needed (at full per-process rate) to peak read throughput."""
        return int(np.ceil(self.aggregate_read_bps / self.per_process_read_bps))

    def write_saturation_streams(self) -> int:
        """Streams needed (at full per-process rate) to peak write throughput."""
        return int(np.ceil(self.aggregate_write_bps / self.per_process_write_bps))

    def _knee(self, default: int) -> int:
        return default if self.contention_knee is None else self.contention_knee

    def effective_read_capacity(self, n_streams: int) -> float:
        """Aggregate read capacity with ``n_streams`` active streams."""
        return self._effective(
            n_streams, self.aggregate_read_bps, self._knee(self.read_saturation_streams())
        )

    def effective_write_capacity(self, n_streams: int) -> float:
        """Aggregate write capacity with ``n_streams`` active streams."""
        return self._effective(
            n_streams, self.aggregate_write_bps, self._knee(self.write_saturation_streams())
        )

    def _effective(self, n_streams: int, aggregate: float, knee: int) -> float:
        if n_streams <= 0:
            return aggregate
        excess = max(0, n_streams - knee)
        degradation = 1.0 / (1.0 + self.contention * excess)
        # Never degrade below half of peak: thrashing plateaus, it does
        # not collapse, for sequential bulk I/O.
        return aggregate * max(0.5, degradation)

    # -- allocation ------------------------------------------------------------

    def allocate_read(self, demands: np.ndarray) -> np.ndarray:
        """Max-min fair read allocation for the given stream demands."""
        return self._allocate(demands, self.per_process_read_bps, self.effective_read_capacity)

    def allocate_write(self, demands: np.ndarray) -> np.ndarray:
        """Max-min fair write allocation for the given stream demands."""
        return self._allocate(demands, self.per_process_write_bps, self.effective_write_capacity)

    def _allocate(self, demands, per_process: float, capacity_fn) -> np.ndarray:
        demands = np.minimum(np.asarray(demands, dtype=float), per_process)
        active = int(np.count_nonzero(demands > 0))
        return _fair_share_unchecked(demands, capacity_fn(active))


def throttled_fs(
    per_process_bps: float, aggregate_bps: float, name: str = "throttled"
) -> ParallelFileSystem:
    """An Emulab-style artificially throttled storage volume.

    The paper throttles per-process read I/O (e.g. 10 or 20 Mbps) on
    Emulab's direct-attached disks "to emulate the behaviour of parallel
    file systems".  Contention is disabled: the throttle is artificial,
    so extra streams cost nothing locally.
    """
    return ParallelFileSystem(
        name=name,
        per_process_read_bps=per_process_bps,
        per_process_write_bps=per_process_bps,
        aggregate_read_bps=aggregate_bps,
        aggregate_write_bps=aggregate_bps,
        contention=0.0,
        open_latency=5e-4,
    )
