"""Token-bucket rate throttle.

The Emulab experiments throttle per-process I/O with a token bucket
(the standard `tc`/cgroup mechanism).  The fluid simulator mostly uses
static rate caps, but the bucket is exercised by the transfer engine's
burst accounting and is independently useful for tests that need a
time-accurate throttle.
"""

from __future__ import annotations


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/s, burst up to ``burst``.

    Tokens are whatever unit the caller uses (we use bytes).

    Examples
    --------
    >>> bucket = TokenBucket(rate=100.0, burst=50.0)
    >>> bucket.consume(50.0, now=0.0)   # burst allowance
    50.0
    >>> bucket.consume(100.0, now=1.0)  # refill capped at the burst
    50.0
    """

    def __init__(self, rate: float, burst: float, start_time: float = 0.0) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = float(start_time)

    @property
    def tokens(self) -> float:
        """Tokens available as of the last update (no refill applied)."""
        return self._tokens

    def _refill(self, now: float) -> None:
        if now < self._last:
            raise ValueError("time went backwards")
        self._tokens = min(self.burst, self._tokens + self.rate * (now - self._last))
        self._last = now

    def peek(self, now: float) -> float:
        """Tokens that would be available at ``now`` (refills state)."""
        self._refill(now)
        return self._tokens

    def consume(self, amount: float, now: float) -> float:
        """Take up to ``amount`` tokens; returns how many were granted."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self._refill(now)
        granted = min(amount, self._tokens)
        self._tokens -= granted
        return granted

    def time_until(self, amount: float, now: float) -> float:
        """Seconds until ``amount`` tokens will be available (0 if already)."""
        if amount > self.burst:
            raise ValueError("amount exceeds burst capacity; it can never be granted")
        self._refill(now)
        deficit = amount - self._tokens
        return max(0.0, deficit / self.rate)
