"""Testbed specifications mirroring the paper's Table 1."""

from repro.testbeds.base import Testbed
from repro.testbeds.presets import (
    TABLE1,
    campus_cluster,
    emulab,
    emulab_fig4,
    emulab_high_optimal,
    emulab_io_bound,
    hpclab,
    stampede2_comet,
    xsede,
)

__all__ = [
    "Testbed",
    "TABLE1",
    "campus_cluster",
    "emulab",
    "emulab_fig4",
    "emulab_high_optimal",
    "emulab_io_bound",
    "hpclab",
    "stampede2_comet",
    "xsede",
]
