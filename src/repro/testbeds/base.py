"""Testbed: two DTNs joined by a path, plus analytic expectations.

A :class:`Testbed` instance owns its hosts, so every session created
through :meth:`new_session` *shares* the same storage arrays, NICs, and
links — which is what makes competing-transfer experiments meaningful.

The analytic helpers (:meth:`max_throughput`,
:meth:`optimal_concurrency`) derive what the resource model implies,
and are used by tests and benches as ground truth to compare Falcon's
online search against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hosts.dtn import DataTransferNode
from repro.network.path import Path
from repro.network.tcp import CUBIC, TcpModel
from repro.transfer.dataset import Dataset, FileQueue
from repro.transfer.session import TransferParams, TransferSession


@dataclass
class Testbed:
    """A reproducible end-to-end transfer environment.

    Attributes
    ----------
    name:
        Testbed label ("Emulab", "XSEDE", ...).
    source, destination:
        The two DTNs.
    path:
        Network path between them.
    tcp:
        Default transport model for sessions.
    sample_interval:
        Sample-transfer duration appropriate for this network (paper:
        3 s local-area, 5 s wide-area).
    bottleneck:
        Human-readable bottleneck label from Table 1.
    """

    #: Stop pytest from trying to collect this class (its name starts
    #: with "Test" but it is a domain object, not a test case).
    __test__ = False

    name: str
    source: DataTransferNode
    destination: DataTransferNode
    path: Path
    sample_interval: float
    bottleneck: str
    tcp: TcpModel = field(default_factory=lambda: CUBIC)

    _session_counter: int = field(default=0, init=False, repr=False)

    # -- session factory -------------------------------------------------------

    def new_session(
        self,
        dataset: Dataset,
        name: str | None = None,
        params: TransferParams = TransferParams(),
        repeat: bool = False,
        tcp: TcpModel | None = None,
        queue: FileQueue | None = None,
    ) -> TransferSession:
        """Create a transfer session on this testbed's shared resources.

        ``tcp`` overrides the testbed's default transport for this one
        session (used by the BBR-vs-Cubic extension experiments).
        ``queue`` substitutes an existing file queue for a fresh one
        built from ``dataset`` — how a restarted job resumes from the
        files its crashed predecessor had not yet delivered.
        """
        self._session_counter += 1
        label = name or f"{self.name.lower()}-xfer-{self._session_counter}"
        return TransferSession(
            name=label,
            source=self.source,
            destination=self.destination,
            path=self.path,
            queue=queue if queue is not None else dataset.queue(repeat=repeat),
            tcp=tcp or self.tcp,
            params=params,
        )

    # -- analytic expectations ----------------------------------------------------

    @property
    def rtt(self) -> float:
        """End-to-end round-trip time, seconds."""
        return self.path.rtt

    def per_worker_cap(self, parallelism: int = 1) -> float:
        """Rate one worker can reach, ignoring shared limits (bps)."""
        return min(
            parallelism * self.tcp.stream_cap(self.path.rtt),
            self.source.storage.per_process_read_bps,
            self.destination.storage.per_process_write_bps,
        )

    def max_throughput(self) -> float:
        """Best achievable aggregate rate with ideal concurrency (bps).

        The minimum over the aggregate capacities of every shared
        resource on the transfer path, evaluated at the concurrency
        that saturates it.
        """
        n = self.optimal_concurrency()
        return min(
            self.source.storage.effective_read_capacity(n),
            self.destination.storage.effective_write_capacity(n),
            self.source.nic.capacity,
            self.destination.nic.capacity,
            self.path.capacity,
        )

    def optimal_concurrency(self, parallelism: int = 1) -> int:
        """Smallest concurrency that saturates the end-to-end bottleneck."""
        aggregate = min(
            self.source.storage.aggregate_read_bps,
            self.destination.storage.aggregate_write_bps,
            self.source.nic.capacity,
            self.destination.nic.capacity,
            self.path.capacity,
        )
        per_worker = self.per_worker_cap(parallelism)
        n = 1
        while n * per_worker < aggregate and n < 512:
            n += 1
        return n

    def describe(self) -> str:
        """One-line summary, Table 1 style."""
        from repro.units import format_rate, seconds_to_ms

        return (
            f"{self.name}: storage={self.source.storage.name}, "
            f"bandwidth={format_rate(self.path.capacity, 0)}, "
            f"rtt={seconds_to_ms(self.path.rtt):g}ms, bottleneck={self.bottleneck}"
        )
