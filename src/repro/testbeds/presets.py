"""The paper's test environments (Table 1) as simulator configurations.

| Testbed        | Storage    | Bandwidth | RTT   | Bottleneck |
|----------------|------------|-----------|-------|------------|
| Emulab         | RAID-0 SSD | 1G        | 30ms  | Network    |
| XSEDE          | Lustre     | 10G       | 40ms  | Disk Read  |
| HPCLab         | NVMe SSD   | 40G       | 0.1ms | Disk Write |
| Campus Cluster | GPFS       | 10G       | 0.1ms | NIC        |

plus the Stampede2–Comet pair (40 Gbps, 60 ms) used in §4.3–§4.5.

Per-process and aggregate storage rates are calibrated so the
simulator's analytic optima match the paper's reported behaviour:
HPCLab needs ~9 concurrent writers for >25 Gbps; XSEDE needs ~10
readers for ~5.4 Gbps; Campus Cluster saturates its 10G NIC around 7;
Emulab's throttles put the optimum at 10 (Fig 4/9) or 48 (Fig 7/13).

Each call builds *fresh* hosts and links, so concurrent experiments
never share state across testbed instances; sessions created from the
same instance do share resources (that is the point).
"""

from __future__ import annotations

from repro.hosts.cpu import CpuModel
from repro.hosts.dtn import DataTransferNode
from repro.hosts.nic import Nic
from repro.network.link import Link
from repro.network.path import Path, build_dumbbell
from repro.network.queue import DropTailLossModel
from repro.network.tcp import TcpModel
from repro.storage.parallel_fs import ParallelFileSystem, throttled_fs
from repro.testbeds.base import Testbed
from repro.units import Gbps, Mbps, MiB, milliseconds


def emulab(
    link_bps: float = 100 * Mbps,
    per_process_bps: float = 10 * Mbps,
    rtt: float = milliseconds(30),
) -> Testbed:
    """Emulab emulation testbed (Fig. 3 topology): network bottleneck.

    Per-process I/O is throttled (the paper uses ``tc``-style throttles
    of 10–21 Mbps) so that ``link_bps / per_process_bps`` concurrent
    transfers are needed to saturate the bottleneck.
    """
    storage = throttled_fs(
        per_process_bps=per_process_bps,
        aggregate_bps=4 * link_bps,  # direct-attached SSD outruns the link
        name="raid0-ssd-throttled",
    )
    # Edge links and NICs are provisioned above the bottleneck so the
    # emulated middle link is the only congestion point (Fig. 3).
    edge_bps = 2 * link_bps
    cpu = CpuModel(cores=32, oversubscription_penalty=0.15)
    src = DataTransferNode("emulab-src", storage=storage, nic=Nic(edge_bps, "src-nic"), cpu=cpu)
    dst = DataTransferNode(
        "emulab-dst",
        storage=throttled_fs(per_process_bps, 4 * link_bps, "raid0-ssd-throttled"),
        nic=Nic(edge_bps, "dst-nic"),
        cpu=CpuModel(cores=32, oversubscription_penalty=0.15),
    )
    return Testbed(
        name="Emulab",
        source=src,
        destination=dst,
        path=build_dumbbell(link_bps, rtt, edge_capacity=edge_bps, name="emulab"),
        sample_interval=5.0,
        bottleneck="Network",
    )


def emulab_fig4() -> Testbed:
    """Fig. 4 / Fig. 9(a) configuration: 100 Mbps link, 10 Mbps/process.

    Ten concurrent transfers reach full utilisation; more only add loss.
    """
    return emulab(link_bps=100 * Mbps, per_process_bps=10 * Mbps)


def emulab_high_optimal(per_process_bps: float = 21 * Mbps) -> Testbed:
    """Fig. 7 / Fig. 13 configuration: 1 Gbps link, ~21 Mbps/process.

    48 concurrent transfers are needed before the network becomes the
    bottleneck — the "high optimal concurrency" stress case.
    """
    return emulab(link_bps=1 * Gbps, per_process_bps=per_process_bps)


def emulab_io_bound(
    per_process_bps: float = 21 * Mbps, aggregate_bps: float = 1000 * Mbps
) -> Testbed:
    """Fig. 6 configuration: the I/O *aggregate* binds, not the link.

    48 concurrent readers saturate the storage array while the network
    (2 Gbps) never congests — so packet loss stays at the residual
    level and the concurrency-regret term alone must stop
    over-provisioning.  This isolates exactly the failure mode Fig. 6
    attributes to linear regret.
    """
    tb = emulab(link_bps=2 * Gbps, per_process_bps=per_process_bps)
    throttled = throttled_fs(per_process_bps, aggregate_bps, "raid0-ssd-throttled")
    tb.source.storage = throttled
    tb.destination.storage = throttled_fs(
        per_process_bps, aggregate_bps, "raid0-ssd-throttled"
    )
    return tb


def xsede() -> Testbed:
    """XSEDE (OSG ↔ Comet): 10 Gbps, 40 ms, disk-read bottleneck."""
    lustre_src = ParallelFileSystem(
        name="lustre-osg",
        per_process_read_bps=0.6 * Gbps,
        per_process_write_bps=1.5 * Gbps,
        aggregate_read_bps=5.8 * Gbps,
        aggregate_write_bps=12 * Gbps,
        contention=0.006,
        open_latency=2e-3,
    )
    lustre_dst = ParallelFileSystem(
        name="lustre-comet",
        per_process_read_bps=1.5 * Gbps,
        per_process_write_bps=1.5 * Gbps,
        aggregate_read_bps=14 * Gbps,
        aggregate_write_bps=12 * Gbps,
        contention=0.006,
        open_latency=2e-3,
    )
    src = DataTransferNode("osg-dtn", storage=lustre_src, nic=Nic(10 * Gbps, "osg-nic"))
    dst = DataTransferNode("comet-dtn", storage=lustre_dst, nic=Nic(10 * Gbps, "comet-nic"))
    return Testbed(
        name="XSEDE",
        source=src,
        destination=dst,
        path=build_dumbbell(10 * Gbps, milliseconds(40), edge_capacity=100 * Gbps, name="xsede"),
        sample_interval=5.0,
        bottleneck="Disk Read",
    )


def hpclab() -> Testbed:
    """HPCLab: isolated LAN pair, 40 Gbps, 0.1 ms, disk-write bottleneck."""
    nvme_src = ParallelFileSystem(
        name="nvme-raid-src",
        per_process_read_bps=6.0 * Gbps,
        per_process_write_bps=6.0 * Gbps,
        aggregate_read_bps=38 * Gbps,
        aggregate_write_bps=30 * Gbps,
        contention=0.01,
        open_latency=3e-4,
    )
    nvme_dst = ParallelFileSystem(
        name="nvme-raid-dst",
        per_process_read_bps=6.0 * Gbps,
        per_process_write_bps=3.2 * Gbps,
        aggregate_read_bps=38 * Gbps,
        aggregate_write_bps=28 * Gbps,
        contention=0.01,
        open_latency=3e-4,
    )
    src = DataTransferNode("hpclab-src", storage=nvme_src, nic=Nic(40 * Gbps, "hpclab-nic"))
    dst = DataTransferNode("hpclab-dst", storage=nvme_dst, nic=Nic(40 * Gbps, "hpclab-nic"))
    return Testbed(
        name="HPCLab",
        source=src,
        destination=dst,
        path=build_dumbbell(40 * Gbps, milliseconds(0.1), edge_capacity=100 * Gbps, name="hpclab"),
        sample_interval=3.0,
        bottleneck="Disk Write",
    )


def campus_cluster() -> Testbed:
    """Campus Cluster: GPFS, same LAN, 10 Gbps NIC bottleneck."""
    gpfs = ParallelFileSystem(
        name="gpfs",
        per_process_read_bps=1.6 * Gbps,
        per_process_write_bps=1.6 * Gbps,
        aggregate_read_bps=22 * Gbps,
        aggregate_write_bps=20 * Gbps,
        contention=0.004,
        open_latency=1.5e-3,
    )
    gpfs_dst = ParallelFileSystem(
        name="gpfs",
        per_process_read_bps=1.6 * Gbps,
        per_process_write_bps=1.6 * Gbps,
        aggregate_read_bps=22 * Gbps,
        aggregate_write_bps=20 * Gbps,
        contention=0.004,
        open_latency=1.5e-3,
    )
    src = DataTransferNode("campus-src", storage=gpfs, nic=Nic(10 * Gbps, "campus-nic"))
    dst = DataTransferNode("campus-dst", storage=gpfs_dst, nic=Nic(10 * Gbps, "campus-nic"))
    return Testbed(
        name="Campus Cluster",
        source=src,
        destination=dst,
        path=build_dumbbell(40 * Gbps, milliseconds(0.1), edge_capacity=100 * Gbps, name="campus"),
        sample_interval=3.0,
        bottleneck="NIC",
    )


def stampede2_comet() -> Testbed:
    """Stampede2 → Comet: 40 Gbps WAN, 60 ms (§4.3–§4.5 experiments).

    The long-fat regime: one TCP stream is window-capped at ~2.2 Gbps,
    so parallelism matters; Lustre at both ends supports ~30 Gbps
    aggregate, making the storage arrays the end-to-end limit.
    """
    lustre_src = ParallelFileSystem(
        name="lustre-stampede2",
        per_process_read_bps=1.8 * Gbps,
        per_process_write_bps=2.5 * Gbps,
        aggregate_read_bps=30 * Gbps,
        aggregate_write_bps=34 * Gbps,
        contention=0.005,
        open_latency=2e-3,
    )
    lustre_dst = ParallelFileSystem(
        name="lustre-comet",
        per_process_read_bps=2.5 * Gbps,
        per_process_write_bps=1.8 * Gbps,
        aggregate_read_bps=34 * Gbps,
        aggregate_write_bps=30 * Gbps,
        contention=0.005,
        open_latency=2e-3,
    )
    tcp = TcpModel(name="cubic", buffer_bytes=16 * MiB)
    src = DataTransferNode("stampede2-dtn", storage=lustre_src, nic=Nic(40 * Gbps, "s2-nic"))
    dst = DataTransferNode("comet-dtn", storage=lustre_dst, nic=Nic(40 * Gbps, "comet-nic"))
    return Testbed(
        name="Stampede2-Comet",
        source=src,
        destination=dst,
        path=build_dumbbell(40 * Gbps, milliseconds(60), edge_capacity=100 * Gbps, name="s2-comet"),
        sample_interval=5.0,
        bottleneck="Disk Read",
        tcp=tcp,
    )


def metro(n_sites: int = 16, sessions_per_site: int = 16) -> list[Testbed]:
    """Metro ring: 256 session pairs over 16 shared sites (scale scenario).

    The scale stress shape behind ``benchmarks/bench_scale.py``: a ring
    of ``n_sites`` metro sites, each with one shared storage array and
    one shared 100 Gbps NIC, joined by 100 Gbps ring links.  Session
    ``k`` sources at site ``k % n_sites`` and travels *clockwise* for
    ``1 + (k // n_sites) % (n_sites - 1)`` hops, so the default
    16 x 16 = 256 sessions have heterogeneous path lengths (RTTs from
    3 ms to 45 ms), every ring link carries dozens of overlapping
    sessions, and every site's storage/NIC arbitrates the workers of
    ~32 sessions — the many-tenant regime the batched engine exists for.

    Returns one :class:`Testbed` per session pair; all of them alias
    the same site hosts and ring links (sharing is the point).
    """
    loss_model = DropTailLossModel()
    sites = []
    for i in range(n_sites):
        storage = ParallelFileSystem(
            name=f"metro-fs-{i}",
            per_process_read_bps=500 * Mbps,
            per_process_write_bps=500 * Mbps,
            aggregate_read_bps=40 * Gbps,
            aggregate_write_bps=40 * Gbps,
            contention=0.004,
            open_latency=1e-3,
        )
        sites.append(
            DataTransferNode(
                f"metro-site-{i}",
                storage=storage,
                nic=Nic(100 * Gbps, name=f"metro-nic-{i}"),
                cpu=CpuModel(cores=2048, oversubscription_penalty=0.05),
            )
        )
    ring = [
        Link(
            f"metro-ring-{i}",
            100 * Gbps,
            delay=milliseconds(1.5),
            loss_model=loss_model,
        )
        for i in range(n_sites)
    ]

    testbeds = []
    for k in range(n_sites * sessions_per_site):
        src = k % n_sites
        hops = 1 + (k // n_sites) % (n_sites - 1)
        links = tuple(ring[(src + h) % n_sites] for h in range(hops))
        testbeds.append(
            Testbed(
                name=f"metro-{k}",
                source=sites[src],
                destination=sites[(src + hops) % n_sites],
                path=Path(links=links, name=f"metro-path-{k}"),
                sample_interval=5.0,
                bottleneck="Network",
            )
        )
    return testbeds


def TABLE1() -> list[Testbed]:
    """Fresh instances of the four Table 1 testbeds."""
    return [emulab_fig4(), xsede(), hpclab(), campus_cluster()]
