"""Transfer engine: datasets, sessions, metrics, fluid executor.

A :class:`~repro.transfer.session.TransferSession` is one *transfer
task* (one user's dataset moving between two DTNs) with three tunable
parameters — **concurrency** (files in flight), **parallelism** (TCP
streams per file), **pipelining** (control commands in flight).  The
:class:`~repro.transfer.executor.FluidTransferNetwork` arbitrates all
sessions' workers across storage, NICs, and links every fluid step.
"""

from repro.transfer.dataset import (
    Dataset,
    FileQueue,
    large_dataset,
    mixed_dataset,
    small_dataset,
    uniform_dataset,
)
from repro.transfer.executor import FluidTransferNetwork
from repro.transfer.metrics import IntervalSample, ThroughputMonitor
from repro.transfer.session import TransferParams, TransferSession

__all__ = [
    "Dataset",
    "FileQueue",
    "uniform_dataset",
    "small_dataset",
    "large_dataset",
    "mixed_dataset",
    "FluidTransferNetwork",
    "IntervalSample",
    "ThroughputMonitor",
    "TransferParams",
    "TransferSession",
]
