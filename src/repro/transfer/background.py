"""Background cross-traffic generator.

Production networks (XSEDE, ESnet, Internet2) are shared: "the optimal
solution can be different for identical transfers over time due to
change in background traffic" (§1).  :class:`OnOffTraffic` models that
as a fixed-setting transfer that alternates between ON (competing for
the path) and OFF, on a deterministic or randomized duty cycle — the
classic on/off cross-traffic model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sim.engine import Event, SimulationEngine
from repro.testbeds.base import Testbed
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.transfer.session import TransferParams, TransferSession
from repro.units import GB


@dataclass
class OnOffTraffic:
    """A periodic competing load on a testbed's path.

    Parameters
    ----------
    engine, network:
        Simulation substrate.
    testbed:
        Whose resources to load (the traffic shares the same hosts and
        links as sessions created from this testbed instance).
    concurrency:
        Fixed worker count while ON.
    on_time / off_time:
        Mean phase durations, seconds.
    jitter:
        Relative randomization of each phase length (0 = strict cycle).
    rng:
        Source for phase jitter.
    """

    engine: SimulationEngine
    network: FluidTransferNetwork
    testbed: Testbed
    concurrency: int = 8
    on_time: float = 60.0
    off_time: float = 60.0
    jitter: float = 0.0
    rng: Optional[np.random.Generator] = None
    transitions: list[tuple[float, str]] = field(default_factory=list)

    _session: Optional[TransferSession] = None
    _stopped: bool = False
    _pending: Optional[Event] = None

    def start(self, initial_delay: float = 0.0) -> None:
        """Schedule the first ON phase."""
        self._pending = self.engine.schedule_in(
            initial_delay, self._switch_on, name="bg-on"
        )

    def stop(self) -> None:
        """Cease after the current phase.

        An ON generator finishes its phase (the already-scheduled
        switch-off fires at its normal time and simply does not
        reschedule); an OFF generator never switches on again, and its
        pending wake-up event is cancelled rather than left to fire as
        a no-op.
        """
        self._stopped = True
        if self._session is None and self._pending is not None:
            self._pending.cancel()
            self._pending = None

    @property
    def active(self) -> bool:
        """Whether the background load is currently ON."""
        return self._session is not None

    def _phase(self, mean: float) -> float:
        if self.rng is None or self.jitter <= 0:
            return mean
        return float(mean * max(0.1, 1.0 + self.rng.normal(0.0, self.jitter)))

    def _switch_on(self) -> None:
        if self._stopped or self._session is not None:
            return
        self._session = self.testbed.new_session(
            uniform_dataset(64, 1 * GB),
            name=f"background-{len(self.transitions)}",
            params=TransferParams(concurrency=self.concurrency),
            repeat=True,
        )
        self.network.add_session(self._session)
        self.transitions.append((self.engine.now, "on"))
        self._pending = self.engine.schedule_in(
            self._phase(self.on_time), self._switch_off, name="bg-off"
        )

    def _switch_off(self) -> None:
        if self._session is None:
            return
        self._session.finished_at = self.engine.now
        if self._session in self.network.sessions:
            self.network.remove_session(self._session)
        self._session = None
        self.transitions.append((self.engine.now, "off"))
        self._pending = None
        if not self._stopped:
            self._pending = self.engine.schedule_in(
                self._phase(self.off_time), self._switch_on, name="bg-on"
            )
