"""Datasets and the file queue a transfer session consumes.

The paper's workloads:

* the main evaluation dataset — ``1000 x 1 GB`` files (§4);
* *small* — 1 KiB .. 10 MiB files totalling 120 GiB (§4.4);
* *large* — 100 MiB .. 10 GiB files totalling 1 TiB (§4.4);
* *mixed* — union of small and large, 1.2 TiB (§4.4).

File sizes are held in a single numpy array (no per-file objects — the
small dataset has >100k files and the guides' advice applies: vectorise,
avoid Python-object overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.units import GB, GiB, KiB, MiB, format_size


@dataclass(frozen=True)
class Dataset:
    """An immutable collection of file sizes (bytes)."""

    sizes: np.ndarray
    name: str = "dataset"

    def __post_init__(self) -> None:
        sizes = np.asarray(self.sizes, dtype=float)
        if sizes.ndim != 1:
            raise ValueError("sizes must be a 1-D array")
        if sizes.size == 0:
            raise ValueError("dataset must contain at least one file")
        if np.any(sizes <= 0):
            raise ValueError("file sizes must be positive")
        object.__setattr__(self, "sizes", sizes)

    @property
    def file_count(self) -> int:
        """Number of files."""
        return int(self.sizes.size)

    @property
    def total_bytes(self) -> float:
        """Total dataset size in bytes."""
        return float(self.sizes.sum())

    @property
    def mean_file_bytes(self) -> float:
        """Average file size in bytes."""
        return float(self.sizes.mean())

    def queue(self, repeat: bool = False) -> "FileQueue":
        """A consumable queue over this dataset's files.

        With ``repeat=True`` the queue restarts when exhausted —
        used by steady-state experiments that must outlast the dataset
        (the paper's long traces keep transferring for the whole run).
        """
        return FileQueue(self.sizes, repeat=repeat)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset({self.name}: {self.file_count} files, "
            f"{format_size(self.total_bytes)})"
        )


@dataclass
class FileQueue:
    """Mutable cursor over a dataset, with requeue support.

    ``pop`` hands out ``(size, bytes_already_done)`` pairs.  When a
    worker is torn down mid-file (Falcon lowered concurrency), the file
    goes back via ``push_back`` *keeping its progress* — modelling
    restartable transfers so parameter changes don't forfeit work.

    Fault tolerance rides on two extensions:

    * every returned file carries a *transfer-attempt count* (how many
      times a worker failed while moving it), surfaced through
      :attr:`last_attempts` right after a ``pop`` so the session can
      track per-file retry budgets;
    * :meth:`hold` / :meth:`release` account for files temporarily
      *out* of the queue while a retry backoff timer runs — a held file
      still counts as remaining work, so the session cannot complete
      (and silently drop it) before the requeue fires.
    """

    sizes: np.ndarray
    repeat: bool = False
    _cursor: int = 0
    _returned: list[tuple[float, float, int]] = field(default_factory=list)
    _held: int = 0
    #: Attempt count of the most recently popped file (0 = fresh file).
    last_attempts: int = 0

    def __post_init__(self) -> None:
        self.sizes = np.asarray(self.sizes, dtype=float)

    @property
    def remaining_files(self) -> int:
        """Files not yet handed out (infinite queues report the cycle's rest).

        Held files (awaiting a retry-backoff requeue) are included: they
        are pending work even though they are not poppable right now.
        """
        return len(self._returned) + self._held + (self.sizes.size - self._cursor)

    @property
    def exhausted(self) -> bool:
        """True when nothing is left to hand out."""
        return not self.repeat and self.remaining_files == 0

    def pop(self) -> tuple[float, float] | None:
        """Next ``(file_size, bytes_done)`` or ``None`` when exhausted.

        Returned files are handed out LIFO (most recently pushed back
        first), ahead of fresh files.  This is deliberate: a requeued
        file usually carries partial progress, and re-dispatching it
        immediately keeps that progress hot instead of parking it
        behind the rest of the dataset; the golden scenarios pin this
        order, so changing it to FIFO is a semantics change.
        """
        if self._returned:
            size, done, attempts = self._returned.pop()
            self.last_attempts = attempts
            return size, done
        self.last_attempts = 0
        if self._cursor >= self.sizes.size:
            if not self.repeat:
                return None
            self._cursor = 0
        size = float(self.sizes[self._cursor])
        self._cursor += 1
        return size, 0.0

    def push_back(self, size: float, done: float, attempts: int = 0) -> None:
        """Return a partially transferred file to the queue.

        ``attempts`` is the number of failed transfer attempts the file
        has accumulated; it travels with the file and is surfaced via
        :attr:`last_attempts` when the file is popped again.
        """
        if not 0 <= done <= size:
            raise ValueError("done must be within [0, size]")
        if attempts < 0:
            raise ValueError("attempts must be non-negative")
        self._returned.append((size, done, attempts))

    # -- backoff holds -------------------------------------------------------

    def hold(self) -> None:
        """Mark one file as held outside the queue (retry backoff)."""
        self._held += 1

    def release(self) -> None:
        """Mark one held file as returned (pair with :meth:`hold`)."""
        if self._held <= 0:
            raise ValueError("release() without a matching hold()")
        self._held -= 1


# ---------------------------------------------------------------------------
# Workload generators.
# ---------------------------------------------------------------------------


def uniform_dataset(count: int = 1000, size_bytes: float = 1 * GB, name: str | None = None) -> Dataset:
    """``count`` equally sized files — the paper's main 1000 x 1 GB workload."""
    if count <= 0:
        raise ValueError("count must be positive")
    if size_bytes <= 0:
        raise ValueError("size_bytes must be positive")
    label = name or f"{count}x{format_size(size_bytes)}"
    return Dataset(np.full(count, float(size_bytes)), name=label)


def _log_uniform_sizes(
    rng: np.random.Generator, total_bytes: float, lo: float, hi: float
) -> np.ndarray:
    """Draw log-uniform file sizes until their sum reaches ``total_bytes``.

    Log-uniform across decades matches the heavy skew of real science
    datasets (most files small, most bytes in large files).
    """
    sizes: list[float] = []
    acc = 0.0
    # Expected size of a log-uniform draw; pre-draw in blocks for speed.
    while acc < total_bytes:
        block = np.exp(rng.uniform(np.log(lo), np.log(hi), size=4096))
        for s in block:
            sizes.append(float(s))
            acc += s
            if acc >= total_bytes:
                break
    return np.array(sizes)


def small_dataset(
    total_bytes: float = 120 * GiB,
    min_bytes: float = 1 * KiB,
    max_bytes: float = 10 * MiB,
    seed: int = 0,
) -> Dataset:
    """§4.4 *small*: 1 KiB – 10 MiB files, 120 GiB total."""
    rng = np.random.default_rng(seed)
    return Dataset(_log_uniform_sizes(rng, total_bytes, min_bytes, max_bytes), name="small")


def large_dataset(
    total_bytes: float = 1024 * GiB,
    min_bytes: float = 100 * MiB,
    max_bytes: float = 10 * GiB,
    seed: int = 0,
) -> Dataset:
    """§4.4 *large*: 100 MiB – 10 GiB files, 1 TiB total."""
    rng = np.random.default_rng(seed)
    return Dataset(_log_uniform_sizes(rng, total_bytes, min_bytes, max_bytes), name="large")


def mixed_dataset(seed: int = 0) -> Dataset:
    """§4.4 *mixed*: the union of *small* and *large* (1.2 TiB), shuffled."""
    small = small_dataset(seed=seed)
    large = large_dataset(seed=seed + 1)
    rng = np.random.default_rng(seed + 2)
    sizes = np.concatenate([small.sizes, large.sizes])
    rng.shuffle(sizes)
    return Dataset(sizes, name="mixed")
