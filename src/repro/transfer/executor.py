"""Fluid executor: joint arbitration of all sessions across all resources.

Every fluid step the executor:

1. computes each worker's *demand cap* — the rate it could use if
   nothing were shared: ``min(parallelism x stream cap, per-process read,
   per-process write)`` scaled by CPU efficiency at both hosts;
2. runs a few rounds of **iterative waterfilling** across the shared
   resources (source storage array, destination storage array, both
   NICs, every network link): each resource max-min-allocates using
   demands clamped by what the *other* resources granted last round.
   This converges to a feasible, near max-min joint allocation and —
   crucially for the paper's game dynamics — gives a session bandwidth
   in proportion to its flow count at a saturated bottleneck;
3. computes per-link packet loss from carried load and flow count;
4. lets each session ramp its worker rates toward the allocation and
   move file bytes.

The executor is deliberately the *only* place where sessions interact.

Performance: the resource topology (groupings, member index arrays,
stream/weight vectors, waterfill scratch) depends only on *which*
sessions are attached and their worker counts / parallelism — not on
per-step state — so it is built once and cached in a :class:`_Topology`.
A dirty flag set by session add/remove and by ``set_params`` /
worker-resize invalidates it; a cheap per-step fingerprint (session
identities, worker counts, parallelism) is kept as a safety net against
unreported changes.  See DESIGN.md "Performance".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

import numpy as np

from repro.config import DEFAULT_CONFIG, SimConfig
from repro.network.link import Link
from repro.obs.events import FluidRebalance, SessionStart, TopologyRebuild
from repro.obs.tracer import current_tracer
from repro.sim.batch import BatchStore
from repro.sim.engine import SimulationEngine
from repro.sim.fairshare import weighted_max_min_fair_share
from repro.transfer.session import TransferSession

#: Rounds of iterative waterfilling per step.  Two suffice for a single
#: binding resource; three handle redistribution across two bottlenecks.
_WATERFILL_ROUNDS = 3


@dataclass
class _Resource:
    """One shared resource and the workers it serves."""

    name: str
    members: np.ndarray  # global worker indices
    allocate: Callable[[np.ndarray], np.ndarray]
    # For links only: per-member stream counts (parallelism), else None.
    streams: np.ndarray | None = None
    link: Link | None = None
    last_alloc: np.ndarray = field(default_factory=lambda: np.zeros(0))
    # -- cached arbitration scaffolding (filled by _build_topology) --------
    #: ``members`` as a column vector, for 2-D fancy indexing.
    members_col: np.ndarray | None = None
    #: (m, k) indices of the *other* resources serving each member,
    #: padded with the always-inf sentinel column of the grants matrix.
    other_rows: np.ndarray | None = None
    #: Per-step gather of the demand caps for this resource's members.
    demand_sub: np.ndarray | None = None
    #: Links only: total stream count and the worst member-path RTT.
    n_flows: int = 0
    link_rtt: float = 0.0


@dataclass
class _Topology:
    """Cached per-step arbitration state for a fixed session set."""

    fingerprint: tuple
    sessions: list[TransferSession]
    offsets: np.ndarray
    total: int
    resources: list[_Resource]
    #: Per-worker demand cap assuming the worker holds a file.
    caps_full: np.ndarray
    #: Scratch: concatenated has_file mask, refreshed each step.
    has_file: np.ndarray
    #: Scratch: grants[w, r] = resource r's last allocation to worker w.
    #: The extra final column stays +inf forever (padding sentinel).
    grants: np.ndarray
    #: Per session, the ``id()`` of every link on its path (loss lookup).
    session_link_ids: list[list[int]]
    #: The link-typed entries of ``resources`` (loss is computed per link).
    link_resources: list[_Resource]
    #: (n_sessions, max_path_links) rows into the per-step link-loss
    #: vector; padded with the vector's trailing zero-loss sentinel.
    session_link_rows: np.ndarray
    #: Waterfill memo: the allocation is a pure function of the demand
    #: caps for a fixed topology, and the caps only change when a worker
    #: gains/loses a file — so identical caps replay the cached result.
    memo_demand_cap: np.ndarray | None = None
    memo_final: np.ndarray | None = None
    #: Loss memo: losses are a pure function of the final allocation and
    #: the links' fault state (``available``/``extra_loss``) for a fixed
    #: topology, and steady-state steps replay the same allocation via
    #: the waterfill memo above.  The fault state is part of the key
    #: because loss bursts mutate links *without* invalidating the
    #: topology (they don't change capacities, only loss).
    memo_loss_final: np.ndarray | None = None
    memo_loss_state: tuple | None = None
    memo_losses: np.ndarray | None = None
    #: Equilibrium epoch the memoized (final, losses) pair was computed
    #: at: ``(demand_epoch, link_epoch)``.  While the executor's live
    #: epoch pair still equals this key, nothing that feeds the
    #: allocation has changed and the step can skip ``_demand_caps`` /
    #: ``_waterfill`` / ``_session_losses`` entirely — the incremental
    #: counterpart of the array-compare memos above, which still cover
    #: the recompute path (e.g. a loss burst bumps the link epoch but
    #: leaves demands untouched, so the waterfill memo still hits).
    memo_key: tuple | None = None
    #: Batched state store (None when the executor runs the per-session
    #: path).  Rebuilt with the topology: sessions hold views into it.
    batch: BatchStore | None = None


class FluidTransferNetwork:
    """Holds the active sessions and arbitrates them each fluid step.

    ``batched=True`` (the default) advances all sessions through the
    contiguous :class:`~repro.sim.batch.BatchStore` in one vectorized
    pass; ``batched=False`` keeps the per-session advance.  The two
    paths are bit-identical (pinned by the batch parity test) — the
    per-session path exists as the parity reference and for
    worker-state layouts the store cannot host (none today).

    ``adaptive=True`` (requires ``batched``) additionally flips the
    engine into event-driven stepping: between discrete transitions the
    allocation is provably constant, so the executor's jump planner
    (:meth:`_plan_jump`) bounds how many grid steps are transition-free
    and :meth:`_fluid_jump` covers them with one closed-form
    :meth:`BatchStore.jump`.  Fixed-dt remains the oracle; adaptive
    runs match it to float round-off (rtol-pinned by the adaptive
    parity tests).

    Incremental equilibrium: the converged (allocation, losses) pair is
    a pure function of the demand-cap vector, the topology, and the
    links' fault state.  Two counters — a *demand epoch* bumped by the
    session hooks whenever a worker gains/loses a file, and a *link
    epoch* bumped by the fault injector on loss-state changes — key the
    cached pair (``_Topology.memo_key``); topology rebuilds discard it
    wholesale.  Steady-state steps on both paths skip the waterfill
    pipeline entirely.  Callers that mutate link fault state directly
    (outside the injector) must call :meth:`note_link_fault`, exactly
    as capacity mutators must call :meth:`invalidate_topology`.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        config: SimConfig = DEFAULT_CONFIG,
        batched: bool = True,
        adaptive: bool = False,
    ):
        self.engine = engine
        self.config = config
        self.batched = batched
        if adaptive and not batched:
            raise ValueError("adaptive stepping requires the batched executor")
        self.adaptive = adaptive
        self.sessions: list[TransferSession] = []
        self._topo: _Topology | None = None
        self._dirty = True
        # Equilibrium epochs: bumped by the demand/fault hooks; the
        # cached allocation is valid while the pair is unchanged.
        self._demand_epoch = 0
        self._link_epoch = 0
        engine.fluid_step = self.fluid_step
        if batched:
            engine.jump_planner = self._plan_jump
            engine.fluid_jump = self._fluid_jump
        if adaptive:
            engine.adaptive = True

    # -- session management ----------------------------------------------------

    def add_session(self, session: TransferSession) -> None:
        """Attach a session; it starts transferring on the next step."""
        if session in self.sessions:
            raise ValueError(f"session {session.name!r} already added")
        session.started_at = self.engine.now
        session.assign_files()
        session.on_topology_change = self.invalidate_topology
        session.on_demand_change = self.note_demand_change
        self.sessions.append(session)
        self._dirty = True
        tracer = current_tracer()
        if tracer is not None:
            tracer.emit(
                SessionStart,
                session=session.name,
                concurrency=session.params.concurrency,
                parallelism=session.params.parallelism,
            )
            tracer.metrics.inc("sessions.started")

    def remove_session(self, session: TransferSession) -> None:
        """Detach a session (finished or cancelled)."""
        self.sessions.remove(session)
        session.on_topology_change = None
        session.on_demand_change = None
        topo = self._topo
        if topo is not None and topo.batch is not None and session in topo.sessions:
            # Freeze the departing session's state into standalone copies
            # so it stops aliasing the store (which the next step rebuilds).
            topo.batch.detach(session)
        self._dirty = True

    def invalidate_topology(self) -> None:
        """Force a topology rebuild on the next fluid step.

        Called automatically when sessions are added/removed or change
        their parameters; public so exotic callers that mutate shared
        resources in place can request a rebuild explicitly.
        """
        self._dirty = True

    def note_demand_change(self) -> None:
        """A worker gained or lost a file: the demand-cap vector moved.

        Installed as every attached session's ``on_demand_change`` hook;
        invalidates the epoch-keyed equilibrium cache without forcing a
        topology rebuild.
        """
        self._demand_epoch += 1

    def note_link_fault(self) -> None:
        """A link's fault state (``available``/``extra_loss``) changed.

        Called by the fault injector on loss bursts, which mutate links
        without touching capacities (outages and brownouts go through
        :meth:`invalidate_topology` instead).  Public for exotic callers
        that flip link fault state directly.
        """
        self._link_epoch += 1

    def active_sessions(self) -> list[TransferSession]:
        """Sessions that still have work."""
        return [s for s in self.sessions if s.active]

    # -- the fluid step ----------------------------------------------------------

    def fluid_step(self, now: float, dt: float) -> None:
        """Advance all sessions by ``dt`` (engine callback)."""
        sessions = self.active_sessions()
        if not sessions:
            return
        if not self.batched:
            for s in sessions:
                s.assign_files()

        topo = self._topology(sessions)
        if topo.total == 0:
            return
        if topo.batch is not None:
            # Start-of-step assignment, restricted to sessions that
            # actually have an idle worker (assign_files is a no-op for
            # the rest; the global reduction replaces N per-session scans).
            busy = topo.batch.busy_counts()
            for i in np.flatnonzero(busy < topo.batch.counts).tolist():
                topo.sessions[i].assign_files()

        # Wall-clock reads below are profiling-only: they feed the
        # optional PerfCounters report and never influence sim state.
        # Each subsystem is timed over exactly its own call, so the
        # attributions are exclusive and sum to less than the wall time.
        prof = self.engine.profile
        key = (self._demand_epoch, self._link_epoch)
        t0 = perf_counter()  # repro: lint-ok[F001]
        if topo.memo_key == key and topo.memo_final is not None:
            # Epoch hit: nothing feeding the equilibrium changed since
            # the memoized pair was computed — replay it outright.
            final = topo.memo_final
            losses = topo.memo_losses
            if prof is not None:
                prof.add("equilibrium_cache", perf_counter() - t0)  # repro: lint-ok[F001]
        else:
            demand_cap = self._demand_caps(topo)
            t1 = perf_counter()  # repro: lint-ok[F001]
            final = self._waterfill(demand_cap, topo)
            t2 = perf_counter()  # repro: lint-ok[F001]
            losses = self._session_losses(topo, final)
            topo.memo_key = key
            if prof is not None:
                t3 = perf_counter()  # repro: lint-ok[F001]
                prof.add("demand_caps", t1 - t0)
                prof.add("waterfill", t2 - t1)
                prof.add("loss", t3 - t2)
        assert losses is not None

        tracer = current_tracer()
        if tracer is not None:
            # Stamped with the step's start time (the engine sets
            # tracer.now before invoking the fluid callback).
            tracer.emit(
                FluidRebalance,
                sessions=len(sessions),
                workers=topo.total,
                demand_bps=float(topo.memo_demand_cap.sum()),
                allocated_bps=float(final.sum()),
            )
            tracer.metrics.set("fluid.active_sessions", len(sessions))

        t4 = perf_counter()  # repro: lint-ok[F001]
        if topo.batch is not None:
            topo.batch.step(dt, final, losses, now)
            for s in sessions:
                if not s.active and s in self.sessions:
                    self.remove_session(s)
        else:
            offsets = topo.offsets
            for i, s in enumerate(sessions):
                targets = final[offsets[i] : offsets[i + 1]]
                s.step(dt, targets, float(losses[i]), now)
                if not s.active and s in self.sessions:
                    self.remove_session(s)
        if prof is not None:
            prof.add("session_step", perf_counter() - t4)  # repro: lint-ok[F001]

    # -- adaptive jumps ----------------------------------------------------------

    def _plan_jump(self, now: float, h: float, max_steps: int) -> int:
        """How many grid steps of size ``h`` one jump may cover (engine hook).

        Returns 1 (take a normal step) unless the epoch-keyed
        equilibrium is provably current, in which case the bound is the
        earliest per-worker transition from
        :meth:`BatchStore.next_transition`.  Runs the start-of-step file
        assignment first — the same scan :meth:`fluid_step` would do at
        this timestamp — so a pending assignment bumps the demand epoch
        *before* the freshness check and falls back to a normal step.
        """
        sessions = self.active_sessions()
        if not sessions:
            return max_steps
        topo = self._topology(sessions)
        batch = topo.batch
        if batch is None:
            return 1
        if topo.total == 0:
            return max_steps
        busy = batch.busy_counts()
        for i in np.flatnonzero(busy < batch.counts).tolist():
            topo.sessions[i].assign_files()
        key = (self._demand_epoch, self._link_epoch)
        if topo.memo_key != key or topo.memo_final is None:
            return 1
        t_next = batch.next_transition(now, topo.memo_final, topo.memo_losses)
        if not math.isfinite(t_next):
            return max_steps
        return max(1, min(max_steps, int((t_next - now) / h)))

    def _fluid_jump(self, now: float, h: float, n: int) -> None:
        """Advance the batched store by ``n`` grid steps (engine hook).

        Only ever invoked immediately after :meth:`_plan_jump` returned
        ``n`` in the same engine iteration — no events fire in between —
        so the epoch-fresh equilibrium the planner validated is still
        current and is replayed without recomputation.
        """
        sessions = self.active_sessions()
        if not sessions:
            return
        topo = self._topology(sessions)
        batch = topo.batch
        if batch is None or topo.total == 0:
            return
        final = topo.memo_final
        losses = topo.memo_losses
        assert final is not None and losses is not None
        prof = self.engine.profile
        t0 = perf_counter()  # repro: lint-ok[F001]

        tracer = current_tracer()
        if tracer is not None:
            tracer.emit(
                FluidRebalance,
                sessions=len(sessions),
                workers=topo.total,
                demand_bps=float(topo.memo_demand_cap.sum()),
                allocated_bps=float(final.sum()),
            )
            tracer.metrics.set("fluid.active_sessions", len(sessions))

        batch.jump(h, n, final, losses, now)
        for s in sessions:
            if not s.active and s in self.sessions:
                self.remove_session(s)
        if prof is not None:
            prof.add("session_step", perf_counter() - t0)  # repro: lint-ok[F001]

    # -- topology cache ----------------------------------------------------------

    def _topology(self, sessions: list[TransferSession]) -> _Topology:
        """The cached topology, rebuilt only when stale.

        The dirty flag is the primary invalidation mechanism; the
        fingerprint catches direct mutations that bypassed the session
        notification hook (e.g. tests poking worker arrays).
        """
        fingerprint = tuple(
            (id(s), s.rates.size, s.params.parallelism) for s in sessions
        )
        topo = self._topo
        if not self._dirty and topo is not None and topo.fingerprint == fingerprint:
            return topo
        topo = self._build_topology(sessions, fingerprint)
        self._topo = topo
        self._dirty = False
        tracer = current_tracer()
        if tracer is not None:
            tracer.emit(
                TopologyRebuild,
                sessions=len(sessions),
                workers=topo.total,
                resources=len(topo.resources),
            )
            tracer.metrics.inc("fluid.topology_rebuilds")
        return topo

    def _build_topology(
        self, sessions: list[TransferSession], fingerprint: tuple
    ) -> _Topology:
        counts = np.array([s.rates.size for s in sessions])
        offsets = np.concatenate([[0], np.cumsum(counts)])
        total = int(offsets[-1])

        resources = self._build_resources(sessions, offsets)
        n_res = len(resources)

        # Which resources serve each worker (for the other-rows tables).
        # Built as one padded (total, k_max) matrix — per-worker Python
        # loops here cost more than the whole steady-state step at
        # 16k-worker scale, so everything below the count pass is
        # vectorized fancy indexing.
        res_count = np.zeros(total, dtype=np.intp)
        for res in resources:
            res_count[res.members] += 1
        k_max = int(res_count.max()) if total else 0
        worker_res = np.full((total, max(k_max, 1)), n_res, dtype=np.intp)
        fill = np.zeros(total, dtype=np.intp)
        for r, res in enumerate(resources):
            worker_res[res.members, fill[res.members]] = r
            fill[res.members] += 1

        # The worst path RTT through each link (for its loss model).
        link_rtt: dict[int, float] = {}
        for s in sessions:
            for link in s.path:
                key = id(link)
                link_rtt[key] = max(link_rtt.get(key, 0.0), s.path.rtt)

        for r, res in enumerate(resources):
            rows = worker_res[res.members]
            # Mask out this resource's own column; the sentinel column
            # of the grants matrix stays +inf, so padding is harmless
            # (every row keeps at least one sentinel entry).
            res.members_col = res.members[:, None]
            res.other_rows = np.where(rows == r, n_res, rows)
            if res.link is not None:
                res.n_flows = (
                    int(res.streams.sum()) if res.streams is not None else res.members.size
                )
                res.link_rtt = link_rtt.get(id(res.link), 0.0)

        # Loss scaffolding: which resource-list entries are links, and
        # each session's path as rows into the per-step loss vector
        # (padded with the sentinel slot that always holds zero loss).
        session_link_ids = [[id(link) for link in s.path] for s in sessions]
        link_resources = [res for res in resources if res.link is not None]
        link_slot = {id(res.link): j for j, res in enumerate(link_resources)}
        n_links = len(link_resources)
        width = max((len(ids) for ids in session_link_ids), default=0)
        session_link_rows = np.full(
            (len(sessions), max(width, 1)), n_links, dtype=np.intp
        )
        for i, ids in enumerate(session_link_ids):
            session_link_rows[i, : len(ids)] = [link_slot[key] for key in ids]

        return _Topology(
            fingerprint=fingerprint,
            sessions=list(sessions),
            offsets=offsets,
            total=total,
            resources=resources,
            caps_full=self._caps_full(sessions, offsets, total),
            has_file=np.zeros(total, dtype=bool),
            grants=np.full((total, n_res + 1), np.inf),
            session_link_ids=session_link_ids,
            link_resources=link_resources,
            session_link_rows=session_link_rows,
            batch=BatchStore(sessions, offsets) if self.batched else None,
        )

    # -- demand caps -----------------------------------------------------------

    def _caps_full(
        self, sessions: list[TransferSession], offsets: np.ndarray, total: int
    ) -> np.ndarray:
        """Per-worker unconstrained rate caps assuming a file in hand (bps)."""
        # Process counts per host: each worker is one process on the
        # source and one on the destination.
        procs: dict[int, int] = {}
        for s in sessions:
            for host in (s.source, s.destination):
                procs[id(host)] = procs.get(id(host), 0) + s.rates.size

        caps = np.zeros(total)
        for i, s in enumerate(sessions):
            eff = min(
                s.source.cpu.efficiency(procs[id(s.source)]),
                s.destination.cpu.efficiency(procs[id(s.destination)]),
            )
            per_worker = min(
                s.params.parallelism * s.tcp.stream_cap(s.path.rtt),
                s.source.storage.per_process_read_bps * eff,
                s.destination.storage.per_process_write_bps * eff,
            )
            caps[offsets[i] : offsets[i + 1]] = per_worker
        return caps

    def _demand_caps(self, topo: _Topology) -> np.ndarray:
        """Per-worker rate caps this step (bps).

        Workers holding a file keep their allocation warm even while in
        a short inter-file gap (data-channel caching); workers with no
        file left demand nothing.
        """
        if topo.batch is not None:
            # Sessions hold views into the store: the global mask is
            # already current, no per-session gather needed.
            return np.where(topo.batch.has_file, topo.caps_full, 0.0)
        has_file = topo.has_file
        offsets = topo.offsets
        for i, s in enumerate(topo.sessions):
            has_file[offsets[i] : offsets[i + 1]] = s.has_file
        return np.where(has_file, topo.caps_full, 0.0)

    # -- resource construction ----------------------------------------------------

    def _build_resources(
        self, sessions: list[TransferSession], offsets: np.ndarray
    ) -> list[_Resource]:
        resources: list[_Resource] = []

        # Storage arrays (read side grouped by source storage object,
        # write side by destination storage object).
        read_groups: dict[int, list[int]] = {}
        write_groups: dict[int, list[int]] = {}
        read_fs: dict[int, object] = {}
        write_fs: dict[int, object] = {}
        send_nic_groups: dict[int, list[int]] = {}
        recv_nic_groups: dict[int, list[int]] = {}
        nic_of: dict[int, object] = {}
        link_groups: dict[int, list[int]] = {}
        link_streams: dict[int, list[int]] = {}
        link_of: dict[int, Link] = {}

        link_weights: dict[int, list[float]] = {}

        for i, s in enumerate(sessions):
            idx = list(range(offsets[i], offsets[i + 1]))
            key = id(s.source.storage)
            read_groups.setdefault(key, []).extend(idx)
            read_fs[key] = s.source.storage
            key = id(s.destination.storage)
            write_groups.setdefault(key, []).extend(idx)
            write_fs[key] = s.destination.storage
            key = id(s.source.nic)
            send_nic_groups.setdefault(key, []).extend(idx)
            nic_of[key] = s.source.nic
            key = id(s.destination.nic)
            recv_nic_groups.setdefault(key, []).extend(idx)
            nic_of[key] = s.destination.nic
            for link in s.path:
                key = id(link)
                link_groups.setdefault(key, []).extend(idx)
                link_streams.setdefault(key, []).extend([s.params.parallelism] * len(idx))
                link_weights.setdefault(key, []).extend([s.tcp.aggressiveness] * len(idx))
                link_of[key] = link

        for key, idx in read_groups.items():
            fs = read_fs[key]
            resources.append(
                _Resource(f"read:{fs.name}", np.array(idx), fs.allocate_read)
            )
        for key, idx in write_groups.items():
            fs = write_fs[key]
            resources.append(
                _Resource(f"write:{fs.name}", np.array(idx), fs.allocate_write)
            )
        for key, idx in send_nic_groups.items():
            nic = nic_of[key]
            resources.append(_Resource(f"nic-tx:{nic.name}", np.array(idx), nic.allocate))
        for key, idx in recv_nic_groups.items():
            nic = nic_of[key]
            resources.append(_Resource(f"nic-rx:{nic.name}", np.array(idx), nic.allocate))
        for key, idx in link_groups.items():
            link = link_of[key]
            streams = np.array(link_streams[key])
            weights = np.array(link_weights[key])
            resources.append(
                _Resource(
                    f"link:{link.name}",
                    np.array(idx),
                    _flow_allocator(link, streams, weights),
                    streams=streams,
                    link=link,
                )
            )
        return resources

    # -- iterative waterfilling -----------------------------------------------------

    def _waterfill(self, demand_cap: np.ndarray, topo: _Topology) -> np.ndarray:
        """Joint allocation: each round every resource re-allocates with
        demands clamped by the other resources' last grants.

        Gauss-Seidel over the cached resource list: within a round each
        resource sees the grants the earlier resources just wrote.  The
        grants matrix is preallocated scratch; its sentinel last column
        stays +inf so the padded other-rows gather is a plain 2-D fancy
        index with no per-resource ``np.delete`` copies.
        """
        # Memo hit: same caps, same topology -> same (pure) allocation.
        if topo.memo_demand_cap is not None and np.array_equal(
            demand_cap, topo.memo_demand_cap
        ):
            return topo.memo_final.copy()

        grants = topo.grants
        grants.fill(np.inf)
        resources = topo.resources
        for res in resources:
            res.demand_sub = demand_cap[res.members]
        for _ in range(_WATERFILL_ROUNDS):
            for r, res in enumerate(resources):
                clamp = grants[res.members_col, res.other_rows].min(axis=1)
                demands = np.minimum(res.demand_sub, clamp)
                alloc = res.allocate(demands)
                grants[res.members, r] = alloc
                res.last_alloc = alloc
        final = np.minimum(demand_cap, grants[:, : len(resources)].min(axis=1))
        final = np.where(np.isfinite(final), final, demand_cap)
        topo.memo_demand_cap = demand_cap
        topo.memo_final = final
        return final.copy()

    # -- loss -----------------------------------------------------------------------

    def _session_losses(self, topo: _Topology, final: np.ndarray) -> np.ndarray:
        """Per-session path loss: independent loss at each traversed link.

        One loss evaluation per link, then one indexed product over the
        precomputed session-path rows (the sentinel slot stays at zero
        loss, so row padding multiplies by exactly 1.0).
        """
        # Memo hit: same allocation, same link fault state, same
        # topology -> same (pure) losses.
        fault_state = tuple(
            (res.link.available, res.link.extra_loss) for res in topo.link_resources
        )
        if (
            topo.memo_loss_final is not None
            and topo.memo_loss_state == fault_state
            and np.array_equal(final, topo.memo_loss_final)
        ):
            return topo.memo_losses
        n_links = len(topo.link_resources)
        loss_vec = np.zeros(n_links + 1)
        for j, res in enumerate(topo.link_resources):
            carried = float(final[res.members].sum())
            # Use the RTT of the longest path through this link — loss is a
            # property of the shared queue, approximated with one RTT.
            loss_vec[j] = res.link.loss_rate(carried, res.n_flows, res.link_rtt)
        survive = np.prod(1.0 - loss_vec[topo.session_link_rows], axis=1)
        losses = 1.0 - survive
        topo.memo_loss_final = final
        topo.memo_loss_state = fault_state
        topo.memo_losses = losses
        return losses


def _flow_allocator(link: Link, streams: np.ndarray, weights: np.ndarray | None = None):
    """Build an allocator that arbitrates at *flow* granularity.

    A worker with parallelism ``p`` presents ``p`` equal flows, so at a
    saturated link a session's share is proportional to its total stream
    count — the mechanism behind both the benefit and the aggression of
    high concurrency/parallelism.

    ``weights`` carries per-worker transport aggressiveness: loss-based
    TCP flows weigh 1.0; a BBR-flavoured transport (the paper's future
    work, modelled as less loss-deferential) claims proportionally more
    of a saturated link.

    The flow expansion scaffolding (reduceat boundaries, expanded
    weights) depends only on ``streams``/``weights``, so it is computed
    once per topology build rather than per step.
    """
    uniform = weights is None or np.all(weights == weights[0] if weights.size else True)
    boundaries = np.concatenate([[0], np.cumsum(streams)[:-1]])
    flow_weights = None if uniform else np.repeat(weights, streams)

    def allocate(demands: np.ndarray) -> np.ndarray:
        flow_demands = np.repeat(demands / streams, streams)
        if uniform:
            flow_alloc = link.allocate(flow_demands)
        else:
            flow_alloc = weighted_max_min_fair_share(
                flow_demands, flow_weights, link.effective_capacity
            )
        # Sum each worker's flows back together.
        return np.add.reduceat(flow_alloc, boundaries) if flow_alloc.size else flow_alloc

    return allocate
