"""Fluid executor: joint arbitration of all sessions across all resources.

Every fluid step the executor:

1. computes each worker's *demand cap* — the rate it could use if
   nothing were shared: ``min(parallelism x stream cap, per-process read,
   per-process write)`` scaled by CPU efficiency at both hosts;
2. runs a few rounds of **iterative waterfilling** across the shared
   resources (source storage array, destination storage array, both
   NICs, every network link): each resource max-min-allocates using
   demands clamped by what the *other* resources granted last round.
   This converges to a feasible, near max-min joint allocation and —
   crucially for the paper's game dynamics — gives a session bandwidth
   in proportion to its flow count at a saturated bottleneck;
3. computes per-link packet loss from carried load and flow count;
4. lets each session ramp its worker rates toward the allocation and
   move file bytes.

The executor is deliberately the *only* place where sessions interact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.config import DEFAULT_CONFIG, SimConfig
from repro.network.link import Link
from repro.sim.engine import SimulationEngine
from repro.sim.fairshare import weighted_max_min_fair_share
from repro.transfer.session import TransferSession

#: Rounds of iterative waterfilling per step.  Two suffice for a single
#: binding resource; three handle redistribution across two bottlenecks.
_WATERFILL_ROUNDS = 3


@dataclass
class _Resource:
    """One shared resource and the workers it serves."""

    name: str
    members: np.ndarray  # global worker indices
    allocate: Callable[[np.ndarray], np.ndarray]
    # For links only: per-member stream counts (parallelism), else None.
    streams: np.ndarray | None = None
    link: Link | None = None
    last_alloc: np.ndarray = field(default_factory=lambda: np.zeros(0))


class FluidTransferNetwork:
    """Holds the active sessions and arbitrates them each fluid step."""

    def __init__(self, engine: SimulationEngine, config: SimConfig = DEFAULT_CONFIG):
        self.engine = engine
        self.config = config
        self.sessions: list[TransferSession] = []
        engine.fluid_step = self.fluid_step

    # -- session management ----------------------------------------------------

    def add_session(self, session: TransferSession) -> None:
        """Attach a session; it starts transferring on the next step."""
        if session in self.sessions:
            raise ValueError(f"session {session.name!r} already added")
        session.started_at = self.engine.now
        session.assign_files()
        self.sessions.append(session)

    def remove_session(self, session: TransferSession) -> None:
        """Detach a session (finished or cancelled)."""
        self.sessions.remove(session)

    def active_sessions(self) -> list[TransferSession]:
        """Sessions that still have work."""
        return [s for s in self.sessions if s.active]

    # -- the fluid step ----------------------------------------------------------

    def fluid_step(self, now: float, dt: float) -> None:
        """Advance all sessions by ``dt`` (engine callback)."""
        sessions = self.active_sessions()
        if not sessions:
            return
        for s in sessions:
            s.assign_files()

        counts = np.array([s.rates.size for s in sessions])
        offsets = np.concatenate([[0], np.cumsum(counts)])
        total_workers = int(offsets[-1])
        if total_workers == 0:
            return

        demand_cap = self._demand_caps(sessions, offsets, total_workers)
        resources = self._build_resources(sessions, offsets, total_workers)
        final = self._waterfill(demand_cap, resources, total_workers)
        losses = self._session_losses(sessions, offsets, resources, final)

        for i, s in enumerate(sessions):
            targets = final[offsets[i] : offsets[i + 1]]
            s.step(dt, targets, losses[i], now)
            if not s.active and s in self.sessions:
                self.sessions.remove(s)

    # -- demand caps -----------------------------------------------------------

    def _demand_caps(
        self, sessions: list[TransferSession], offsets: np.ndarray, total: int
    ) -> np.ndarray:
        """Per-worker unconstrained rate caps (bps)."""
        # Process counts per host: each worker is one process on the
        # source and one on the destination.
        procs: dict[int, int] = {}
        for s in sessions:
            for host in (s.source, s.destination):
                procs[id(host)] = procs.get(id(host), 0) + s.rates.size

        caps = np.zeros(total)
        for i, s in enumerate(sessions):
            eff = min(
                s.source.cpu.efficiency(procs[id(s.source)]),
                s.destination.cpu.efficiency(procs[id(s.destination)]),
            )
            per_worker = min(
                s.params.parallelism * s.tcp.stream_cap(s.path.rtt),
                s.source.storage.per_process_read_bps * eff,
                s.destination.storage.per_process_write_bps * eff,
            )
            sl = slice(offsets[i], offsets[i + 1])
            # Workers holding a file keep their allocation warm even
            # while in a short inter-file gap (data-channel caching);
            # workers with no file left demand nothing.
            caps[sl] = np.where(s.has_file, per_worker, 0.0)
        return caps

    # -- resource construction ----------------------------------------------------

    def _build_resources(
        self, sessions: list[TransferSession], offsets: np.ndarray, total: int
    ) -> list[_Resource]:
        resources: list[_Resource] = []

        # Storage arrays (read side grouped by source storage object,
        # write side by destination storage object).
        read_groups: dict[int, list[int]] = {}
        write_groups: dict[int, list[int]] = {}
        read_fs: dict[int, object] = {}
        write_fs: dict[int, object] = {}
        send_nic_groups: dict[int, list[int]] = {}
        recv_nic_groups: dict[int, list[int]] = {}
        nic_of: dict[int, object] = {}
        link_groups: dict[int, list[int]] = {}
        link_streams: dict[int, list[int]] = {}
        link_of: dict[int, Link] = {}

        link_weights: dict[int, list[float]] = {}

        for i, s in enumerate(sessions):
            idx = list(range(offsets[i], offsets[i + 1]))
            key = id(s.source.storage)
            read_groups.setdefault(key, []).extend(idx)
            read_fs[key] = s.source.storage
            key = id(s.destination.storage)
            write_groups.setdefault(key, []).extend(idx)
            write_fs[key] = s.destination.storage
            key = id(s.source.nic)
            send_nic_groups.setdefault(key, []).extend(idx)
            nic_of[key] = s.source.nic
            key = id(s.destination.nic)
            recv_nic_groups.setdefault(key, []).extend(idx)
            nic_of[key] = s.destination.nic
            for link in s.path:
                key = id(link)
                link_groups.setdefault(key, []).extend(idx)
                link_streams.setdefault(key, []).extend([s.params.parallelism] * len(idx))
                link_weights.setdefault(key, []).extend([s.tcp.aggressiveness] * len(idx))
                link_of[key] = link

        for key, idx in read_groups.items():
            fs = read_fs[key]
            resources.append(
                _Resource(f"read:{fs.name}", np.array(idx), fs.allocate_read)
            )
        for key, idx in write_groups.items():
            fs = write_fs[key]
            resources.append(
                _Resource(f"write:{fs.name}", np.array(idx), fs.allocate_write)
            )
        for key, idx in send_nic_groups.items():
            nic = nic_of[key]
            resources.append(_Resource(f"nic-tx:{nic.name}", np.array(idx), nic.allocate))
        for key, idx in recv_nic_groups.items():
            nic = nic_of[key]
            resources.append(_Resource(f"nic-rx:{nic.name}", np.array(idx), nic.allocate))
        for key, idx in link_groups.items():
            link = link_of[key]
            streams = np.array(link_streams[key])
            weights = np.array(link_weights[key])
            resources.append(
                _Resource(
                    f"link:{link.name}",
                    np.array(idx),
                    _flow_allocator(link, streams, weights),
                    streams=streams,
                    link=link,
                )
            )
        return resources

    # -- iterative waterfilling -----------------------------------------------------

    def _waterfill(
        self, demand_cap: np.ndarray, resources: list[_Resource], total: int
    ) -> np.ndarray:
        """Joint allocation: each round every resource re-allocates with
        demands clamped by the other resources' last grants."""
        n_res = len(resources)
        # grants[r, w] = resource r's last allocation to worker w
        grants = np.full((n_res, total), np.inf)
        for _ in range(_WATERFILL_ROUNDS):
            for r, res in enumerate(resources):
                others = np.delete(grants[:, res.members], r, axis=0)
                clamp = others.min(axis=0) if others.size else np.full(res.members.size, np.inf)
                demands = np.minimum(demand_cap[res.members], clamp)
                alloc = res.allocate(demands)
                grants[r, res.members] = alloc
                res.last_alloc = alloc
        final = np.minimum(demand_cap, grants.min(axis=0))
        return np.where(np.isfinite(final), final, demand_cap)

    # -- loss -----------------------------------------------------------------------

    def _session_losses(
        self,
        sessions: list[TransferSession],
        offsets: np.ndarray,
        resources: list[_Resource],
        final: np.ndarray,
    ) -> list[float]:
        """Per-session path loss: independent loss at each traversed link."""
        link_loss: dict[int, float] = {}
        for res in resources:
            if res.link is None:
                continue
            carried = float(final[res.members].sum())
            n_flows = int(res.streams.sum()) if res.streams is not None else res.members.size
            # Use the RTT of the longest path through this link — loss is a
            # property of the shared queue, approximated with one RTT.
            rtt = max(
                (s.path.rtt for s in sessions if res.link in s.path.links), default=0.0
            )
            link_loss[id(res.link)] = res.link.loss_rate(carried, n_flows, rtt)

        losses = []
        for s in sessions:
            survive = 1.0
            for link in s.path:
                survive *= 1.0 - link_loss.get(id(link), 0.0)
            losses.append(1.0 - survive)
        return losses


def _flow_allocator(link: Link, streams: np.ndarray, weights: np.ndarray | None = None):
    """Build an allocator that arbitrates at *flow* granularity.

    A worker with parallelism ``p`` presents ``p`` equal flows, so at a
    saturated link a session's share is proportional to its total stream
    count — the mechanism behind both the benefit and the aggression of
    high concurrency/parallelism.

    ``weights`` carries per-worker transport aggressiveness: loss-based
    TCP flows weigh 1.0; a BBR-flavoured transport (the paper's future
    work, modelled as less loss-deferential) claims proportionally more
    of a saturated link.
    """
    uniform = weights is None or np.all(weights == weights[0] if weights.size else True)

    def allocate(demands: np.ndarray) -> np.ndarray:
        flow_demands = np.repeat(demands / streams, streams)
        if uniform:
            flow_alloc = link.allocate(flow_demands)
        else:
            flow_weights = np.repeat(weights, streams)
            flow_alloc = weighted_max_min_fair_share(
                flow_demands, flow_weights, link.capacity
            )
        # Sum each worker's flows back together.
        boundaries = np.concatenate([[0], np.cumsum(streams)[:-1]])
        return np.add.reduceat(flow_alloc, boundaries) if flow_alloc.size else flow_alloc

    return allocate
