"""Throughput and loss measurement.

Falcon "uses a separate thread to gather and process performance
metrics" (§3.2).  In the simulator the analogue is a monitor that
accumulates what the session actually moved during the current sample
interval and hands the agent one :class:`IntervalSample` per decision.

Measurement noise is applied *here*, not in the fluid model: the
simulated ground truth stays exact while agents see jittered samples —
the same separation a real system has between what the network did and
what ``/proc`` counters say it did.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class IntervalSample:
    """What an agent observes about one sample interval.

    Attributes
    ----------
    duration:
        Interval length, seconds.
    throughput_bps:
        Aggregate goodput of the session over the interval.
    loss_rate:
        Fraction of sent bytes lost (retransmitted).
    concurrency / parallelism / pipelining:
        Parameter values in force during the interval.
    valid:
        False when the interval overlapped an infrastructure outage
        (see :meth:`ThroughputMonitor.begin_taint`); the reading says
        nothing about the setting's quality and optimizers must not
        learn from it.
    """

    duration: float
    throughput_bps: float
    loss_rate: float
    concurrency: int
    parallelism: int = 1
    pipelining: int = 1
    valid: bool = True

    @property
    def per_worker_bps(self) -> float:
        """Average per-worker throughput (the paper's ``t_i``)."""
        if self.concurrency <= 0:
            return 0.0
        return self.throughput_bps / self.concurrency


class ThroughputMonitor:
    """Accumulates transfer progress between agent decisions.

    Per-step contributions are kept individually so :meth:`take` can
    discard the head of the interval: right after a setting change the
    new workers are still forking processes and ramping TCP windows, so
    the earliest readings under-report what the setting can do.  The
    real Falcon runs each sample transfer "for a sufficient amount of
    time" before capturing metrics; ``tail_fraction`` is the simulator
    analogue.
    """

    def __init__(self, tail_fraction: float = 0.6) -> None:
        if not 0 < tail_fraction <= 1:
            raise ValueError("tail_fraction must be in (0, 1]")
        self.tail_fraction = tail_fraction
        self._steps: list[tuple[float, float, float, float]] = []
        self._elapsed = 0.0
        self._taint_depth = 0
        self._tainted = False

    def record(self, good_bytes: float, sent_bytes: float, lost_bytes: float, dt: float) -> None:
        """Add one fluid step's contribution."""
        self._steps.append((good_bytes, sent_bytes, lost_bytes, dt))
        self._elapsed += dt

    # -- outage tainting -----------------------------------------------------

    def begin_taint(self) -> None:
        """Mark readings as outage-contaminated until :meth:`end_taint`.

        Called by the fault injector when an outage starts on this
        session's path.  Every sample taken while a taint is active —
        and the first sample after it clears, whose interval straddles
        the outage boundary — comes back with ``valid=False`` so the
        optimizer does not chase a zero-throughput artefact.  Taints
        nest (overlapping outages on different links).
        """
        self._taint_depth += 1
        self._tainted = True

    def end_taint(self) -> None:
        """Close one outage window opened by :meth:`begin_taint`."""
        if self._taint_depth <= 0:
            raise ValueError("end_taint() without a matching begin_taint()")
        self._taint_depth -= 1
        self._tainted = True

    @property
    def elapsed(self) -> float:
        """Seconds accumulated since the last :meth:`take`."""
        return self._elapsed

    def _tail_totals(self) -> tuple[float, float, float, float]:
        """Sum (good, sent, lost, duration) over the trailing fraction."""
        target = self._elapsed * self.tail_fraction
        good = sent = lost = duration = 0.0
        for g, s, l, dt in reversed(self._steps):
            good += g
            sent += s
            lost += l
            duration += dt
            if duration >= target:
                break
        return good, sent, lost, duration

    def take(
        self,
        concurrency: int,
        parallelism: int = 1,
        pipelining: int = 1,
        rng: np.random.Generator | None = None,
        jitter: float = 0.0,
    ) -> IntervalSample:
        """Return the interval's sample and reset the accumulator.

        ``jitter`` is the stddev of multiplicative Gaussian noise on the
        measured throughput (and, at half strength, on measured loss —
        loss counters are coarser but less volatile than rate
        estimates).
        """
        good, sent, lost, duration = self._tail_totals()
        full_duration = self._elapsed
        throughput = good * 8.0 / duration if duration > 0 else 0.0
        loss = lost / sent if sent > 0 else 0.0
        if rng is not None and jitter > 0:
            throughput *= max(0.0, 1.0 + rng.normal(0.0, jitter))
            loss *= max(0.0, 1.0 + rng.normal(0.0, jitter * 0.5))
        valid = self._taint_depth == 0 and not self._tainted
        self._tainted = False
        self._steps.clear()
        self._elapsed = 0.0
        return IntervalSample(
            duration=full_duration,
            throughput_bps=float(throughput),
            loss_rate=float(min(1.0, loss)),
            concurrency=concurrency,
            parallelism=parallelism,
            pipelining=pipelining,
            valid=valid,
        )
