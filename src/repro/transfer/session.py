"""A transfer session (one "transfer task" in the paper's vocabulary).

A session moves one dataset from a source DTN to a destination DTN over
a path, using:

* ``concurrency`` — number of worker processes, each moving one file at
  a time (file-level parallelism: concurrent I/O *and* network flows);
* ``parallelism`` — TCP streams per worker (network-only parallelism);
* ``pipelining`` — control-channel commands in flight, which amortises
  the per-file round trips that dominate lots-of-small-files transfers.

Worker lifecycle matches GridFTP semantics: raising concurrency spawns
processes (paying a startup delay of process creation plus connection
establishment — the paper's footnote 2); lowering it tears processes
down, and their in-progress files return to the queue with progress
kept (restartable transfers).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

import numpy as np

from repro.hosts.dtn import DataTransferNode
from repro.network.path import Path
from repro.obs.events import (
    SessionComplete,
    SessionParamsChange,
    WorkerCrashed,
    WorkerStalled,
)
from repro.obs.tracer import current_tracer
from repro.network.tcp import CUBIC, TcpModel
from repro.transfer.dataset import FileQueue
from repro.transfer.metrics import ThroughputMonitor

#: Process fork + data-channel establishment overhead, seconds.
WORKER_SPAWN_OVERHEAD = 0.3

#: Control-channel round trips per file without pipelining (STOR/RETR
#: command plus acknowledgement).
CONTROL_RTTS_PER_FILE = 2.0


@dataclass(frozen=True)
class TransferParams:
    """The tunable application-layer parameters (paper §1, §4.4)."""

    concurrency: int = 1
    parallelism: int = 1
    pipelining: int = 1

    def __post_init__(self) -> None:
        for name in ("concurrency", "parallelism", "pipelining"):
            value = getattr(self, name)
            if not isinstance(value, (int, np.integer)) or value < 1:
                raise ValueError(f"{name} must be an integer >= 1, got {value!r}")
            # Coerce numpy integers (optimizer outputs) to built-in int so
            # trace events, cache-key encodings, and topology fingerprints
            # never see a np.int64 where JSON expects an int.
            if not isinstance(value, int):
                object.__setattr__(self, name, int(value))

    def with_(self, **kwargs) -> "TransferParams":
        """Copy with fields replaced."""
        return replace(self, **kwargs)

    @property
    def total_streams(self) -> int:
        """Network connections created: ``concurrency * parallelism``."""
        return self.concurrency * self.parallelism


class TransferSession:
    """One transfer task and its worker pool.

    Parameters
    ----------
    name:
        Label used in traces and reports.
    source, destination:
        End hosts.
    path:
        Network path from source to destination.
    queue:
        File queue to consume (see :meth:`Dataset.queue`).
    tcp:
        Transport model for this session's streams.
    params:
        Initial parameter values.
    """

    def __init__(
        self,
        name: str,
        source: DataTransferNode,
        destination: DataTransferNode,
        path: Path,
        queue: FileQueue,
        tcp: TcpModel = CUBIC,
        params: TransferParams = TransferParams(),
    ) -> None:
        self.name = name
        self.source = source
        self.destination = destination
        self.path = path
        self.queue = queue
        self.tcp = tcp
        self.params = params
        self.monitor = ThroughputMonitor()
        # Path is frozen, so its RTT is a constant for the session's
        # lifetime; cache it out of the per-step hot path.
        self._path_rtt = path.rtt
        # Set by the executor; invoked whenever worker count or stream
        # layout changes so it can invalidate its cached topology.
        self.on_topology_change: Optional[Callable[[], None]] = None
        # Set by the executor; invoked whenever a worker gains or loses
        # a file (assignment, queue exhaustion, crash) — the only
        # per-step state changes that move the demand-cap vector, and
        # therefore the executor's cached equilibrium allocation.
        self.on_demand_change: Optional[Callable[[], None]] = None

        # Per-worker state (parallel arrays).
        self.rates = np.zeros(0)  # current send rate, bps
        self.file_size = np.zeros(0)  # bytes of current file (0 = no file)
        self.file_done = np.zeros(0)  # bytes completed of current file
        self.gap_left = np.zeros(0)  # seconds of pause before sending resumes
        self.stall_left = np.zeros(0)  # seconds of injected stall (hung worker)
        self.attempts = np.zeros(0, dtype=np.intp)  # failed attempts of current file
        self.has_file = np.zeros(0, dtype=bool)

        self.total_good_bytes = 0.0
        self.total_lost_bytes = 0.0
        self.files_completed = 0
        self.process_seconds = 0.0
        self.current_loss = 0.0
        # Fault accounting (see repro.faults): crashes injected or forced
        # by the watchdog, stall seconds actually consumed, and files
        # sent back to the queue by a failure (not a parameter change).
        self.worker_crashes = 0
        self.files_requeued = 0
        self.stalled_seconds = 0.0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.on_complete: Optional[Callable[["TransferSession"], None]] = None
        #: When set, a crashed worker's in-progress file is handed to
        #: this callback ``(size, done, attempts)`` instead of being
        #: requeued immediately — the hook the service's retry/backoff
        #: policy attaches to.
        self.on_file_failure: Optional[Callable[[float, float, int], None]] = None

        self._resize_workers(params.concurrency)

    # -- parameter control ---------------------------------------------------

    @property
    def concurrency(self) -> int:
        """Current worker count."""
        return self.params.concurrency

    @property
    def parallelism(self) -> int:
        """Current streams per worker."""
        return self.params.parallelism

    @property
    def pipelining(self) -> int:
        """Current pipelining depth."""
        return self.params.pipelining

    def set_params(self, params: TransferParams) -> None:
        """Apply a new parameter vector (spawning/dropping workers)."""
        if params != self.params:
            tracer = current_tracer()
            if tracer is not None:
                tracer.emit(
                    SessionParamsChange,
                    session=self.name,
                    concurrency=params.concurrency,
                    parallelism=params.parallelism,
                    pipelining=params.pipelining,
                )
                tracer.metrics.inc("sessions.param_changes")
        if params.concurrency != self.params.concurrency:
            self._resize_workers(params.concurrency)
        if params.parallelism != self.params.parallelism:
            self._notify_topology_change()
        self.params = params

    def set_concurrency(self, n: int) -> None:
        """Convenience: change only the worker count."""
        self.set_params(self.params.with_(concurrency=int(n)))

    def _resize_workers(self, target: int) -> None:
        current = self.rates.size
        if target > current:
            extra = target - current
            self.rates = np.concatenate([self.rates, np.full(extra, self.tcp.initial_rate)])
            self.file_size = np.concatenate([self.file_size, np.zeros(extra)])
            self.file_done = np.concatenate([self.file_done, np.zeros(extra)])
            startup = WORKER_SPAWN_OVERHEAD + CONTROL_RTTS_PER_FILE * self._path_rtt
            self.gap_left = np.concatenate([self.gap_left, np.full(extra, startup)])
            self.stall_left = np.concatenate([self.stall_left, np.zeros(extra)])
            self.attempts = np.concatenate([self.attempts, np.zeros(extra, dtype=np.intp)])
            self.has_file = np.concatenate([self.has_file, np.zeros(extra, dtype=bool)])
            self.assign_files()
        elif target < current:
            for w in range(target, current):
                if self.has_file[w] and self.file_done[w] < self.file_size[w]:
                    # Teardown is not a failure: the attempt count rides
                    # along unchanged (restartable-transfer semantics).
                    self.queue.push_back(
                        float(self.file_size[w]),
                        float(self.file_done[w]),
                        int(self.attempts[w]),
                    )
            self.rates = self.rates[:target]
            self.file_size = self.file_size[:target]
            self.file_done = self.file_done[:target]
            self.gap_left = self.gap_left[:target]
            self.stall_left = self.stall_left[:target]
            self.attempts = self.attempts[:target]
            self.has_file = self.has_file[:target]
        if target != current:
            self._notify_topology_change()

    # -- batched state-store integration -------------------------------------

    def adopt_state(
        self,
        rates: np.ndarray,
        file_size: np.ndarray,
        file_done: np.ndarray,
        gap_left: np.ndarray,
        stall_left: np.ndarray,
        attempts: np.ndarray,
        has_file: np.ndarray,
    ) -> None:
        """Install externally owned arrays as this session's worker state.

        Called by :class:`repro.sim.batch.BatchStore` to hand the session
        views into the global contiguous arrays (and again with copies
        when the session detaches).  The arrays must describe the same
        worker count; values are taken as-is.
        """
        if rates.size != self.rates.size:
            raise ValueError(
                f"adopt_state: expected {self.rates.size} workers, got {rates.size}"
            )
        self.rates = rates
        self.file_size = file_size
        self.file_done = file_done
        self.gap_left = gap_left
        self.stall_left = stall_left
        self.attempts = attempts
        self.has_file = has_file

    # -- fault handling ------------------------------------------------------

    def crash_worker(self, w: int) -> None:
        """Kill worker ``w`` (process crash) and replace it.

        The in-progress file either goes to :attr:`on_file_failure`
        (service retry policy decides when/whether it re-enters the
        queue) or is requeued immediately with its progress kept and
        its attempt count bumped.  The replacement worker pays the full
        spawn overhead, exactly like a concurrency increase.
        """
        if w < 0 or w >= self.rates.size:
            return
        size, done = float(self.file_size[w]), float(self.file_done[w])
        attempts = int(self.attempts[w])
        had_file = bool(self.has_file[w])
        # A file whose bytes all arrived but whose completion the step
        # loop has not retired yet (done can round up to exactly size at
        # a step boundary) is *delivered*, not in-progress: a crash now
        # must count it completed, never drop or re-send it.
        finished = had_file and done >= size
        requeued = had_file and not finished
        self.worker_crashes += 1
        tracer = current_tracer()
        if tracer is not None:
            tracer.emit(WorkerCrashed, session=self.name, worker=w, requeued=requeued)
            tracer.metrics.inc("workers.crashed")
        self.rates[w] = self.tcp.initial_rate
        self.file_size[w] = 0.0
        self.file_done[w] = 0.0
        self.gap_left[w] = WORKER_SPAWN_OVERHEAD + CONTROL_RTTS_PER_FILE * self._path_rtt
        self.stall_left[w] = 0.0
        self.attempts[w] = 0
        self.has_file[w] = False
        if had_file:
            self._notify_demand_change()
        if finished:
            self.files_completed += 1
        elif requeued:
            self.files_requeued += 1
            if self.on_file_failure is not None:
                self.on_file_failure(size, done, attempts)
            else:
                self.queue.push_back(size, done, attempts + 1)

    def stall_worker(self, w: int, duration: float) -> None:
        """Freeze worker ``w`` for ``duration`` seconds (hung process).

        A stalled worker keeps its file and its warm data channel but
        moves no bytes until the stall drains — the failure mode the
        service's no-progress watchdog exists to catch.
        """
        if w < 0 or w >= self.rates.size:
            return
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.stall_left[w] += duration
        tracer = current_tracer()
        if tracer is not None:
            tracer.emit(WorkerStalled, session=self.name, worker=w, duration_s=duration)
            tracer.metrics.inc("workers.stalled")

    def stalled_workers(self) -> np.ndarray:
        """Indices of workers currently inside an injected stall."""
        return np.flatnonzero(self.stall_left > 0.0)

    def _notify_topology_change(self) -> None:
        if self.on_topology_change is not None:
            self.on_topology_change()

    def _notify_demand_change(self) -> None:
        if self.on_demand_change is not None:
            self.on_demand_change()

    # -- file management -----------------------------------------------------

    def assign_files(self) -> None:
        """Hand queued files to idle workers."""
        assigned = False
        for w in np.flatnonzero(~self.has_file):
            item = self.queue.pop()
            if item is None:
                break
            self.file_size[w], self.file_done[w] = item
            self.attempts[w] = self.queue.last_attempts
            self.has_file[w] = True
            assigned = True
        if assigned:
            self._notify_demand_change()

    def per_file_gap(self) -> float:
        """Pause between consecutive files of one worker.

        Control-channel round trips are amortised by pipelining; file
        open/create latency at both file systems is not.
        """
        control = CONTROL_RTTS_PER_FILE * self._path_rtt / self.params.pipelining
        return control + self.source.storage.open_latency + self.destination.storage.open_latency

    # -- status ---------------------------------------------------------------

    @property
    def active(self) -> bool:
        """True while the session still has work."""
        return self.finished_at is None

    @property
    def path_rtt(self) -> float:
        """End-to-end round-trip time of this session's path, seconds."""
        return self._path_rtt

    @property
    def instantaneous_rate(self) -> float:
        """Sum of current worker send rates, bps."""
        return float(self.rates.sum())

    def sending_mask(self) -> np.ndarray:
        """Workers currently transferring (have a file, no gap, no stall)."""
        return self.has_file & (self.gap_left <= 0.0) & (self.stall_left <= 0.0)

    # -- fluid step ------------------------------------------------------------

    def step(self, dt: float, targets: np.ndarray, loss_rate: float, now: float) -> None:
        """Advance worker state by ``dt`` given allocated rate targets.

        This is the standalone (per-session) path; when the session is
        attached to a batched executor the
        :class:`~repro.sim.batch.BatchStore` advances all sessions in
        one pass instead, using the same elementwise expressions and the
        same per-session reductions so outcomes are bit-identical (see
        ``tests/integration/test_batch_parity.py``).

        Parameters
        ----------
        targets:
            Per-worker allocated equilibrium rates from the executor.
        loss_rate:
            Packet-loss fraction on this session's path this step.
        now:
            Simulation time at the *start* of the step.
        """
        self.current_loss = loss_rate
        self.rates[:] = self.tcp.advance_rates(self.rates, targets, self._path_rtt, dt)

        # Consume injected stalls first (hung workers move nothing), then
        # gaps; remaining time per worker is what's left of dt.  The
        # stall branch is skipped entirely when no stall is outstanding
        # so the fault-free hot path stays bit-identical.
        if self.stall_left.any():
            stall_used = np.minimum(self.stall_left, dt)
            self.stall_left -= stall_used
            self.stalled_seconds += float(stall_used.sum())
            budget = dt - stall_used
            time_left = np.maximum(0.0, budget - self.gap_left)
            self.gap_left[:] = np.maximum(0.0, self.gap_left - budget)
        else:
            time_left = np.maximum(0.0, dt - self.gap_left)
            self.gap_left[:] = np.maximum(0.0, self.gap_left - dt)

        goodput_factor = 1.0 - loss_rate
        good_rate_Bps = self.rates * goodput_factor / 8.0

        good_total = 0.0
        # Workers that will actually move bytes this step (same guards
        # the per-worker advance applies individually).
        moving = np.flatnonzero(
            self.has_file & (time_left > 1e-12) & (good_rate_Bps > 1e-9)
        )
        if moving.size:
            need = self.file_size[moving] - self.file_done[moving]
            finishes = (need / good_rate_Bps[moving]) <= time_left[moving]
            # Streaming workers (the common case — no completion this
            # step) advance in one vectorized update; only workers whose
            # file actually finishes fall back to the per-worker cascade
            # (queue pops, inter-file gaps, possible exhaustion).
            streaming = moving[~finishes]
            moved = good_rate_Bps[streaming] * time_left[streaming]
            self.file_done[streaming] += moved
            good_total = float(moved.sum())
            if finishes.any():
                for w in moving[finishes].tolist():
                    good, _ = self._advance_worker(
                        w, time_left[w], good_rate_Bps[w], goodput_factor
                    )
                    good_total += good
        sent_total = good_total / goodput_factor if goodput_factor > 0 else good_total
        self._finish_step(good_total, sent_total, dt, now)

    def _finish_step(
        self,
        good_total: float,
        sent_total: float,
        dt: float,
        now: float,
        idle_workers: bool = True,
    ) -> None:
        """Per-step accounting shared by the standalone and batched paths.

        ``idle_workers`` lets the batched pass skip the assignment and
        completion scan for sessions whose workers all still hold a file
        (a no-op there, but one avoided numpy round trip per session per
        step at 256-session scale).
        """
        lost_total = sent_total - good_total
        self.monitor.record(good_total, sent_total, lost_total, dt)
        self.total_good_bytes += good_total
        self.total_lost_bytes += lost_total
        # Overhead accounting: every live worker is a process on both
        # end hosts for the duration of the step (the resource-cost
        # side of the paper's "minimal overhead" claim).
        self.process_seconds += 2 * self.rates.size * dt

        if not idle_workers:
            return
        self.assign_files()
        if self.queue.exhausted and not self.has_file.any() and self.finished_at is None:
            self.finished_at = now + dt
            tracer = current_tracer()
            if tracer is not None:
                tracer.emit(
                    SessionComplete,
                    t=self.finished_at,
                    session=self.name,
                    good_bytes=self.total_good_bytes,
                    lost_bytes=self.total_lost_bytes,
                    files=self.files_completed,
                )
                tracer.metrics.inc("sessions.completed")
            if self.on_complete is not None:
                self.on_complete(self)

    def _advance_worker(
        self, w: int, time_left: float, good_rate_Bps: float, goodput_factor: float
    ) -> tuple[float, float]:
        """Move one worker forward, cascading through file completions.

        Returns ``(good_bytes, sent_bytes)`` moved during the step.
        """
        if good_rate_Bps <= 1e-9:
            return 0.0, 0.0
        good = 0.0
        gap = self.per_file_gap()
        while time_left > 1e-12 and self.has_file[w]:
            need = self.file_size[w] - self.file_done[w]
            finish_time = need / good_rate_Bps
            if finish_time <= time_left:
                good += need
                self.file_done[w] = self.file_size[w]
                self.files_completed += 1
                time_left -= finish_time
                item = self.queue.pop()
                if item is None:
                    self.has_file[w] = False
                    self.file_size[w] = 0.0
                    self.file_done[w] = 0.0
                    self.attempts[w] = 0
                    self._notify_demand_change()
                    break
                self.file_size[w], self.file_done[w] = item
                self.attempts[w] = self.queue.last_attempts
                # The inter-file pause: spend it from this step's budget,
                # carry any remainder into gap_left for future steps.
                if gap >= time_left:
                    self.gap_left[w] += gap - time_left
                    time_left = 0.0
                else:
                    time_left -= gap
            else:
                moved = good_rate_Bps * time_left
                self.file_done[w] += moved
                good += moved
                time_left = 0.0
        sent = good / goodput_factor if goodput_factor > 0 else good
        return good, sent
