"""Unit helpers for rates, sizes, and times.

All internal simulation quantities use SI base units:

* data sizes in **bytes**
* data rates in **bits per second** (bps) — matching how the paper quotes
  throughput (Gbps) — with byte-rate helpers where I/O math is natural
* time in **seconds**

The constructors below exist so that configuration code reads like the
paper ("40 Gbps link", "1 GiB files", "30 ms RTT") instead of raw
exponents.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Data sizes (bytes).  Decimal (KB/MB/GB) and binary (KiB/MiB/GiB) forms.
# ---------------------------------------------------------------------------

KB = 10**3
MB = 10**6
GB = 10**9
TB = 10**12

KiB = 2**10
MiB = 2**20
GiB = 2**30
TiB = 2**40


def kilobytes(x: float) -> float:
    """Size in bytes of ``x`` decimal kilobytes."""
    return x * KB


def megabytes(x: float) -> float:
    """Size in bytes of ``x`` decimal megabytes."""
    return x * MB


def gigabytes(x: float) -> float:
    """Size in bytes of ``x`` decimal gigabytes."""
    return x * GB


def kibibytes(x: float) -> float:
    """Size in bytes of ``x`` binary kibibytes."""
    return x * KiB


def mebibytes(x: float) -> float:
    """Size in bytes of ``x`` binary mebibytes."""
    return x * MiB


def gibibytes(x: float) -> float:
    """Size in bytes of ``x`` binary gibibytes."""
    return x * GiB


# ---------------------------------------------------------------------------
# Data rates (bits per second).
# ---------------------------------------------------------------------------

BIT = 1
Kbps = 10**3
Mbps = 10**6
Gbps = 10**9


def kbps(x: float) -> float:
    """Rate in bps of ``x`` kilobits per second."""
    return x * Kbps


def mbps(x: float) -> float:
    """Rate in bps of ``x`` megabits per second."""
    return x * Mbps


def gbps(x: float) -> float:
    """Rate in bps of ``x`` gigabits per second."""
    return x * Gbps


def bps_to_gbps(rate_bps: float) -> float:
    """Convert a bps rate to Gbps (for reporting)."""
    return rate_bps / Gbps


def bps_to_mbps(rate_bps: float) -> float:
    """Convert a bps rate to Mbps (for reporting)."""
    return rate_bps / Mbps


def bytes_per_second(rate_bps: float) -> float:
    """Byte rate equivalent of a bit rate."""
    return rate_bps / 8.0


def bits_per_second(rate_Bps: float) -> float:
    """Bit rate equivalent of a byte rate."""
    return rate_Bps * 8.0


# ---------------------------------------------------------------------------
# Time (seconds).
# ---------------------------------------------------------------------------


def milliseconds(x: float) -> float:
    """Seconds in ``x`` milliseconds."""
    return x * 1e-3


def microseconds(x: float) -> float:
    """Seconds in ``x`` microseconds."""
    return x * 1e-6


def minutes(x: float) -> float:
    """Seconds in ``x`` minutes."""
    return x * 60.0


def hours(x: float) -> float:
    """Seconds in ``x`` hours."""
    return x * 3600.0


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds (for reporting)."""
    return seconds * 1e3


def seconds_to_us(seconds: float) -> float:
    """Convert seconds to microseconds (for reporting)."""
    return seconds * 1e6


# ---------------------------------------------------------------------------
# Formatting helpers for report/bench output.
# ---------------------------------------------------------------------------

_RATE_STEPS = ((Gbps, "Gbps"), (Mbps, "Mbps"), (Kbps, "Kbps"))
_SIZE_STEPS = ((TiB, "TiB"), (GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB"))


def format_rate(rate_bps: float, precision: int = 2) -> str:
    """Human-readable bit rate, e.g. ``format_rate(2.5e9) == '2.50 Gbps'``."""
    for step, suffix in _RATE_STEPS:
        if abs(rate_bps) >= step:
            return f"{rate_bps / step:.{precision}f} {suffix}"
    return f"{rate_bps:.{precision}f} bps"


def format_size(size_bytes: float, precision: int = 2) -> str:
    """Human-readable byte size, e.g. ``format_size(2**30) == '1.00 GiB'``."""
    for step, suffix in _SIZE_STEPS:
        if abs(size_bytes) >= step:
            return f"{size_bytes / step:.{precision}f} {suffix}"
    return f"{size_bytes:.0f} B"


def format_duration(seconds: float) -> str:
    """Human-readable duration, e.g. ``format_duration(90) == '1m30s'``."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60:
        return f"{seconds:.1f}s"
    m, s = divmod(seconds, 60.0)
    if m < 60:
        return f"{int(m)}m{s:.0f}s"
    h, m = divmod(m, 60.0)
    return f"{int(h)}h{int(m)}m{s:.0f}s"
