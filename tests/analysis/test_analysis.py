"""Fairness, convergence, table, and trace tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.analysis.convergence import (
    convergence_time,
    steady_state,
    time_to_fraction_of_max,
)
from repro.analysis.fairness import jain_index, share_ratio
from repro.analysis.tables import format_table


class TestJainIndex:
    def test_perfect_fairness(self):
        assert jain_index(np.array([5.0, 5.0, 5.0])) == pytest.approx(1.0)

    def test_total_unfairness(self):
        assert jain_index(np.array([10.0, 0.0, 0.0, 0.0])) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_index(np.array([])) == 1.0
        assert jain_index(np.zeros(3)) == 1.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            jain_index(np.array([-1.0, 1.0]))

    @given(
        x=arrays(
            dtype=float,
            shape=st.integers(min_value=1, max_value=20),
            elements=st.floats(min_value=0.0, max_value=1e6),
        )
    )
    @settings(max_examples=100)
    def test_bounds(self, x):
        j = jain_index(x)
        assert 1.0 / x.size - 1e-9 <= j <= 1.0 + 1e-9

    @given(
        x=arrays(
            dtype=float,
            shape=st.integers(min_value=1, max_value=20),
            elements=st.floats(min_value=0.1, max_value=1e6),
        ),
        scale=st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=80)
    def test_scale_invariance(self, x, scale):
        assert jain_index(x) == pytest.approx(jain_index(x * scale), rel=1e-6)


class TestShareRatio:
    def test_equal(self):
        assert share_ratio(np.array([3.0, 3.0])) == pytest.approx(1.0)

    def test_ratio(self):
        assert share_ratio(np.array([2.0, 6.0])) == pytest.approx(3.0)

    def test_zero_share_is_inf(self):
        assert share_ratio(np.array([0.0, 1.0])) == float("inf")

    def test_all_zero_is_one(self):
        assert share_ratio(np.zeros(2)) == 1.0


class TestSteadyState:
    def test_tail_statistics(self):
        v = np.concatenate([np.zeros(70), np.full(30, 10.0)])
        mean, std = steady_state(v, tail_fraction=0.3)
        assert mean == pytest.approx(10.0)
        assert std == pytest.approx(0.0)

    def test_empty(self):
        assert steady_state(np.array([])) == (0.0, 0.0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            steady_state(np.array([1.0]), tail_fraction=0.0)


class TestConvergenceTime:
    def test_detects_settling_point(self):
        t = np.arange(20, dtype=float)
        v = np.concatenate([np.linspace(0, 10, 10), np.full(10, 10.0)])
        ct = convergence_time(t, v, target=10.0, tolerance=0.05)
        assert 7.0 <= ct <= 11.0

    def test_never_converges(self):
        t = np.arange(10, dtype=float)
        v = np.array([0, 100, 0, 100, 0, 100, 0, 100, 0, 100], dtype=float)
        assert convergence_time(t, v, target=50.0, tolerance=0.05) == float("inf")

    def test_requires_hold(self):
        t = np.arange(10, dtype=float)
        # A single lucky spike at t=1 must not count.
        v = np.array([0, 10, 0, 0, 0, 10, 10, 10, 10, 10], dtype=float)
        ct = convergence_time(t, v, target=10.0, tolerance=0.1, hold=3)
        assert ct >= 5.0

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            convergence_time(np.arange(3, dtype=float), np.zeros(4))

    def test_time_to_fraction(self):
        t = np.arange(5, dtype=float)
        v = np.array([1.0, 2.0, 5.0, 9.0, 10.0])
        assert time_to_fraction_of_max(t, v, 0.85) == pytest.approx(3.0)

    def test_time_to_fraction_empty(self):
        assert time_to_fraction_of_max(np.array([]), np.array([])) == float("inf")


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["A", "Boo"], [("x", 1), ("longer", 22)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")
        assert "longer" in lines[3]

    def test_column_widths_consistent(self):
        out = format_table(["col"], [("a",), ("bbb",)])
        lines = out.splitlines()
        assert len(set(len(line) for line in lines if line.strip())) <= 2
