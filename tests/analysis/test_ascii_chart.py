"""ASCII chart tests."""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_chart import _downsample, line_chart, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_ramp_is_monotone(self):
        s = sparkline(np.linspace(0, 1, 8))
        assert s == "▁▂▃▄▅▆▇█"

    def test_downsampled_to_width(self):
        s = sparkline(np.sin(np.linspace(0, 10, 1000)), width=40)
        assert len(s) == 40

    def test_short_series_kept(self):
        assert len(sparkline([1, 2, 3], width=40)) == 3


class TestLineChart:
    def test_empty(self):
        assert line_chart({}) == ""

    def test_contains_legend_and_axis(self):
        chart = line_chart({"gd": [1, 2, 3, 4]}, height=5, width=20, y_label="Gbps")
        assert "*=gd" in chart
        assert "[Gbps]" in chart
        assert "4" in chart  # max annotation

    def test_two_series_distinct_markers(self):
        chart = line_chart({"a": [1, 1, 1], "b": [2, 2, 2]}, height=4, width=10)
        assert "*" in chart and "+" in chart

    def test_row_count(self):
        chart = line_chart({"x": list(range(10))}, height=7, width=30)
        # height rows + axis line + legend line.
        assert len(chart.splitlines()) == 9

    def test_extremes_at_edges(self):
        chart = line_chart({"x": [0, 10]}, height=5, width=2)
        lines = chart.splitlines()
        assert lines[0].rstrip().endswith("*")  # max on the top row
        assert "*" in lines[4]  # min on the bottom row


class TestDownsample:
    def test_mean_preserved(self):
        v = np.ones(100)
        out = _downsample(v, 10)
        assert np.allclose(out, 1.0)
        assert out.size == 10

    def test_passthrough_when_short(self):
        v = np.arange(5.0)
        assert np.array_equal(_downsample(v, 10), v)
