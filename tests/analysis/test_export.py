"""Result-export tests."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.analysis.export import (
    records_to_csv,
    rows_to_csv,
    to_json,
    to_plain,
    write_csv,
    write_json,
)


@dataclasses.dataclass(frozen=True)
class Inner:
    value: float
    label: str


@dataclasses.dataclass(frozen=True)
class Outer:
    name: str
    inner: Inner
    series: np.ndarray
    table: dict


class TestToPlain:
    def test_dataclass_to_mapping(self):
        plain = to_plain(Inner(value=1.5, label="x"))
        assert plain == {"value": 1.5, "label": "x"}

    def test_nested(self):
        outer = Outer(
            name="o",
            inner=Inner(2.0, "y"),
            series=np.array([1.0, 2.0]),
            table={("a", "b"): 3},
        )
        plain = to_plain(outer)
        assert plain["inner"]["value"] == 2.0
        assert plain["series"] == [1.0, 2.0]
        assert plain["table"] == {"a/b": 3}

    def test_numpy_scalars(self):
        assert to_plain(np.float64(1.25)) == 1.25
        assert to_plain(np.int64(7)) == 7
        assert isinstance(to_plain(np.int64(7)), int)

    def test_non_finite(self):
        assert to_plain(float("inf")) == "inf"
        assert to_plain(float("-inf")) == "-inf"
        assert to_plain(float("nan")) is None

    def test_tuple_becomes_list(self):
        assert to_plain((1, 2)) == [1, 2]


class TestJson:
    def test_round_trips(self):
        outer = Outer("o", Inner(1.0, "z"), np.arange(3.0), {"k": 1})
        parsed = json.loads(to_json(outer))
        assert parsed["name"] == "o"
        assert parsed["series"] == [0.0, 1.0, 2.0]

    def test_write_json(self, tmp_path):
        path = tmp_path / "result.json"
        write_json(Inner(3.0, "file"), str(path))
        assert json.loads(path.read_text())["value"] == 3.0

    def test_experiment_result_serialises(self):
        """The real thing: a figure result goes straight to JSON."""
        from repro.experiments import table1_testbeds

        parsed = json.loads(to_json(table1_testbeds.run()))
        assert len(parsed["rows"]) == 4


class TestCsv:
    def test_rows_to_csv(self):
        text = rows_to_csv(["a", "b"], [(1, 2), (3, 4)])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2"

    def test_records_to_csv(self):
        records = [Inner(1.0, "x"), Inner(2.0, "y")]
        text = records_to_csv(records)
        lines = text.strip().splitlines()
        assert lines[0] == "value,label"
        assert lines[2] == "2.0,y"

    def test_records_validation(self):
        with pytest.raises(ValueError):
            records_to_csv([])
        with pytest.raises(TypeError):
            records_to_csv([{"not": "dataclass"}])

    def test_nested_fields_json_encoded(self):
        @dataclasses.dataclass
        class WithDict:
            name: str
            data: dict

        text = records_to_csv([WithDict("n", {"k": 1})])
        assert '""k"": 1' in text or '"k": 1' in text

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv([Inner(1.0, "x")], str(path))
        assert path.read_text().startswith("value,label")
