"""Trace recorder tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.trace import SessionTrace, TraceRecorder
from repro.sim.engine import SimulationEngine
from repro.testbeds.presets import emulab_fig4, stampede2_comet
from repro.transfer.dataset import small_dataset, uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.transfer.session import TransferParams
from repro.units import GiB


class TestSessionTrace:
    def test_window(self):
        trace = SessionTrace(name="t")
        for i in range(10):
            trace.times.append(float(i))
            trace.throughput_bps.append(float(i) * 10)
            trace.concurrency.append(i)
            trace.parallelism.append(1)
            trace.loss_rate.append(0.0)
        w = trace.window(3.0, 6.0)
        assert w.times == [3.0, 4.0, 5.0]
        assert w.mean_throughput() == pytest.approx(40.0)

    def test_empty_mean(self):
        assert SessionTrace(name="t").mean_throughput() == 0.0

    def test_array_accessors(self):
        trace = SessionTrace(name="t")
        trace.times.append(1.0)
        trace.throughput_bps.append(5.0)
        trace.concurrency.append(3)
        trace.loss_rate.append(0.1)
        assert trace.timestamps().tolist() == [1.0]
        assert trace.throughputs().tolist() == [5.0]
        assert trace.concurrencies().tolist() == [3.0]
        assert trace.losses().tolist() == [0.1]


class TestRecorder:
    def test_samples_once_per_period(self):
        tb = emulab_fig4()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        rec = TraceRecorder(engine, period=1.0)
        s = tb.new_session(uniform_dataset(50), params=TransferParams(concurrency=5), repeat=True)
        rec.watch(s)
        net.add_session(s)
        engine.run_for(10.5)
        assert len(rec[s.name].times) == 10

    def test_goodput_matches_monitor(self):
        tb = emulab_fig4()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        rec = TraceRecorder(engine, period=1.0)
        s = tb.new_session(uniform_dataset(50), params=TransferParams(concurrency=10), repeat=True)
        rec.watch(s)
        net.add_session(s)
        engine.run_for(30.0)
        monitor_rate = s.monitor.take(concurrency=10).throughput_bps
        trace_rate = np.mean(rec[s.name].throughput_bps[10:])
        # The monitor measures the tail of the window; compare loosely.
        assert trace_rate == pytest.approx(monitor_rate, rel=0.15)

    def test_goodput_reflects_small_file_gaps(self):
        """The regression this guards: traces must report goodput, not
        the sum of warm TCP windows, for gap-dominated workloads."""
        tb = stampede2_comet()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        rec = TraceRecorder(engine, period=1.0)
        s = tb.new_session(
            small_dataset(total_bytes=1 * GiB, seed=0),
            params=TransferParams(concurrency=10, pipelining=1),
            repeat=True,
        )
        rec.watch(s)
        net.add_session(s)
        engine.run_for(30.0)
        trace_rate = np.mean(rec[s.name].throughput_bps[10:])
        # Workers are stalled on control RTTs most of the time; goodput
        # is far below the 18 Gbps the warm windows would suggest.
        assert trace_rate < 5e9

    def test_duplicate_watch_rejected(self):
        engine = SimulationEngine(dt=0.1)
        rec = TraceRecorder(engine)
        tb = emulab_fig4()
        s = tb.new_session(uniform_dataset(5), repeat=True)
        rec.watch(s)
        with pytest.raises(ValueError):
            rec.watch(s)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            TraceRecorder(SimulationEngine(dt=0.1), period=0.0)

    def test_inactive_sessions_not_sampled(self):
        tb = emulab_fig4()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        rec = TraceRecorder(engine, period=1.0)
        from repro.units import MB

        s = tb.new_session(uniform_dataset(2, 1 * MB), params=TransferParams(concurrency=2))
        rec.watch(s)
        net.add_session(s)
        engine.run_for(60.0)
        n_samples = len(rec[s.name].times)
        engine.run_for(10.0)
        assert len(rec[s.name].times) == n_samples
