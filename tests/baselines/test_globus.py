"""Globus heuristic tests."""

from __future__ import annotations


from repro.baselines.globus import GlobusController, globus_params
from repro.core.controller import attach_agent
from repro.sim.engine import SimulationEngine
from repro.testbeds.presets import hpclab
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.units import GB, Gbps, KiB, MiB


class TestHeuristic:
    def test_small_files_get_pipelining(self):
        params = globus_params(uniform_dataset(1000, 4 * MiB))
        assert params.pipelining == 20
        assert params.concurrency == 2

    def test_medium_files(self):
        params = globus_params(uniform_dataset(100, 100 * MiB))
        assert (params.concurrency, params.parallelism, params.pipelining) == (2, 4, 5)

    def test_large_files_get_parallelism(self):
        params = globus_params(uniform_dataset(1000, 1 * GB))
        assert params.parallelism == 8
        assert params.pipelining == 1

    def test_tiny_files(self):
        params = globus_params(uniform_dataset(10000, 10 * KiB))
        assert params.pipelining == 20


class TestController:
    def test_fixed_for_whole_transfer(self):
        tb = hpclab()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        ds = uniform_dataset(100)
        session = tb.new_session(ds, repeat=True)
        net.add_session(session)
        controller = GlobusController(session=session, dataset=ds)
        attach_agent(engine, controller, interval=3.0)
        engine.run_for(1.0)
        initial = session.params
        engine.run_for(60.0)
        assert session.params == initial

    def test_underutilises_hpclab(self):
        """The paper's core critique: fixed settings leave capacity idle."""
        tb = hpclab()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        ds = uniform_dataset(100)
        session = tb.new_session(ds, repeat=True)
        net.add_session(session)
        controller = GlobusController(session=session, dataset=ds)
        attach_agent(engine, controller, interval=3.0)
        engine.run_for(60.0)
        throughput = controller.history[-1][1]
        assert throughput < 0.5 * tb.max_throughput()
        assert throughput > 5 * Gbps  # but not useless either

    def test_history_recorded(self):
        tb = hpclab()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        ds = uniform_dataset(100)
        session = tb.new_session(ds, repeat=True)
        net.add_session(session)
        controller = GlobusController(session=session, dataset=ds)
        attach_agent(engine, controller, interval=3.0)
        engine.run_for(10.0)
        assert len(controller.history) == 3
