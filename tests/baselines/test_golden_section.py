"""Golden Section Search baseline tests."""

from __future__ import annotations

import pytest

from repro.baselines.golden_section import INV_PHI, GoldenSectionSearch
from repro.core.optimizer import Observation
from repro.transfer.metrics import IntervalSample
from repro.transfer.session import TransferParams
from repro.units import Gbps


def obs(n: int, utility: float) -> Observation:
    return Observation(
        params=TransferParams(concurrency=n),
        utility=utility,
        sample=IntervalSample(
            duration=5.0, throughput_bps=max(utility, 0) * Gbps, loss_rate=0.0, concurrency=n
        ),
    )


def drive(gss, utility_fn, steps=60):
    n = gss.first_setting()
    visits = [n]
    for _ in range(steps):
        n = gss.update(obs(n, utility_fn(n)))
        visits.append(n)
    return visits


class TestGoldenSection:
    def test_golden_ratio_constant(self):
        assert INV_PHI == pytest.approx(0.618, abs=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            GoldenSectionSearch(tolerance=0)

    def test_first_probe_inside_bracket(self):
        gss = GoldenSectionSearch(lo=1, hi=64)
        assert 1 < gss.first_setting() < 64

    def test_finds_unimodal_peak(self):
        peak = 30
        gss = GoldenSectionSearch(lo=1, hi=64)
        drive(gss, lambda n: -abs(n - peak))
        assert gss.converged_setting is not None
        assert abs(gss.converged_setting - peak) <= 3

    def test_logarithmic_convergence(self):
        """Bracket of 63 collapses within ~10 shrink rounds (20 probes)."""
        gss = GoldenSectionSearch(lo=1, hi=64)
        n = gss.first_setting()
        for step in range(1, 40):
            n = gss.update(obs(n, -abs(n - 48.0)))
            if gss.converged_setting is not None:
                break
        assert step <= 22

    def test_frozen_after_convergence(self):
        """The related-work critique: GSS cannot adapt once converged."""
        gss = GoldenSectionSearch(lo=1, hi=64)
        drive(gss, lambda n: -abs(n - 20))
        frozen = gss.converged_setting
        # The landscape moves; GSS does not.
        visits = drive(gss, lambda n: -abs(n - 50), steps=10)
        assert set(visits) == {frozen}

    def test_stays_in_domain(self):
        gss = GoldenSectionSearch(lo=4, hi=16)
        visits = drive(gss, lambda n: float(n))
        assert all(4 <= v <= 16 for v in visits)

    def test_monotone_landscape_converges_high(self):
        gss = GoldenSectionSearch(lo=1, hi=64)
        drive(gss, lambda n: float(n))
        assert gss.converged_setting >= 55

    def test_reset(self):
        gss = GoldenSectionSearch(lo=1, hi=64)
        drive(gss, lambda n: -abs(n - 20))
        gss.reset()
        assert gss.converged_setting is None
