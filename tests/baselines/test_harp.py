"""HARP baseline tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.harp import (
    HarpController,
    HistoricalModel,
    choose_concurrency,
    fit_throughput_curve,
)
from repro.core.controller import attach_agent
from repro.sim.engine import SimulationEngine
from repro.testbeds.presets import campus_cluster, hpclab
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.units import Gbps


class TestHistoricalModel:
    def test_10g_lan_class_uses_history(self):
        model = HistoricalModel()
        assert model.ceiling(10 * Gbps, rtt=1e-4) == 9.5 * Gbps

    def test_10g_wan_class_lower(self):
        model = HistoricalModel()
        assert model.ceiling(10 * Gbps, rtt=0.04) == 5.2 * Gbps

    def test_fast_network_extrapolated(self):
        model = HistoricalModel()
        assert model.ceiling(40 * Gbps, rtt=1e-4) == pytest.approx(0.5 * 40 * Gbps)
        assert model.ceiling(40 * Gbps, rtt=0.06) == pytest.approx(0.35 * 40 * Gbps)

    def test_ceiling_never_exceeds_capacity_in_class(self):
        model = HistoricalModel()
        assert model.ceiling(5 * Gbps, rtt=1e-4) <= 5 * Gbps


class TestCurveFit:
    def test_fits_saturating_data(self):
        c = np.array([2.0, 4.0, 8.0])
        t = 10e9 * c / (3.0 + c)
        t_sat, h = fit_throughput_curve(c, t)
        assert t_sat == pytest.approx(10e9, rel=0.15)
        assert h == pytest.approx(3.0, rel=0.3)

    def test_linear_data_extrapolates_boundedly(self):
        c = np.array([2.0, 4.0, 8.0])
        t = 1e9 * c  # no saturation visible
        t_sat, _ = fit_throughput_curve(c, t)
        assert t_sat <= 2.0 * 8e9  # bounded at 2x best observation

    def test_zero_throughput(self):
        t_sat, h = fit_throughput_curve(np.array([2.0]), np.array([0.0]))
        assert t_sat == 0.0


class TestChooseConcurrency:
    def test_reaches_target(self):
        cc = choose_concurrency(t_sat=10e9, h=3.0, ceiling_bps=8e9)
        predicted = 10e9 * cc / (3.0 + cc)
        assert predicted >= 0.95 * 8e9

    def test_minimal(self):
        cc = choose_concurrency(t_sat=10e9, h=3.0, ceiling_bps=8e9)
        below = 10e9 * (cc - 1) / (3.0 + cc - 1)
        assert below < 0.95 * 8e9

    def test_unreachable_target_returns_max(self):
        assert choose_concurrency(t_sat=1e9, h=100.0, ceiling_bps=50e9, cc_max=32) == 32

    def test_zero_target(self):
        assert choose_concurrency(t_sat=0.0, h=1.0, ceiling_bps=0.0) == 1


def run_harp(tb, start_time=0.0, duration=150.0, rig=None):
    if rig is None:
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
    else:
        engine, net = rig
    session = tb.new_session(uniform_dataset(200), repeat=True)
    controller = HarpController(session=session)
    if start_time == 0.0:
        net.add_session(session)
    else:
        engine.schedule_at(start_time, lambda: net.add_session(session))
    attach_agent(engine, controller, interval=tb.sample_interval, start_time=start_time)
    if rig is None:
        engine.run_for(duration)
    return controller, session, (engine, net)


class TestControllerBehaviour:
    def test_probes_then_fixes(self):
        controller, session, _ = run_harp(hpclab())
        assert controller.chosen_concurrency is not None
        probed = [cc for _, cc, _ in controller.history[:3]]
        assert probed == list(controller.probe_ladder)

    def test_setting_stable_after_probing(self):
        controller, session, _ = run_harp(hpclab())
        late = {cc for _, cc, _ in controller.history[4:]}
        assert late == {controller.chosen_concurrency}

    def test_underperforms_on_40g_lan(self):
        """History trained at 10G caps HARP's ambition on HPCLab."""
        controller, session, _ = run_harp(hpclab())
        tail = np.mean([t for _, _, t in controller.history[-10:]])
        assert tail < 0.8 * hpclab().max_throughput()

    def test_competitive_on_10g_lan(self):
        """Campus Cluster matches the training class: HARP does fine."""
        controller, session, _ = run_harp(campus_cluster())
        tail = np.mean([t for _, _, t in controller.history[-10:]])
        assert tail > 0.85 * campus_cluster().max_throughput()

    def test_late_comer_picks_higher_concurrency(self):
        """Fig. 2b: contended probes inflate the regression's optimum."""
        tb = hpclab()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        first, _, rig = run_harp(tb, rig=(engine, net))
        second, _, _ = run_harp(tb, start_time=60.0, rig=rig)
        engine.run_for(200.0)
        assert second.chosen_concurrency > first.chosen_concurrency
