"""PCP baseline tests."""

from __future__ import annotations

import numpy as np

from repro.baselines.pcp import PcpController
from repro.core.controller import attach_agent
from repro.core.hill_climbing import HillClimbing
from repro.core.utility import ThroughputUtility
from repro.sim.engine import SimulationEngine
from repro.testbeds.presets import emulab_fig4
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.units import Mbps


def make_pcp(duration=400.0):
    tb = emulab_fig4()
    engine = SimulationEngine(dt=0.1)
    net = FluidTransferNetwork(engine)
    session = tb.new_session(uniform_dataset(100), repeat=True)
    net.add_session(session)
    controller = PcpController(session=session, rng=np.random.default_rng(0))
    attach_agent(engine, controller, interval=5.0)
    engine.run_for(duration)
    return controller


class TestPcp:
    def test_is_hill_climbing_on_throughput(self):
        controller = make_pcp(duration=10.0)
        assert isinstance(controller.optimizer, HillClimbing)
        assert isinstance(controller.utility, ThroughputUtility)

    def test_finds_throughput_but_ignores_loss(self):
        """PCP reaches high throughput but with no pressure to back off
        past saturation — its steady concurrency sits above Falcon's."""
        controller = make_pcp()
        tail_cc = controller.concurrencies()[-20:]
        tail_tp = controller.throughputs()[-20:]
        assert tail_tp.mean() > 85 * Mbps
        # No regret: the walk drifts past the just-enough point of 10.
        assert tail_cc.mean() > 10.0

    def test_slow_convergence(self):
        """±1 steps: still climbing after 20 intervals from cc=1."""
        controller = make_pcp(duration=100.0)
        assert controller.concurrencies().max() <= 21
