"""Stochastic-approximation baseline tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.stochastic_approx import StochasticApproximation
from repro.core.optimizer import Observation
from repro.transfer.metrics import IntervalSample
from repro.transfer.session import TransferParams
from repro.units import Gbps


def obs(n: int, utility: float) -> Observation:
    return Observation(
        params=TransferParams(concurrency=n),
        utility=utility,
        sample=IntervalSample(
            duration=5.0, throughput_bps=max(utility, 0) * Gbps, loss_rate=0.0, concurrency=n
        ),
    )


def drive(sa, utility_fn, steps, rng=None, noise=0.0):
    n = sa.first_setting()
    visits = [n]
    for _ in range(steps):
        u = utility_fn(n)
        if rng is not None and noise > 0:
            u *= 1.0 + rng.normal(0, noise)
        n = sa.update(obs(n, u))
        visits.append(n)
    return visits


class TestStochasticApproximation:
    def test_validation(self):
        with pytest.raises(ValueError):
            StochasticApproximation(a0=0.0)
        with pytest.raises(ValueError):
            StochasticApproximation(alpha=0.4)

    def test_gain_sequence_decays(self):
        sa = StochasticApproximation()
        gains = []
        for k in range(5):
            sa._k = k
            gains.append(sa._a_k())
        assert gains == sorted(gains, reverse=True)

    def test_probe_offset_decays_but_stays_integral(self):
        sa = StochasticApproximation(c0=4.0, gamma=0.5)
        sa._k = 0
        assert sa._c_k() == 4
        sa._k = 1000
        assert sa._c_k() == 1

    def test_climbs_toward_optimum(self):
        sa = StochasticApproximation(lo=1, hi=64, start=4)
        drive(sa, lambda n: min(n, 48.0) / 1.02**0, steps=120)
        assert sa.iterate > 20

    def test_converges_under_noise_but_slowly(self):
        """The ProbData critique: asymptotically sound, practically slow."""
        rng = np.random.default_rng(0)
        landscape = lambda n: -((n - 40.0) ** 2)
        fast = StochasticApproximation(lo=1, hi=64, start=4)
        drive(fast, landscape, steps=40, rng=rng, noise=0.02)
        mid_progress = fast.iterate
        drive(fast, landscape, steps=160, rng=rng, noise=0.02)
        late_progress = fast.iterate
        # Still moving toward 40, but the marginal progress collapses.
        assert late_progress >= mid_progress - 5
        assert abs(late_progress - 40) < abs(4 - 40)

    def test_cannot_readapt_after_gains_decay(self):
        sa = StochasticApproximation(lo=1, hi=64, start=4)
        drive(sa, lambda n: -abs(n - 20.0), steps=200)
        settled = sa.iterate
        drive(sa, lambda n: -abs(n - 50.0), steps=60)
        # With gains ~a0/200, sixty more probes barely move the iterate.
        assert abs(sa.iterate - settled) < 8

    def test_stays_in_domain(self):
        sa = StochasticApproximation(lo=2, hi=10, start=5)
        visits = drive(sa, lambda n: float(n), steps=80)
        assert all(2 <= v <= 10 for v in visits)

    def test_reset(self):
        sa = StochasticApproximation()
        drive(sa, lambda n: float(n), steps=10)
        sa.reset()
        assert sa.step_count == 0
