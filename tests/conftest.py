"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.engine import SimulationEngine
from repro.transfer.executor import FluidTransferNetwork


@pytest.fixture
def engine() -> SimulationEngine:
    """A fresh simulation engine with the default step."""
    return SimulationEngine(dt=0.1)


@pytest.fixture
def network(engine: SimulationEngine) -> FluidTransferNetwork:
    """A fluid executor bound to the fresh engine."""
    return FluidTransferNetwork(engine)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests that need randomness."""
    return np.random.default_rng(12345)
