"""Falcon agent and controller-scheduling tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.agent import FalconAgent
from repro.core.controller import attach_agent
from repro.core.gradient_descent import GradientDescent
from repro.core.hill_climbing import HillClimbing
from repro.sim.engine import SimulationEngine
from repro.testbeds.presets import emulab_fig4, hpclab
from repro.transfer.dataset import uniform_dataset
from repro.transfer.executor import FluidTransferNetwork
from repro.units import MB, Mbps


def make_rig(tb=None, optimizer=None, dataset=None, interval=3.0):
    tb = tb or emulab_fig4()
    engine = SimulationEngine(dt=0.1)
    net = FluidTransferNetwork(engine)
    session = tb.new_session(dataset or uniform_dataset(100), repeat=dataset is None)
    net.add_session(session)
    agent = FalconAgent(
        session=session,
        optimizer=optimizer or GradientDescent(hi=32),
        rng=np.random.default_rng(0),
    )
    attach_agent(engine, agent, interval=interval)
    return engine, net, session, agent


class TestAgentLoop:
    def test_start_applies_first_setting(self):
        engine, _, session, agent = make_rig(optimizer=HillClimbing(hi=32, start=5))
        engine.run_for(0.5)
        assert session.params.concurrency == 5

    def test_decisions_once_per_interval(self):
        engine, _, _, agent = make_rig(interval=3.0)
        engine.run_for(30.5)
        assert len(agent.history) == 10

    def test_history_records_measurements(self):
        engine, _, _, agent = make_rig()
        engine.run_for(20.0)
        record = agent.history[-1]
        assert record.throughput_bps > 0
        assert record.params.concurrency >= 1
        assert np.isfinite(record.utility)

    def test_setting_changes_apply_to_session(self):
        engine, _, session, agent = make_rig()
        engine.run_for(30.0)
        assert session.params == agent.history[-1].next_params

    def test_accessors_align(self):
        engine, _, _, agent = make_rig()
        engine.run_for(15.0)
        k = len(agent.history)
        assert agent.utilities().shape == (k,)
        assert agent.concurrencies().shape == (k,)
        assert agent.throughputs().shape == (k,)
        assert agent.times().shape == (k,)

    def test_decisions_stop_when_session_finishes(self):
        # A tiny dataset completes quickly; the periodic event must stop.
        engine, _, session, agent = make_rig(dataset=uniform_dataset(3, 1 * MB))
        engine.run_for(60.0)
        assert not session.active
        decisions_at_end = len(agent.history)
        engine.run_for(30.0)
        assert len(agent.history) == decisions_at_end


class TestAgentOptimisation:
    def test_gd_agent_converges_on_emulab(self):
        engine, _, _, agent = make_rig(interval=5.0)
        engine.run_for(300.0)
        tail = agent.concurrencies()[-10:]
        assert 7 <= tail.mean() <= 13  # optimum is 10

    def test_agent_near_max_throughput(self):
        engine, _, _, agent = make_rig(interval=5.0)
        engine.run_for(300.0)
        tail = agent.throughputs()[-10:]
        assert tail.mean() >= 80 * Mbps

    def test_hpclab_agent(self):
        engine, _, _, agent = make_rig(tb=hpclab(), interval=3.0)
        engine.run_for(200.0)
        tail = agent.concurrencies()[-10:]
        assert 7 <= tail.mean() <= 12  # optimum is 9


class TestAttachAgent:
    def test_delayed_start(self):
        tb = emulab_fig4()
        engine = SimulationEngine(dt=0.1)
        net = FluidTransferNetwork(engine)
        session = tb.new_session(uniform_dataset(100), repeat=True)
        agent = FalconAgent(
            session=session, optimizer=HillClimbing(hi=32, start=7), rng=np.random.default_rng(0)
        )
        engine.schedule_at(10.0, lambda: net.add_session(session))
        attach_agent(engine, agent, interval=3.0, start_time=10.0)
        engine.run_for(9.0)
        assert len(agent.history) == 0
        engine.run_for(20.0)
        assert len(agent.history) > 0

    def test_invalid_interval(self):
        engine = SimulationEngine(dt=0.1)
        with pytest.raises(ValueError):
            attach_agent(engine, object(), interval=0.0)  # type: ignore[arg-type]
