"""Conjugate-gradient multi-parameter optimizer tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.conjugate_gradient import ConjugateGradientOptimizer
from repro.core.optimizer import Observation
from repro.transfer.metrics import IntervalSample
from repro.transfer.session import TransferParams
from repro.units import Gbps


def obs(params: TransferParams, utility: float) -> Observation:
    return Observation(
        params=params,
        utility=utility,
        sample=IntervalSample(
            duration=5.0,
            throughput_bps=max(utility, 0) * Gbps,
            loss_rate=0.0,
            concurrency=params.concurrency,
            parallelism=params.parallelism,
            pipelining=params.pipelining,
        ),
    )


def drive(optimizer, utility_fn, steps=200):
    params = optimizer.first_setting()
    visits = [params]
    for _ in range(steps):
        params = optimizer.update(obs(params, utility_fn(params)))
        visits.append(params)
    return visits


def landscape(params: TransferParams) -> float:
    """Concave-ish utility peaking at (n=12, p=1, q=16)."""
    n, p, q = params.concurrency, params.parallelism, params.pipelining
    return (
        -((n - 12) / 12.0) ** 2
        - 0.5 * (p - 1) ** 2
        - (np.log2(q) - 4.0) ** 2 / 16.0
        + 3.0
    )


class TestValidation:
    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            ConjugateGradientOptimizer(concurrency_bounds=(0, 10))
        with pytest.raises(ValueError):
            ConjugateGradientOptimizer(parallelism_bounds=(5, 2))


class TestProbePlan:
    def test_cycle_has_six_probes(self):
        cg = ConjugateGradientOptimizer()
        params = cg.first_setting()
        center_before = cg.center
        for _ in range(5):
            params = cg.update(obs(params, 1.0))
        # After 6 observations the center moves (5 updates = 6th probe pending).
        assert cg.center == center_before
        cg.update(obs(params, 1.0))

    def test_probes_vary_one_dim_at_a_time(self):
        cg = ConjugateGradientOptimizer(
            start=TransferParams(concurrency=10, parallelism=4, pipelining=8)
        )
        center = cg.center
        probes = [cg.first_setting()]
        params = probes[0]
        for _ in range(5):
            params = cg.update(obs(params, 1.0))
            probes.append(params)
        for probe in probes:
            diffs = sum(
                getattr(probe, dim) != getattr(center, dim)
                for dim in ("concurrency", "parallelism", "pipelining")
            )
            assert diffs <= 1


class TestConvergence:
    def test_converges_to_multi_dim_optimum(self):
        cg = ConjugateGradientOptimizer(
            start=TransferParams(concurrency=2, parallelism=4, pipelining=2)
        )
        drive(cg, landscape, steps=300)
        final = cg.center
        assert abs(final.concurrency - 12) <= 4
        assert final.parallelism <= 2
        assert 8 <= final.pipelining <= 32

    def test_respects_bounds(self):
        cg = ConjugateGradientOptimizer(
            concurrency_bounds=(1, 8),
            parallelism_bounds=(1, 2),
            pipelining_bounds=(1, 4),
        )
        visits = drive(cg, lambda p: float(p.concurrency * p.parallelism), steps=120)
        for v in visits:
            assert 1 <= v.concurrency <= 8
            assert 1 <= v.parallelism <= 2
            assert 1 <= v.pipelining <= 4

    def test_slower_than_single_param_gd(self):
        """One CG move needs 6 probes vs GD's 2 — the paper's 3x factor."""
        cg = ConjugateGradientOptimizer()
        params = cg.first_setting()
        moves = 0
        for _ in range(30):
            before = cg.center
            params = cg.update(obs(params, landscape(params)))
            if cg.center != before:
                moves += 1
        assert moves <= 5  # at most one move per 6 observations

    def test_pipelining_searched_in_log_space(self):
        cg = ConjugateGradientOptimizer(
            start=TransferParams(concurrency=4, parallelism=1, pipelining=8)
        )
        probes = [cg.first_setting()]
        params = probes[0]
        for _ in range(5):
            params = cg.update(obs(params, 1.0))
            probes.append(params)
        qs = sorted({p.pipelining for p in probes})
        # ±1 in log2 space around 8 -> probes at 4 and 16, not 7 and 9.
        assert 4 in qs and 16 in qs
