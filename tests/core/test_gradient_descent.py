"""Gradient Descent optimizer tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gradient_descent import GradientDescent
from repro.core.optimizer import Observation
from repro.transfer.metrics import IntervalSample
from repro.transfer.session import TransferParams
from repro.units import Gbps


def obs(n: int, utility: float) -> Observation:
    return Observation(
        params=TransferParams(concurrency=n),
        utility=utility,
        sample=IntervalSample(
            duration=5.0, throughput_bps=max(utility, 0) * Gbps, loss_rate=0.0, concurrency=n
        ),
    )


def drive(optimizer, utility_fn, steps=120, rng=None, noise=0.0):
    n = optimizer.first_setting()
    visits = [n]
    for _ in range(steps):
        u = utility_fn(n)
        if rng is not None and noise > 0:
            u *= 1.0 + rng.normal(0, noise)
        n = optimizer.update(obs(n, u))
        visits.append(n)
    return visits


def falcon_landscape(n, optimum=48, per_worker=1.0, K=1.02):
    return min(n, optimum) * per_worker / K**n


class TestProbing:
    def test_first_setting_is_low_probe(self):
        gd = GradientDescent(lo=1, hi=64, start=10, epsilon=1)
        assert gd.first_setting() == 9

    def test_alternates_low_high(self):
        gd = GradientDescent(lo=1, hi=64, start=10, epsilon=1)
        n0 = gd.first_setting()
        n1 = gd.update(obs(n0, 1.0))
        assert n1 == 11  # high probe follows the low probe

    def test_adaptive_epsilon_grows_with_center(self):
        small = GradientDescent(lo=1, hi=64, start=4)
        large = GradientDescent(lo=1, hi=64, start=48)
        assert small._eps() == 1
        assert large._eps() == 3

    def test_fixed_epsilon_respected(self):
        gd = GradientDescent(lo=1, hi=64, start=48, epsilon=1)
        assert gd.first_setting() == 47

    def test_validation(self):
        with pytest.raises(ValueError):
            GradientDescent(epsilon=0)
        with pytest.raises(ValueError):
            GradientDescent(lo=5, hi=2)


class TestConvergence:
    def test_converges_to_distant_optimum_noiseless(self):
        gd = GradientDescent(lo=1, hi=64, start=2)
        drive(gd, falcon_landscape, steps=60)
        assert abs(gd.center - 48) <= 6

    def test_faster_than_hill_climbing(self):
        """GD reaches the neighbourhood of 48 in far fewer samples."""
        gd = GradientDescent(lo=1, hi=64, start=2)
        n = gd.first_setting()
        for step in range(1, 100):
            n = gd.update(obs(n, falcon_landscape(n)))
            if gd.center >= 40:
                break
        assert step < 25  # vs ~47 for hill climbing

    def test_converges_to_near_optimum(self):
        gd = GradientDescent(lo=1, hi=64, start=2)
        visits = drive(gd, lambda n: falcon_landscape(n, optimum=10), steps=60)
        tail = visits[-10:]
        assert 7 <= np.mean(tail) <= 13

    def test_probes_bounce_around_center_at_steady_state(self):
        gd = GradientDescent(lo=1, hi=64, start=10, epsilon=1)
        visits = drive(gd, lambda n: falcon_landscape(n, optimum=10), steps=80)
        tail = visits[-12:]
        assert set(tail) <= {8, 9, 10, 11, 12}

    def test_converges_under_noise(self):
        rng = np.random.default_rng(3)
        gd = GradientDescent(lo=1, hi=64, start=2)
        visits = drive(gd, falcon_landscape, steps=160, rng=rng, noise=0.02)
        assert np.mean(visits[-20:]) > 32

    def test_descends_from_above(self):
        gd = GradientDescent(lo=1, hi=64, start=60)
        visits = drive(gd, lambda n: falcon_landscape(n, optimum=10), steps=100)
        assert np.mean(visits[-10:]) < 20

    def test_stays_in_domain(self):
        gd = GradientDescent(lo=1, hi=16, start=2)
        visits = drive(gd, lambda n: float(n), steps=60)
        assert all(1 <= v <= 16 for v in visits)


class TestTheta:
    def test_theta_grows_on_consistent_sign(self):
        gd = GradientDescent(lo=1, hi=64, start=2)
        n = gd.first_setting()
        for _ in range(8):  # 4 full probe cycles on a rising slope
            n = gd.update(obs(n, float(n)))
        assert gd.theta > 1.0

    def test_theta_resets_on_flip(self):
        gd = GradientDescent(lo=1, hi=64, start=10, epsilon=1)
        # Rising cycle then falling cycle.
        n = gd.first_setting()
        n = gd.update(obs(n, 1.0))  # low u=1
        n = gd.update(obs(n, 2.0))  # high u=2 -> positive gradient
        n = gd.update(obs(n, 2.0))  # low u=2
        n = gd.update(obs(n, 1.0))  # high u=1 -> negative gradient
        assert gd.theta == 1.0

    def test_theta_capped(self):
        gd = GradientDescent(lo=1, hi=1024, start=2, theta_max=4.0)
        drive(gd, lambda n: float(n), steps=60)
        assert gd.theta <= 4.0

    def test_max_step_limits_single_move(self):
        gd = GradientDescent(lo=1, hi=1024, start=100, max_step=5.0, epsilon=1)
        n = gd.first_setting()
        n = gd.update(obs(n, 1.0))
        n = gd.update(obs(n, 100.0))  # enormous gradient
        assert abs(gd.center - 100) <= 5

    def test_reset_clears_state(self):
        gd = GradientDescent(lo=1, hi=64, start=2)
        drive(gd, lambda n: float(n), steps=10)
        gd.reset()
        assert gd.theta == 1.0
