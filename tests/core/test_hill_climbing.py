"""Hill Climbing optimizer tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.hill_climbing import HillClimbing
from repro.core.optimizer import Observation
from repro.transfer.metrics import IntervalSample
from repro.transfer.session import TransferParams
from repro.units import Gbps


def obs(n: int, utility: float) -> Observation:
    return Observation(
        params=TransferParams(concurrency=n),
        utility=utility,
        sample=IntervalSample(
            duration=5.0, throughput_bps=utility * Gbps, loss_rate=0.0, concurrency=n
        ),
    )


def drive(optimizer, utility_fn, steps=200):
    """Feed the optimizer a noiseless utility landscape; return visits."""
    n = optimizer.first_setting()
    visits = [n]
    for _ in range(steps):
        n = optimizer.update(obs(n, utility_fn(n)))
        visits.append(n)
    return visits


class TestBasics:
    def test_starts_at_minimum(self):
        assert HillClimbing(lo=1, hi=32).first_setting() == 1

    def test_custom_start(self):
        assert HillClimbing(lo=1, hi=32, start=5).first_setting() == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            HillClimbing(lo=0, hi=10)
        with pytest.raises(ValueError):
            HillClimbing(threshold=-0.1)


class TestClimbing:
    def test_climbs_monotone_slope(self):
        hc = HillClimbing(lo=1, hi=64)
        visits = drive(hc, lambda n: float(n), steps=70)
        assert max(visits) == 64

    def test_one_step_per_interval(self):
        hc = HillClimbing(lo=1, hi=64)
        visits = drive(hc, lambda n: float(n), steps=30)
        diffs = np.abs(np.diff(visits))
        assert np.all(diffs <= 1)

    def test_oscillates_around_peak(self):
        peak = 10
        hc = HillClimbing(lo=1, hi=64)
        visits = drive(hc, lambda n: -abs(n - peak), steps=120)
        tail = visits[-30:]
        assert min(tail) >= peak - 2
        assert max(tail) <= peak + 2

    def test_reverses_on_decline(self):
        hc = HillClimbing(lo=1, hi=64, start=20)
        visits = drive(hc, lambda n: -float(n), steps=30)
        assert visits[-1] < 10

    def test_threshold_parks_early(self):
        """With a 3% threshold the walker stalls where gains fade (the
        behaviour that motivated defaulting to 0)."""
        hc_strict = HillClimbing(lo=1, hi=64, threshold=0.03)
        visits = drive(hc_strict, lambda n: min(n, 48) / 1.02**n, steps=150)
        assert max(visits) < 40

    def test_bounces_at_domain_edges(self):
        hc = HillClimbing(lo=1, hi=5)
        visits = drive(hc, lambda n: float(n), steps=40)
        assert all(1 <= v <= 5 for v in visits)

    def test_keeps_exploring_at_peak(self):
        """The paper requires continuous search even after convergence."""
        hc = HillClimbing(lo=1, hi=64)
        visits = drive(hc, lambda n: -abs(n - 8), steps=100)
        tail = visits[-20:]
        assert len(set(tail)) >= 2  # still moving, not frozen

    def test_reset(self):
        hc = HillClimbing(lo=1, hi=64, start=3)
        drive(hc, lambda n: float(n), steps=10)
        hc.reset()
        assert hc.first_setting() == 3


class TestConvergenceSpeed:
    def test_linear_time_to_distant_optimum(self):
        """Reaching n* requires ~n* observations — the Fig. 7 bottleneck."""
        hc = HillClimbing(lo=1, hi=64)
        target = 48
        landscape = lambda n: min(n, target) / 1.02**n
        n = hc.first_setting()
        for step in range(1, 200):
            n = hc.update(obs(n, landscape(n)))
            if n >= target:
                break
        assert step >= target - 5  # no shortcuts possible
