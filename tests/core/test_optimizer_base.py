"""Optimizer base-class and Observation tests."""

from __future__ import annotations

import pytest

from repro.core.gradient_descent import GradientDescent
from repro.core.optimizer import ConcurrencyOptimizer, Observation
from repro.transfer.metrics import IntervalSample
from repro.transfer.session import TransferParams


class TestDomainClamp:
    def test_clamp_rounds(self):
        opt = GradientDescent(lo=1, hi=10)
        assert opt.clamp(4.4) == 4
        assert opt.clamp(4.6) == 5

    def test_clamp_bounds(self):
        opt = GradientDescent(lo=2, hi=8)
        assert opt.clamp(-5) == 2
        assert opt.clamp(100) == 8

    def test_invalid_domain(self):
        with pytest.raises(ValueError):
            GradientDescent(lo=0, hi=5)
        with pytest.raises(ValueError):
            GradientDescent(lo=6, hi=5)


class TestObservation:
    def test_concurrency_accessor(self):
        obs = Observation(
            params=TransferParams(concurrency=7, parallelism=2),
            utility=1.0,
            sample=IntervalSample(
                duration=3.0, throughput_bps=1e9, loss_rate=0.0, concurrency=7
            ),
        )
        assert obs.concurrency == 7

    def test_frozen(self):
        obs = Observation(
            params=TransferParams(),
            utility=1.0,
            sample=IntervalSample(duration=1.0, throughput_bps=0, loss_rate=0, concurrency=1),
        )
        with pytest.raises(Exception):
            obs.utility = 2.0  # type: ignore[misc]


class TestAbstractContract:
    def test_cannot_instantiate_base(self):
        with pytest.raises(TypeError):
            ConcurrencyOptimizer(lo=1, hi=4)  # type: ignore[abstract]
