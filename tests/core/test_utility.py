"""Utility-function tests, including the §3.1 concavity proof."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.utility import (
    LinearPenaltyUtility,
    LossRegretUtility,
    MultiParamUtility,
    NonlinearPenaltyUtility,
    ThroughputUtility,
    concavity_limit,
    concurrency_regret_second_derivative,
    is_strictly_concave_at,
    utility_curve,
)
from repro.transfer.metrics import IntervalSample
from repro.units import Gbps


def sample(n=4, total_gbps=8.0, loss=0.0, p=1, q=1):
    return IntervalSample(
        duration=5.0,
        throughput_bps=total_gbps * Gbps,
        loss_rate=loss,
        concurrency=n,
        parallelism=p,
        pipelining=q,
    )


class TestThroughputUtility:
    def test_equals_total_throughput(self):
        assert ThroughputUtility()(sample(n=4, total_gbps=8.0)) == pytest.approx(8.0)

    def test_blind_to_loss(self):
        u = ThroughputUtility()
        assert u(sample(loss=0.0)) == u(sample(loss=0.2))


class TestLossRegret:
    def test_no_loss_equals_throughput(self):
        assert LossRegretUtility()(sample(total_gbps=8.0)) == pytest.approx(8.0)

    def test_b10_penalty(self):
        # 1% loss with B=10 removes 10% of the reward.
        u = LossRegretUtility(B=10.0)
        assert u(sample(total_gbps=8.0, loss=0.01)) == pytest.approx(8.0 * 0.9)

    def test_custom_b(self):
        u = LossRegretUtility(B=50.0)
        assert u(sample(total_gbps=8.0, loss=0.01)) == pytest.approx(8.0 * 0.5)


class TestLinearPenalty:
    def test_formula(self):
        # n=10, total 10G -> t=1; u = 10 - 0 - 10*10*0.02 = 8.
        u = LinearPenaltyUtility(B=10.0, C=0.02)
        assert u(sample(n=10, total_gbps=10.0)) == pytest.approx(8.0)

    def test_penalty_grows_quadratically(self):
        u = LinearPenaltyUtility(C=0.01)
        # Same total throughput at double concurrency -> lower utility.
        assert u(sample(n=20, total_gbps=10.0)) < u(sample(n=10, total_gbps=10.0))


class TestNonlinearPenalty:
    def test_formula(self):
        u = NonlinearPenaltyUtility(B=10.0, K=1.02)
        expected = 10.0 / 1.02**10
        assert u(sample(n=10, total_gbps=10.0)) == pytest.approx(expected)

    def test_loss_term(self):
        u = NonlinearPenaltyUtility(B=10.0, K=1.02)
        clean = u(sample(n=10, total_gbps=10.0, loss=0.0))
        lossy = u(sample(n=10, total_gbps=10.0, loss=0.01))
        assert lossy == pytest.approx(clean - 10.0 * 0.01 * 10.0)

    def test_k_must_exceed_one(self):
        with pytest.raises(ValueError):
            NonlinearPenaltyUtility(K=1.0)

    def test_requires_2pct_gain_per_worker(self):
        """u(n+1) > u(n) iff throughput gain beats ~K-1."""
        u = NonlinearPenaltyUtility(K=1.02)
        base = u(sample(n=10, total_gbps=10.0))
        assert u(sample(n=11, total_gbps=10.0 * 1.03)) > base  # 3% gain: worth it
        assert u(sample(n=11, total_gbps=10.0 * 1.01)) < base  # 1% gain: not worth it


class TestMultiParam:
    def test_p1_matches_nonlinear_reward(self):
        mp = MultiParamUtility()
        nl = NonlinearPenaltyUtility()
        assert mp(sample(n=10, total_gbps=10.0)) == pytest.approx(
            nl(sample(n=10, total_gbps=10.0))
        )

    def test_parallelism_penalised_via_total_streams(self):
        mp = MultiParamUtility(K=1.02)
        same_throughput_more_streams = mp(sample(n=10, total_gbps=10.0, p=4))
        fewer_streams = mp(sample(n=10, total_gbps=10.0, p=1))
        assert same_throughput_more_streams < fewer_streams

    def test_pipelining_free(self):
        mp = MultiParamUtility()
        assert mp(sample(q=1)) == mp(sample(q=64))

    def test_k_validation(self):
        with pytest.raises(ValueError):
            MultiParamUtility(K=0.99)


class TestConcavity:
    def test_limit_values_match_paper(self):
        # Paper: K=1.01 -> upper limit ~200; K=1.02 -> ~101.
        assert concavity_limit(1.01) == pytest.approx(200.0, rel=0.01)
        assert concavity_limit(1.02) == pytest.approx(101.0, rel=0.01)

    def test_limit_requires_k_above_one(self):
        with pytest.raises(ValueError):
            concavity_limit(1.0)

    def test_second_derivative_formula(self):
        # f''(n) = t K^-n ln K (-2 + n ln K), Eq. 5.
        n, t, K = 10.0, 2.0, 1.02
        expected = t * K**-n * math.log(K) * (-2 + n * math.log(K))
        assert concurrency_regret_second_derivative(n, t, K) == pytest.approx(expected)

    @given(
        n=st.floats(min_value=1.0, max_value=100.0),
        k=st.floats(min_value=1.005, max_value=1.1),
    )
    @settings(max_examples=200)
    def test_strictly_concave_inside_limit(self, n, k):
        if n < concavity_limit(k):
            assert is_strictly_concave_at(n, k)
        elif n > concavity_limit(k) * 1.0001:
            assert not is_strictly_concave_at(n, k)

    @given(k=st.floats(min_value=1.005, max_value=1.2))
    @settings(max_examples=100)
    def test_numeric_concavity_matches_analytic(self, k):
        """Finite-difference f'' agrees in sign with Eq. 5 inside the region."""
        limit = concavity_limit(k)
        n = limit / 2.0
        f = lambda x: x / k**x
        h = 1e-3
        numeric = (f(n + h) - 2 * f(n) + f(n - h)) / h**2
        assert numeric < 0

    @given(
        n=st.integers(min_value=1, max_value=90),
        rate=st.floats(min_value=0.1, max_value=40.0),
    )
    @settings(max_examples=150)
    def test_nonlinear_utility_concave_in_n_at_fixed_per_worker_rate(self, n, rate):
        """Discrete concavity of u(n) = n·r/K^n for n < 2/ln K."""
        u = NonlinearPenaltyUtility(K=1.02)

        def val(m):
            return u(sample(n=m, total_gbps=rate * m))

        if n + 2 < concavity_limit(1.02):
            assert val(n + 1) - val(n) >= val(n + 2) - val(n + 1) - 1e-12


class TestUtilityCurve:
    def test_matches_direct_eval(self):
        model = lambda n: (min(n, 10) * 1e9, 0.0)
        curve = utility_curve(NonlinearPenaltyUtility(), model, [1, 5, 10, 20])
        assert len(curve) == 4
        assert curve[1] > curve[0]  # rising region

    def test_peak_at_saturation(self):
        model = lambda n: (min(n, 10) * 1e9, 0.0)
        import numpy as np

        grid = list(range(1, 40))
        curve = utility_curve(NonlinearPenaltyUtility(), model, grid)
        assert grid[int(np.argmax(curve))] == 10
