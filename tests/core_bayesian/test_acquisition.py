"""Acquisition-function tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bayesian.acquisition import (
    expected_improvement,
    probability_of_improvement,
    upper_confidence_bound,
)


class TestExpectedImprovement:
    def test_non_negative(self):
        mean = np.array([-5.0, 0.0, 5.0])
        std = np.array([1.0, 1.0, 1.0])
        assert np.all(expected_improvement(mean, std, best=2.0) >= 0.0)

    def test_prefers_higher_mean_same_std(self):
        ei = expected_improvement(np.array([1.0, 3.0]), np.array([1.0, 1.0]), best=0.0)
        assert ei[1] > ei[0]

    def test_prefers_higher_std_same_mean(self):
        ei = expected_improvement(np.array([0.0, 0.0]), np.array([0.5, 2.0]), best=1.0)
        assert ei[1] > ei[0]

    def test_zero_std_no_improvement(self):
        ei = expected_improvement(np.array([1.0]), np.array([0.0]), best=2.0)
        assert ei[0] == pytest.approx(0.0, abs=1e-9)

    def test_large_lead_approaches_mean_gap(self):
        ei = expected_improvement(np.array([10.0]), np.array([0.1]), best=0.0, xi=0.0)
        assert ei[0] == pytest.approx(10.0, rel=0.01)


class TestProbabilityOfImprovement:
    def test_bounded_unit_interval(self):
        mean = np.linspace(-5, 5, 11)
        std = np.ones(11)
        pi = probability_of_improvement(mean, std, best=0.0)
        assert np.all((pi >= 0.0) & (pi <= 1.0))

    def test_half_at_incumbent(self):
        pi = probability_of_improvement(np.array([1.0]), np.array([1.0]), best=1.0, xi=0.0)
        assert pi[0] == pytest.approx(0.5)

    def test_monotone_in_mean(self):
        pi = probability_of_improvement(np.array([0.0, 1.0, 2.0]), np.ones(3), best=1.0)
        assert pi[0] < pi[1] < pi[2]


class TestUCB:
    def test_formula(self):
        ucb = upper_confidence_bound(np.array([1.0]), np.array([2.0]), kappa=2.0)
        assert ucb[0] == pytest.approx(5.0)

    def test_ignores_best(self):
        a = upper_confidence_bound(np.array([1.0]), np.array([1.0]), best=0.0)
        b = upper_confidence_bound(np.array([1.0]), np.array([1.0]), best=100.0)
        assert a[0] == b[0]

    def test_kappa_zero_is_pure_exploitation(self):
        ucb = upper_confidence_bound(np.array([3.0, 1.0]), np.array([0.1, 9.0]), kappa=0.0)
        assert int(np.argmax(ucb)) == 0
