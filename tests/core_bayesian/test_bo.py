"""Bayesian optimizer tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bayesian.optimizer import BayesianOptimizer
from repro.core.optimizer import Observation
from repro.transfer.metrics import IntervalSample
from repro.transfer.session import TransferParams
from repro.units import Gbps


def obs(n: int, utility: float) -> Observation:
    return Observation(
        params=TransferParams(concurrency=n),
        utility=utility,
        sample=IntervalSample(
            duration=5.0, throughput_bps=max(utility, 0) * Gbps, loss_rate=0.0, concurrency=n
        ),
    )


def drive(bo, utility_fn, steps, rng=None, noise=0.0):
    n = bo.first_setting()
    visits = [n]
    for _ in range(steps):
        u = utility_fn(n)
        if rng is not None and noise > 0:
            u *= 1.0 + rng.normal(0, noise)
        n = bo.update(obs(n, u))
        visits.append(n)
    return visits


def falcon_landscape(n, optimum=10, K=1.02):
    return min(n, optimum) / K**n


class TestBootstrap:
    def test_first_settings_random_in_domain(self):
        bo = BayesianOptimizer(lo=1, hi=32, rng=np.random.default_rng(0))
        assert 1 <= bo.first_setting() <= 32

    def test_three_random_samples_by_default(self):
        assert BayesianOptimizer(rng=np.random.default_rng(0)).random_samples == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(window=1)
        with pytest.raises(ValueError):
            BayesianOptimizer(random_samples=0)


class TestWindow:
    def test_history_capped_at_window(self):
        bo = BayesianOptimizer(lo=1, hi=16, window=5, rng=np.random.default_rng(0))
        drive(bo, lambda n: float(n), steps=20)
        assert len(bo.history) == 5

    def test_window_keeps_most_recent(self):
        bo = BayesianOptimizer(lo=1, hi=16, window=4, rng=np.random.default_rng(0))
        n = bo.first_setting()
        seen = []
        for i in range(10):
            seen.append((n, float(i)))
            n = bo.update(obs(n, float(i)))
        assert [u for _, u in bo.history] == [6.0, 7.0, 8.0, 9.0]


class TestConvergence:
    def test_concentrates_near_optimum(self):
        rng = np.random.default_rng(2)
        bo = BayesianOptimizer(lo=1, hi=32, rng=rng)
        visits = drive(bo, falcon_landscape, steps=50)
        tail = visits[-15:]
        assert 7 <= np.median(tail) <= 14

    def test_beats_random_search(self):
        """BO's tail utility should exceed uniform-random sampling's."""
        rng = np.random.default_rng(3)
        bo = BayesianOptimizer(lo=1, hi=32, rng=rng)
        visits = drive(bo, falcon_landscape, steps=40, rng=rng, noise=0.02)
        bo_tail = np.mean([falcon_landscape(v) for v in visits[-10:]])
        random_mean = np.mean([falcon_landscape(v) for v in rng.integers(1, 33, 200)])
        assert bo_tail > random_mean

    def test_respects_domain(self):
        rng = np.random.default_rng(4)
        bo = BayesianOptimizer(lo=3, hi=9, rng=rng)
        visits = drive(bo, falcon_landscape, steps=30)
        assert all(3 <= v <= 9 for v in visits)

    def test_still_explores_at_steady_state(self):
        """Windowed history forces periodic exploration (paper §3.2)."""
        rng = np.random.default_rng(5)
        bo = BayesianOptimizer(lo=1, hi=32, rng=rng)
        visits = drive(bo, falcon_landscape, steps=80)
        tail = visits[-30:]
        assert len(set(tail)) >= 3

    def test_adapts_after_shift(self):
        """When the optimum moves, the sliding window lets BO follow."""
        rng = np.random.default_rng(6)
        bo = BayesianOptimizer(lo=1, hi=32, window=15, rng=rng)
        n = bo.first_setting()
        for _ in range(40):
            n = bo.update(obs(n, falcon_landscape(n, optimum=6)))
        for _ in range(60):
            n = bo.update(obs(n, falcon_landscape(n, optimum=20)))
        # Should now be operating well above the old optimum.
        recent = [h[0] for h in bo.history[-8:]]
        assert np.median(recent) > 10

    def test_reset(self):
        rng = np.random.default_rng(7)
        bo = BayesianOptimizer(lo=1, hi=32, rng=rng)
        drive(bo, falcon_landscape, steps=10)
        bo.reset()
        assert bo.history == []
        assert bo.last_acquisition is None

    def test_acquisition_label_recorded(self):
        rng = np.random.default_rng(8)
        bo = BayesianOptimizer(lo=1, hi=32, rng=rng)
        drive(bo, falcon_landscape, steps=10)
        assert bo.last_acquisition in {"ei", "pi", "ucb"}
