"""Gaussian-process regression tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bayesian.gp import GaussianProcess
from repro.core.bayesian.kernels import RBFKernel


class TestBasics:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.array([[0.0]]))

    def test_fit_validation(self):
        gp = GaussianProcess()
        with pytest.raises(ValueError):
            gp.fit(np.array([[1.0], [2.0]]), np.array([1.0]))
        with pytest.raises(ValueError):
            gp.fit(np.zeros((0, 1)), np.zeros(0))

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            GaussianProcess(noise=-0.1)

    def test_n_observations(self):
        gp = GaussianProcess()
        assert gp.n_observations == 0
        gp.fit(np.array([1.0, 2.0, 3.0]), np.array([1.0, 2.0, 3.0]))
        assert gp.n_observations == 3


class TestPosterior:
    def test_interpolates_noise_free_data(self):
        x = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        y = np.sin(x)
        gp = GaussianProcess(noise=1e-4).fit(x, y)
        mean, _ = gp.predict(x[:, None])
        assert np.allclose(mean, y, atol=0.02)

    def test_uncertainty_grows_away_from_data(self):
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([0.0, 1.0, 0.0])
        gp = GaussianProcess(noise=0.05).fit(x, y)
        _, std_near = gp.predict(np.array([[1.0]]))
        _, std_far = gp.predict(np.array([[15.0]]))
        assert std_far[0] > std_near[0]

    def test_variance_non_negative(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 10, 15)
        y = rng.normal(size=15)
        gp = GaussianProcess(noise=0.1).fit(x, y)
        _, std = gp.predict(np.linspace(-5, 15, 60)[:, None])
        assert np.all(std >= 0.0)

    def test_far_field_reverts_to_mean(self):
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([5.0, 7.0, 6.0])
        gp = GaussianProcess(noise=0.05).fit(x, y)
        mean, _ = gp.predict(np.array([[100.0]]))
        assert mean[0] == pytest.approx(y.mean(), abs=0.5)

    def test_constant_targets_handled(self):
        # Zero variance targets must not divide by zero.
        x = np.array([0.0, 1.0, 2.0])
        y = np.full(3, 4.2)
        gp = GaussianProcess(noise=0.1).fit(x, y)
        mean, _ = gp.predict(np.array([[1.5]]))
        assert mean[0] == pytest.approx(4.2, abs=0.01)

    def test_smoothing_under_noise(self):
        rng = np.random.default_rng(2)
        x = np.linspace(0, 10, 40)
        truth = np.sin(x)
        y = truth + rng.normal(0, 0.2, size=40)
        gp = GaussianProcess(noise=0.2).fit(x, y)
        mean, _ = gp.predict(x[:, None])
        # Posterior mean should be closer to the truth than the data is.
        assert np.abs(mean - truth).mean() < np.abs(y - truth).mean()

    @given(seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_posterior_std_at_observations_bounded_by_noise_scale(self, seed):
        rng = np.random.default_rng(seed)
        x = np.sort(rng.uniform(0, 20, 10))
        y = rng.normal(size=10)
        gp = GaussianProcess(noise=0.1).fit(x, y)
        _, std = gp.predict(x[:, None])
        spread = y.std() or 1.0
        assert np.all(std <= spread * 1.5)


class TestHyperparameterFit:
    def test_mll_prefers_sensible_length_scale(self):
        # Smooth long-wavelength data should select a longer scale than
        # the shortest grid option.
        x = np.linspace(0, 10, 20)
        y = np.sin(x / 3.0)
        gp = GaussianProcess(noise=0.05)
        gp.fit(x, y, optimize=True)
        assert gp.kernel.length_scale > 0.5

    def test_optimize_false_keeps_kernel(self):
        kernel = RBFKernel(length_scale=7.7, variance=2.2)
        gp = GaussianProcess(kernel=kernel, noise=0.1)
        gp.fit(np.array([0.0, 1.0, 2.0]), np.array([1.0, 2.0, 3.0]), optimize=False)
        assert gp.kernel.length_scale == 7.7

    def test_two_points_skip_optimization(self):
        gp = GaussianProcess(noise=0.1)
        gp.fit(np.array([0.0, 1.0]), np.array([1.0, 2.0]))
        mean, _ = gp.predict(np.array([[0.5]]))
        assert 1.0 <= mean[0] <= 2.0
