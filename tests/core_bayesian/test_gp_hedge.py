"""GP-Hedge portfolio tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bayesian.gp_hedge import GPHedge


def flat_acq(value_index):
    """An acquisition that always nominates a fixed candidate index."""

    def acq(mean, std, best):
        scores = np.zeros_like(mean)
        scores[value_index] = 1.0
        return scores

    return acq


class TestSelection:
    def test_uniform_probabilities_initially(self):
        hedge = GPHedge(rng=np.random.default_rng(0))
        probs = hedge.probabilities()
        assert np.allclose(probs, 1.0 / 3.0)

    def test_propose_returns_candidate_value(self):
        hedge = GPHedge(rng=np.random.default_rng(0))
        candidates = np.array([1.0, 2.0, 3.0])
        mean = np.array([0.1, 0.5, 0.2])
        std = np.ones(3)
        value, name = hedge.propose(candidates, mean, std, best=0.4)
        assert value in candidates
        assert name in {"ei", "pi", "ucb"}

    def test_gains_shift_distribution(self):
        hedge = GPHedge(
            acquisitions=[("a", flat_acq(0)), ("b", flat_acq(1))],
            rng=np.random.default_rng(0),
            decay=1.0,
        )
        candidates = np.array([10.0, 20.0])
        for _ in range(5):
            hedge.propose(candidates, np.zeros(2), np.ones(2), best=0.0)
            # Arm "b" nominates candidate 20, which the posterior loves.
            hedge.reward(lambda v: 1.0 if v == 20.0 else -1.0)
        probs = hedge.probabilities()
        assert probs[1] > 0.9

    def test_winner_selected_more_often(self):
        rng = np.random.default_rng(1)
        hedge = GPHedge(
            acquisitions=[("a", flat_acq(0)), ("b", flat_acq(1))], rng=rng, decay=1.0
        )
        candidates = np.array([10.0, 20.0])
        picks = {"a": 0, "b": 0}
        for _ in range(60):
            _, name = hedge.propose(candidates, np.zeros(2), np.ones(2), best=0.0)
            picks[name] += 1
            hedge.reward(lambda v: 1.0 if v == 20.0 else 0.0)
        assert picks["b"] > picks["a"]


class TestRewarding:
    def test_all_arms_rewarded_not_just_selected(self):
        hedge = GPHedge(
            acquisitions=[("a", flat_acq(0)), ("b", flat_acq(1))],
            rng=np.random.default_rng(0),
            decay=1.0,
        )
        hedge.propose(np.array([1.0, 2.0]), np.zeros(2), np.ones(2), best=0.0)
        hedge.reward(lambda v: v)
        gains = hedge.gains
        assert gains["a"] == pytest.approx(1.0)
        assert gains["b"] == pytest.approx(2.0)

    def test_decay_forgets_old_gains(self):
        hedge = GPHedge(
            acquisitions=[("a", flat_acq(0))], rng=np.random.default_rng(0), decay=0.5
        )
        for _ in range(3):
            hedge.propose(np.array([1.0]), np.zeros(1), np.ones(1), best=0.0)
            hedge.reward(lambda v: 1.0)
        # 1*0.25 + 1*0.5 + 1 = 1.75 with decay 0.5.
        assert hedge.gains["a"] == pytest.approx(1.75)

    def test_reward_without_pending_is_noop(self):
        hedge = GPHedge(rng=np.random.default_rng(0))
        hedge.reward(lambda v: 100.0)
        assert all(g == 0.0 for g in hedge.gains.values())


class TestValidation:
    def test_empty_portfolio_rejected(self):
        with pytest.raises(ValueError):
            GPHedge(acquisitions=[])

    def test_bad_decay_rejected(self):
        with pytest.raises(ValueError):
            GPHedge(decay=0.0)
        with pytest.raises(ValueError):
            GPHedge(decay=1.5)
