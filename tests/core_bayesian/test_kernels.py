"""Kernel tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bayesian.kernels import Matern52Kernel, RBFKernel, _sqdist


class TestSqdist:
    def test_known_values(self):
        a = np.array([[0.0], [1.0]])
        b = np.array([[0.0], [2.0]])
        d = _sqdist(a, b)
        assert d[0, 0] == pytest.approx(0.0)
        assert d[1, 1] == pytest.approx(1.0)
        assert d[0, 1] == pytest.approx(4.0)

    def test_non_negative_despite_rounding(self):
        x = np.full((3, 1), 1e8)
        assert np.all(_sqdist(x, x) >= 0.0)


@pytest.mark.parametrize("kernel_cls", [RBFKernel, Matern52Kernel])
class TestKernelProperties:
    def test_diagonal_is_variance(self, kernel_cls):
        k = kernel_cls(length_scale=2.0, variance=3.0)
        x = np.array([[0.0], [1.0], [5.0]])
        assert np.allclose(np.diag(k(x, x)), 3.0)

    def test_symmetry(self, kernel_cls):
        k = kernel_cls()
        x = np.array([[0.0], [1.0], [2.5]])
        gram = k(x, x)
        assert np.allclose(gram, gram.T)

    def test_decays_with_distance(self, kernel_cls):
        k = kernel_cls(length_scale=1.0)
        x0 = np.array([[0.0]])
        near = k(x0, np.array([[0.5]]))[0, 0]
        far = k(x0, np.array([[5.0]]))[0, 0]
        assert near > far

    def test_psd(self, kernel_cls):
        k = kernel_cls(length_scale=1.5)
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 10, size=(12, 1))
        gram = k(x, x) + 1e-10 * np.eye(12)
        eigvals = np.linalg.eigvalsh(gram)
        assert np.all(eigvals > -1e-8)

    def test_validation(self, kernel_cls):
        with pytest.raises(ValueError):
            kernel_cls(length_scale=0.0)
        with pytest.raises(ValueError):
            kernel_cls(variance=-1.0)

    def test_with_params(self, kernel_cls):
        k = kernel_cls().with_params(length_scale=9.0, variance=4.0)
        assert k.length_scale == 9.0
        assert k.variance == 4.0

    @given(scale=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40)
    def test_longer_scale_means_higher_correlation(self, kernel_cls, scale):
        near = kernel_cls(length_scale=scale)(np.array([[0.0]]), np.array([[1.0]]))[0, 0]
        far = kernel_cls(length_scale=scale * 2)(np.array([[0.0]]), np.array([[1.0]]))[0, 0]
        assert far >= near


class TestKernelShapes:
    def test_rectangular_gram(self):
        k = RBFKernel()
        a = np.zeros((3, 1))
        b = np.zeros((5, 1))
        assert k(a, b).shape == (3, 5)

    def test_matern_rougher_than_rbf_mid_range(self):
        rbf = RBFKernel()(np.array([[0.0]]), np.array([[1.0]]))[0, 0]
        matern = Matern52Kernel()(np.array([[0.0]]), np.array([[1.0]]))[0, 0]
        # At one length scale the Matern correlation is lower than RBF's.
        assert matern < rbf + 1e-9
