"""Shared fixtures for the devtools (repro lint) test suite."""

from __future__ import annotations

from pathlib import Path

import pytest


@pytest.fixture(scope="session")
def repo_root() -> Path:
    """The repository checkout containing this test file."""
    return Path(__file__).resolve().parents[2]


@pytest.fixture(scope="session")
def package_root(repo_root: Path) -> Path:
    """``src/repro`` in the checkout (skip if running from an install)."""
    root = repo_root / "src" / "repro"
    if not root.is_dir():
        pytest.skip("source tree not available (installed package?)")
    return root
