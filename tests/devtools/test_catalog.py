"""The generated lint catalog (docs/lint.md) stays in sync with the registry."""

from __future__ import annotations

import pytest

from repro.devtools.catalog import main, render_catalog
from repro.devtools.framework import REGISTRY


def test_catalog_lists_every_check():
    rendered = render_catalog()
    for code, cls in REGISTRY.items():
        assert f"## {code} — {cls.name}" in rendered
        assert cls.description in rendered


def test_catalog_includes_examples():
    rendered = render_catalog()
    assert "session.rates = np.concatenate" in rendered  # F009 example_bad
    assert "derive_seed" in rendered  # F011 example_good


def test_committed_catalog_is_in_sync(repo_root, capsys):
    doc = repo_root / "docs" / "lint.md"
    if not doc.is_file():
        pytest.skip("docs/ not available (installed package?)")
    assert main(["--check", "--path", str(doc)]) == 0
    capsys.readouterr()


def test_catalog_check_detects_drift(tmp_path, capsys):
    stale = tmp_path / "lint.md"
    stale.write_text("# stale\n", encoding="utf-8")
    assert main(["--check", "--path", str(stale)]) == 1
    capsys.readouterr()


def test_catalog_write_then_check_roundtrip(tmp_path, capsys):
    doc = tmp_path / "lint.md"
    assert main(["--write", "--path", str(doc)]) == 0
    assert main(["--check", "--path", str(doc)]) == 0
    capsys.readouterr()
