"""Positive/negative fixtures for each invariant check (F001-F006)."""

from __future__ import annotations

import textwrap

from repro.devtools import LintConfig, lint_source

SIM = "repro/sim/example.py"
EXECUTOR = "repro/transfer/executor.py"


def run(src: str, path: str = SIM, config: LintConfig | None = None):
    return lint_source(textwrap.dedent(src), path=path, config=config)


def codes(src: str, path: str = SIM, config: LintConfig | None = None):
    return [f.code for f in run(src, path, config)]


# ---------------------------------------------------------------------------
# F001 — nondeterminism.
# ---------------------------------------------------------------------------


def test_f001_flags_random_import():
    assert codes("import random\n") == ["F001"]
    assert codes("from random import choice\n") == ["F001"]
    assert codes("import secrets\n") == ["F001"]


def test_f001_flags_wall_clocks():
    assert codes("import time\nt = time.time()\n") == ["F001"]
    assert codes("import time\nt = time.perf_counter()\n") == ["F001"]
    assert codes("import datetime\nd = datetime.datetime.now()\n") == ["F001"]


def test_f001_flags_entropy_sources():
    assert codes("import uuid\nu = uuid.uuid4()\n") == ["F001"]
    assert codes("import os\nb = os.urandom(8)\n") == ["F001"]


def test_f001_flags_unseeded_numpy():
    assert codes("import numpy as np\nrng = np.random.default_rng()\n") == ["F001"]
    assert codes("import numpy as np\nx = np.random.rand(3)\n") == ["F001"]


def test_f001_allows_seeded_numpy():
    # F001 is purely syntactic: any seed satisfies it.  Literal seeds are
    # F011's business (provenance), so isolate F001 here.
    only = LintConfig(select=("F001",))
    assert codes("import numpy as np\nrng = np.random.default_rng(42)\n", config=only) == []
    assert codes("import numpy as np\nrng = np.random.default_rng(seed=0)\n", config=only) == []
    assert codes("import numpy as np\nss = np.random.SeedSequence(7)\n", config=only) == []


def test_f001_ignores_local_names_shadowing_modules():
    # ``rng.random()`` on a Generator is fine — ``rng`` is not an import.
    assert codes("def f(rng):\n    return rng.random()\n") == []


def test_f001_ignores_os_functions_that_are_not_entropy():
    assert codes("import os\np = os.getpid()\n") == []


# ---------------------------------------------------------------------------
# F002 — unordered iteration.
# ---------------------------------------------------------------------------


def test_f002_flags_for_over_set_call():
    src = """
        def f(items):
            for x in set(items):
                print(x)
    """
    assert codes(src) == ["F002"]


def test_f002_flags_comprehension_over_set_expr():
    src = """
        def f(a, b):
            return [x for x in set(a) | set(b)]
    """
    assert codes(src) == ["F002"]


def test_f002_flags_set_pop_and_list_of_set():
    src = """
        def f(items):
            live = set(items)
            first = live.pop()
            rest = list(live)
            return first, rest
    """
    assert codes(src) == ["F002", "F002"]


def test_f002_allows_sorted_and_aggregates():
    src = """
        def f(items):
            live = set(items)
            for x in sorted(live):
                print(x)
            return len(live), sum(live), max(live)
    """
    assert codes(src) == []


def test_f002_poisoned_names_are_not_flagged():
    # ``live`` is reassigned to a list, so iteration over it is fine.
    src = """
        def f(items):
            live = set(items)
            live = sorted(live)
            for x in live:
                print(x)
    """
    assert codes(src) == []


def test_f002_list_pop_is_fine():
    src = """
        def f(queue):
            items = list(queue)
            return items.pop()
    """
    assert codes(src) == []


# ---------------------------------------------------------------------------
# F003 — float equality.
# ---------------------------------------------------------------------------


def test_f003_flags_float_literal_equality():
    assert codes("def f(x):\n    return x == 1.0\n") == ["F003"]
    assert codes("def f(x):\n    return x != -0.5\n") == ["F003"]


def test_f003_flags_division_results_and_float_casts():
    assert codes("def f(a, b, c):\n    return a / b == c\n") == ["F003"]
    assert codes("def f(x, y):\n    return float(x) == y\n") == ["F003"]


def test_f003_allows_integer_and_ordering_comparisons():
    assert codes("def f(n):\n    return n == 0\n") == []
    assert codes("def f(x):\n    return x >= 1.0\n") == []  # ordering is fine


def test_f003_suppressable_with_justification():
    src = (
        "def f(total, cap):\n"
        "    # repro: lint-ok[F003]: exact-zero guard on a sum of non-negatives\n"
        "    return total == 0.0 or total <= cap\n"
    )
    assert lint_source(src, path=SIM) == []


# ---------------------------------------------------------------------------
# F004 — unit hygiene.
# ---------------------------------------------------------------------------


def test_f004_flags_power_literals():
    assert codes("RATE = 10 * 10**9\n", path="repro/testbeds/x.py") == ["F004"]
    assert codes("BUF = 4 * 2**20\n", path="repro/testbeds/x.py") == ["F004"]


def test_f004_flags_magnitudes_in_arithmetic():
    assert codes("def f(rtt):\n    return rtt * 1e3\n") == ["F004"]
    assert codes("def f(b):\n    return b / 1e6\n") == ["F004"]


def test_f004_allows_units_module_itself():
    assert codes("Gbps = 10**9\nMB = 10**6\n", path="repro/units.py") == []


def test_f004_allows_tolerances_counts_and_hash_moduli():
    assert codes("EPS = 1e-9\n") == []
    assert codes("def f(n):\n    return n % 2**63\n") == []  # hashing modulus
    assert codes("STEPS = 1000\n") == []
    assert codes("CAP = 1e6\n") == []  # bare constant, not rate arithmetic


def test_f004_does_not_apply_outside_the_package():
    assert codes("x = 3 * 10**9\n", path="scripts/tool.py") == []


# ---------------------------------------------------------------------------
# F005 — topology-dirty discipline.
# ---------------------------------------------------------------------------


def test_f005_flags_unprotected_topology_write():
    src = """
        class Executor:
            def attach(self, session):
                self.sessions.append(session)
    """
    found = run(src, path=EXECUTOR)
    assert [f.code for f in found] == ["F005"]
    assert "sessions" in found[0].message


def test_f005_satisfied_by_dirty_flag_or_invalidator():
    src = """
        class Executor:
            def attach(self, session):
                self.sessions.append(session)
                self._dirty = True

            def set_tcp(self, tcp):
                self.tcp = tcp
                self.invalidate_topology()
    """
    assert codes(src, path=EXECUTOR) == []


def test_f005_constructors_are_exempt():
    src = """
        class Executor:
            def __init__(self):
                self.sessions = []
                self.tcp = None
    """
    assert codes(src, path=EXECUTOR) == []


def test_f005_nested_callback_is_its_own_accounting_unit():
    # The invalidation lives in the enclosing function; the *callback*
    # writes the field when it later fires, unprotected.
    src = """
        class Executor:
            def arm(self, session):
                def later():
                    self.sessions.remove(session)
                self._dirty = True
                return later
    """
    assert codes(src, path=EXECUTOR) == ["F005"]


def test_f005_only_in_topology_modules():
    src = """
        class Other:
            def attach(self, session):
                self.sessions.append(session)
    """
    assert codes(src, path=SIM) == []


def test_f005_unregistered_fields_are_free():
    src = """
        class Executor:
            def note(self, sample):
                self.samples.append(sample)
    """
    assert codes(src, path=EXECUTOR) == []


# ---------------------------------------------------------------------------
# F006 — engine-callback purity.
# ---------------------------------------------------------------------------


def test_f006_flags_callback_reentering_engine():
    src = """
        def cb():
            engine.run_for(1.0)

        engine.schedule_in(5.0, cb)
    """
    found = run(src)
    assert [f.code for f in found] == ["F006"]
    assert "run_for" in found[0].message


def test_f006_flags_lambda_actions_and_keyword_form():
    src = "engine.schedule_at(1.0, lambda: engine.run_until(9.0))\n"
    assert codes(src) == ["F006"]
    src = """
        def cb():
            engine.run_until(2.0)

        engine.schedule_every(1.0, action=cb)
    """
    assert codes(src) == ["F006"]


def test_f006_allows_stop_and_scheduling_from_callbacks():
    src = """
        def cb():
            engine.stop()
            engine.schedule_in(1.0, cb)

        engine.schedule_in(5.0, cb)
    """
    assert codes(src) == []


def test_f006_unscheduled_functions_may_drive_the_engine():
    src = """
        def main():
            engine.run_for(300.0)
    """
    assert codes(src) == []


# ---------------------------------------------------------------------------
# F007 — experiment-module state and task-callable hygiene.
# ---------------------------------------------------------------------------

EXPERIMENT = "repro/experiments/example.py"


def test_f007_flags_lowercase_mutable_module_bindings():
    assert codes("cache = {}\n", path=EXPERIMENT) == ["F007"]
    assert codes("results = []\n", path=EXPERIMENT) == ["F007"]
    assert codes("seen = set()\n", path=EXPERIMENT) == ["F007"]
    assert codes("pairs = [(n, 2 * n) for n in range(4)]\n", path=EXPERIMENT) == ["F007"]


def test_f007_flags_annotated_and_ctor_call_bindings():
    assert codes("memo: dict = dict()\n", path=EXPERIMENT) == ["F007"]
    src = """
        import collections

        counts = collections.defaultdict(int)
    """
    assert codes(src, path=EXPERIMENT) == ["F007"]


def test_f007_allows_all_caps_constants_and_immutables():
    assert codes("KINDS = ('hc', 'gd', 'bo')\n", path=EXPERIMENT) == []
    assert codes("NETWORKS = {'XSEDE': 1, 'HPCLab': 2}\n", path=EXPERIMENT) == []
    assert codes("threshold = 0.03\n", path=EXPERIMENT) == []


def test_f007_allows_function_local_mutables():
    src = """
        def run():
            rows = []
            rows.append(1)
            return rows
    """
    assert codes(src, path=EXPERIMENT) == []


def test_f007_flags_global_statements():
    src = """
        COUNT = 0

        def bump():
            global COUNT
            COUNT += 1
    """
    assert codes(src, path=EXPERIMENT) == ["F007"]


def test_f007_flags_lambda_task_callables():
    src = """
        from repro.runner import task

        SPEC = task(lambda x: x, x=1)
    """
    found = run(src, path=EXPERIMENT)
    assert [f.code for f in found] == ["F007"]
    assert "lambda" in found[0].message


def test_f007_flags_lambda_through_factory_alias_and_fn_kwarg():
    src = """
        from repro.runner import task as sim_task

        SPEC = sim_task(lambda: 1)
    """
    assert codes(src, path=EXPERIMENT) == ["F007"]
    src = """
        from repro.runner.task import SimTask

        SPEC = SimTask(fn=lambda: 1)
    """
    assert codes(src, path=EXPERIMENT) == ["F007"]


def test_f007_ignores_lambdas_outside_task_factories():
    src = """
        def run(xs):
            return sorted(xs, key=lambda x: -x)
    """
    assert codes(src, path=EXPERIMENT) == []


def test_f007_only_applies_inside_the_experiment_scope():
    assert codes("cache = {}\n", path="repro/analysis/report.py") == []


# ---------------------------------------------------------------------------
# F008 — docstrings with units in the observability scope.
# ---------------------------------------------------------------------------

OBS = "repro/obs/example.py"


def test_f008_flags_missing_docstring_on_public_function():
    assert codes("def emit(event):\n    return event\n", path=OBS) == ["F008"]


def test_f008_flags_missing_docstring_on_public_class_and_method():
    src = """
        class Tracer:
            def emit(self, event):
                return event
    """
    assert codes(src, path=OBS) == ["F008", "F008"]


def test_f008_flags_unitless_physical_parameter():
    src = '''
        def stall(worker, duration):
            """Freeze a worker for a while."""
    '''
    assert codes(src, path=OBS) == ["F008"]


def test_f008_satisfied_by_unit_word_or_suffix():
    src = '''
        def stall(worker, duration):
            """Freeze ``worker`` for ``duration`` seconds."""
    '''
    assert codes(src, path=OBS) == []
    src = '''
        def stall(worker, delay_s):
            """Freeze ``worker`` (delay carries its unit in the name)."""
    '''
    assert codes(src, path=OBS) == []


def test_f008_private_names_and_dunders_are_exempt():
    src = '''
        class Tracer:
            """Bus."""

            def __init__(self, duration):
                self.duration = duration

            def _emit(self, event):
                return event

        def _helper():
            pass
    '''
    assert codes(src, path=OBS) == []


def test_f008_only_applies_inside_the_docstring_scope():
    assert codes("def f(duration):\n    return duration\n", path="repro/sim/example.py") == []
