"""The ``repro lint`` CLI: exit codes, JSON output, selection flags."""

from __future__ import annotations

import json

from repro.cli import main
from repro.devtools.findings import Finding, render_human, render_json


def write_bad_module(tmp_path):
    """A module inside a virtual ``repro/sim`` tree with two violations."""
    target = tmp_path / "repro" / "sim"
    target.mkdir(parents=True)
    bad = target / "bad.py"
    bad.write_text("import random\nSCALE = 2 * 10**9\n", encoding="utf-8")
    return bad


def test_clean_tree_exits_zero(package_root, capsys):
    assert main(["lint", str(package_root)]) == 0
    assert "clean: no findings" in capsys.readouterr().out


def test_findings_exit_nonzero_with_location(tmp_path, capsys):
    bad = write_bad_module(tmp_path)
    assert main(["lint", str(bad), "--no-config"]) == 1
    out = capsys.readouterr().out
    assert f"{bad}:1:0: F001" in out
    assert "F004" in out


def test_json_output_is_parseable(tmp_path, capsys):
    bad = write_bad_module(tmp_path)
    assert main(["lint", str(bad), "--no-config", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 2
    assert [f["code"] for f in payload["findings"]] == ["F001", "F004"]
    assert payload["findings"][0]["line"] == 1


def test_json_output_clean_tree(package_root, capsys):
    assert main(["lint", str(package_root), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == {"count": 0, "findings": []}


def test_select_and_ignore_flags(tmp_path, capsys):
    bad = write_bad_module(tmp_path)
    assert main(["lint", str(bad), "--no-config", "--select", "F002"]) == 0
    assert main(["lint", str(bad), "--no-config", "--ignore", "F001,F004"]) == 0
    assert main(["lint", str(bad), "--no-config", "--select", "f001"]) == 1
    capsys.readouterr()


def test_list_checks(capsys):
    assert main(["lint", "--list-checks"]) == 0
    out = capsys.readouterr().out
    for code in ("F001", "F002", "F003", "F004", "F005", "F006"):
        assert code in out


def test_directory_linting_recurses(tmp_path, capsys):
    write_bad_module(tmp_path)
    assert main(["lint", str(tmp_path), "--no-config"]) == 1
    assert "bad.py" in capsys.readouterr().out


def test_renderers_round_trip():
    finding = Finding(code="F001", message="boom", path="repro/sim/x.py", line=3, col=4)
    assert finding.render() == "repro/sim/x.py:3:4: F001 boom"
    human = render_human([finding])
    assert "1 finding" in human
    payload = json.loads(render_json([finding]))
    assert payload["findings"][0] == {
        "code": "F001",
        "message": "boom",
        "path": "repro/sim/x.py",
        "line": 3,
        "col": 4,
    }


def test_sarif_output_file(tmp_path, capsys):
    bad = write_bad_module(tmp_path)
    sarif_path = tmp_path / "out.sarif"
    assert main(["lint", str(bad), "--no-config", "--sarif", str(sarif_path)]) == 1
    capsys.readouterr()
    log = json.loads(sarif_path.read_text(encoding="utf-8"))
    assert log["version"] == "2.1.0"
    run_obj = log["runs"][0]
    assert run_obj["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = [rule["id"] for rule in run_obj["tool"]["driver"]["rules"]]
    for code in ("F001", "F009", "F010", "F011", "F012"):
        assert code in rule_ids
    results = run_obj["results"]
    assert [r["ruleId"] for r in results] == ["F001", "F004"]
    assert results[0]["locations"][0]["physicalLocation"]["region"]["startLine"] == 1


def test_sarif_rules_carry_examples(tmp_path, capsys):
    bad = write_bad_module(tmp_path)
    sarif_path = tmp_path / "out.sarif"
    main(["lint", str(bad), "--no-config", "--sarif", str(sarif_path)])
    capsys.readouterr()
    log = json.loads(sarif_path.read_text(encoding="utf-8"))
    rules = {r["id"]: r for r in log["runs"][0]["tool"]["driver"]["rules"]}
    assert "Bad:" in rules["F009"]["help"]["text"]
    assert "Good:" in rules["F009"]["help"]["text"]


def test_sarif_is_deterministic(tmp_path, capsys):
    bad = write_bad_module(tmp_path)
    a, b = tmp_path / "a.sarif", tmp_path / "b.sarif"
    main(["lint", str(bad), "--no-config", "--sarif", str(a)])
    main(["lint", str(bad), "--no-config", "--sarif", str(b)])
    capsys.readouterr()
    assert a.read_text(encoding="utf-8") == b.read_text(encoding="utf-8")


def test_baseline_update_then_filter(tmp_path, capsys):
    bad = write_bad_module(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(bad), "--no-config", "--update-baseline", str(baseline)]) == 0
    assert "recorded 2 findings" in capsys.readouterr().out

    assert main(["lint", str(bad), "--no-config", "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "clean: no findings" in out
    assert "2 accepted findings hidden" in out


def test_baseline_fails_on_new_findings_only(tmp_path, capsys):
    bad = write_bad_module(tmp_path)
    baseline = tmp_path / "baseline.json"
    main(["lint", str(bad), "--no-config", "--update-baseline", str(baseline)])
    capsys.readouterr()

    bad.write_text(
        bad.read_text(encoding="utf-8") + "import secrets\n", encoding="utf-8"
    )
    assert main(["lint", str(bad), "--no-config", "--baseline", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "secrets" in out or "F001" in out
    assert "2 accepted findings hidden" in out


def test_baseline_is_line_shift_tolerant(tmp_path, capsys):
    bad = write_bad_module(tmp_path)
    baseline = tmp_path / "baseline.json"
    main(["lint", str(bad), "--no-config", "--update-baseline", str(baseline)])
    capsys.readouterr()

    # Prepending harmless lines shifts every finding; fingerprints are
    # line-independent so the baseline still covers them.
    bad.write_text('"""doc."""\nX = 1\n' + bad.read_text(encoding="utf-8"), encoding="utf-8")
    assert main(["lint", str(bad), "--no-config", "--baseline", str(baseline)]) == 0
    capsys.readouterr()
