"""The dataflow layer: scope trees, def-use chains, abstract interpretation."""

from __future__ import annotations

import ast
import textwrap

from repro.devtools.config import LintConfig
from repro.devtools.dataflow import (
    EMPTY,
    DataflowEngine,
    Domain,
    Scope,
    Value,
    build_scope_tree,
    def_use,
    dotted_module,
    iter_code_scopes,
    join_values,
)
from repro.devtools.framework import ModuleContext


def make_ctx(src: str, path: str = "repro/sim/example.py") -> ModuleContext:
    source = textwrap.dedent(src).lstrip("\n")
    return ModuleContext(path, source, ast.parse(source), LintConfig())


# ---------------------------------------------------------------------------
# Scope resolution.
# ---------------------------------------------------------------------------


def test_scope_tree_shapes():
    root = build_scope_tree(
        ast.parse(
            textwrap.dedent(
                """
                def top():
                    def inner():
                        pass

                class Widget:
                    def method(self):
                        pass
                """
            )
        )
    )
    assert root.kind == "module"
    assert root.name == "<module>"
    assert set(root.functions) == {"top"}
    assert set(root.classes) == {"Widget"}

    top = root.children[0]
    assert (top.kind, top.name, top.owner_class) == ("function", "top", None)
    inner = top.children[0]
    assert inner.name == "inner"
    assert inner.parent is top

    widget = root.children[1]
    assert widget.kind == "class"
    method = widget.children[0]
    assert (method.kind, method.name, method.owner_class) == ("function", "method", "Widget")


def test_enclosing_function_walks_up():
    root = build_scope_tree(
        ast.parse("def outer():\n    class Inner:\n        x = 1\n")
    )
    outer = root.children[0]
    inner_class = outer.children[0]
    assert inner_class.enclosing_function() is outer
    assert root.enclosing_function() is None


def test_lookup_local_def_sees_enclosing_scopes():
    root = build_scope_tree(
        ast.parse("def helper():\n    pass\n\ndef caller():\n    helper()\n")
    )
    caller = root.children[1]
    assert caller.lookup_local_def("helper") is root.functions["helper"]
    assert caller.lookup_local_def("missing") is None


def test_iter_code_scopes_skips_class_bodies():
    root = build_scope_tree(
        ast.parse(
            "def f():\n    pass\n\nclass C:\n    def m(self):\n        pass\n"
        )
    )
    kinds = [(s.kind, s.name) for s in iter_code_scopes(root)]
    # The class body executes inline in the module walk; only the module
    # and the two function scopes are independent units of analysis.
    assert kinds == [("module", "<module>"), ("function", "f"), ("function", "m")]


def test_dotted_module():
    assert dotted_module("repro/transfer/session.py") == "repro.transfer.session"
    assert dotted_module("repro/sim/__init__.py") == "repro.sim"


# ---------------------------------------------------------------------------
# Def-use chains.
# ---------------------------------------------------------------------------


def test_def_use_straight_line():
    chains = def_use(make_ctx("x = 1\ny = x + 1\n"))
    assert chains[("x", 2)] == (1,)


def test_def_use_reassignment_kills_old_def():
    chains = def_use(make_ctx("x = 1\nx = 2\ny = x\n"))
    assert chains[("x", 3)] == (2,)


def test_def_use_joins_branches():
    chains = def_use(
        make_ctx(
            """
            def f(flag):
                if flag:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
    )
    # Both branch assignments (lines 3 and 5) may reach the use on line 6.
    assert chains[("x", 6)] == (3, 5)


def test_def_use_loop_carried():
    chains = def_use(
        make_ctx(
            """
            def f(items):
                x = 0
                for item in items:
                    y = x
                    x = item
                return x
            """
        )
    )
    # Inside the loop, ``x`` may come from the init (line 2) or the
    # previous iteration (line 5); the loop-exit use sees both too.
    assert chains[("x", 4)] == (2, 5)
    assert chains[("x", 6)] == (2, 5)


def test_def_use_params_are_definitions():
    chains = def_use(make_ctx("def f(a):\n    return a\n"))
    assert chains[("a", 2)] == (1,)


# ---------------------------------------------------------------------------
# The abstract interpreter, driven by a tiny tracking domain.
# ---------------------------------------------------------------------------


class TagDomain(Domain):
    """Sources values from ``tagged()`` calls; records every attr store."""

    def __init__(self) -> None:
        self.stores: list[tuple[str, frozenset]] = []

    def call(self, node, target, base, args, keywords) -> Value:
        if isinstance(node.func, ast.Name) and node.func.id == "tagged":
            return frozenset({"T"})
        merged = base
        for _, value in args:
            merged = join_values(merged, value)
        return merged

    def store_attr(self, stmt, target, base, value, aug):
        self.stores.append((target.attr, value))


def interpret(src: str) -> TagDomain:
    ctx = make_ctx(src)
    domain = TagDomain()
    DataflowEngine(ctx, domain).run()
    return domain


def test_values_flow_through_assignments():
    domain = interpret("x = tagged()\ny = x\nobj.field = y\n")
    assert domain.stores == [("field", frozenset({"T"}))]


def test_branch_join_is_may_analysis():
    domain = interpret(
        """
        def f(flag, obj):
            if flag:
                x = tagged()
            else:
                x = 0
            obj.field = x
        """
    )
    # The tag *may* reach the store: joins are unions.
    assert domain.stores == [("field", frozenset({"T"}))]


def test_loop_carried_facts_reach_fixpoint():
    domain = interpret(
        """
        def f(items, obj):
            x = 0
            for item in items:
                obj.field = x
                x = tagged()
        """
    )
    # First pass stores EMPTY; the second pass (loop rerun) sees the
    # tag assigned at the end of iteration one.
    assert (("field", frozenset({"T"}))) in domain.stores


def test_calls_merge_argument_values():
    domain = interpret("x = tagged()\ny = wrap(x)\nobj.field = y\n")
    assert domain.stores == [("field", frozenset({"T"}))]


def test_fstrings_propagate():
    domain = interpret('x = tagged()\nobj.field = f"{x}"\n')
    assert domain.stores == [("field", frozenset({"T"}))]


def test_function_scopes_are_isolated():
    # A tag created in one function does not leak into a sibling.
    domain = interpret(
        """
        def a():
            x = tagged()

        def b(obj):
            x = 0
            obj.field = x
        """
    )
    assert domain.stores == [("field", EMPTY)]


def test_augassign_reads_then_stores():
    domain = interpret(
        """
        def f(obj):
            obj.field += tagged()
        """
    )
    # Aug-stores still hit the sink (with the combined value).
    assert len(domain.stores) == 1


def test_tuple_unpack_spreads_value():
    domain = interpret("a, b = tagged(), 0\nobj.field = a\n")
    assert domain.stores == [("field", frozenset({"T"}))]
