"""Positive/negative fixtures for the dataflow checks (F009-F012)."""

from __future__ import annotations

import textwrap

from repro.devtools import LintConfig, lint_source

SIM = "repro/sim/example.py"
TRANSFER = "repro/transfer/example.py"
ANALYSIS = "repro/analysis/example.py"


def run(src: str, path: str = SIM, config: LintConfig | None = None):
    return lint_source(textwrap.dedent(src), path=path, config=config)


def codes(src: str, path: str = SIM, config: LintConfig | None = None):
    return [f.code for f in run(src, path, config)]


def only(code: str) -> LintConfig:
    return LintConfig(select=(code,))


# ---------------------------------------------------------------------------
# F009 — view-aliasing discipline.
# ---------------------------------------------------------------------------

F009 = only("F009")


def test_f009_flags_rebind_of_adopted_array_on_session_param():
    src = """
        def grow(session, extra):
            session.rates = extra
    """
    assert codes(src, TRANSFER, F009) == ["F009"]


def test_f009_flags_rebind_via_annotation():
    src = """
        def grow(sess_obj: TransferSession, extra):
            sess_obj.gap_left = extra
    """
    assert codes(src, TRANSFER, F009) == ["F009"]


def test_f009_flags_rebind_on_self_in_session_class():
    src = """
        class TransferSession:
            def shuffle(self, order):
                self.rates = self.rates[order]
    """
    assert codes(src, TRANSFER, F009) == ["F009"]


def test_f009_flags_rebind_when_iterating_sessions():
    src = """
        def tick(self, dt):
            for s in self.sessions:
                s.stall_left = 0.0
    """
    assert codes(src, TRANSFER, F009) == ["F009"]


def test_f009_flags_session_from_constructor_call():
    src = """
        from repro.transfer.session import TransferSession

        def build(params):
            s = TransferSession(params)
            s.rates = params.initial
            return s
    """
    assert codes(src, TRANSFER, F009) == ["F009"]


def test_f009_allows_inplace_writes():
    src = """
        def throttle(session, cap):
            session.rates[:] = cap
            session.rates[0] = cap
            session.gap_left -= 0.1
            session.stall_left[2:] = 0.0
    """
    assert codes(src, TRANSFER, F009) == []


def test_f009_allows_rebind_inside_detach_points():
    src = """
        class TransferSession:
            def __init__(self, n):
                self.rates = zeros(n)

            def adopt_state(self, rates):
                self.rates = rates

            def detach(self):
                self.rates = self.rates.copy()

            def _resize_workers(self, n):
                self.rates = zeros(n)
    """
    assert codes(src, TRANSFER, F009) == []


def test_f009_ignores_non_adopted_attributes_and_unknown_objects():
    src = """
        def f(session, widget):
            session.name = "a"        # not an adopted field
            widget.rates = [1, 2]     # not provably a session
    """
    assert codes(src, TRANSFER, F009) == []


def test_f009_only_runs_in_alias_scope():
    src = """
        def grow(session, extra):
            session.rates = extra
    """
    assert codes(src, "repro/analysis/example.py", F009) == []


# ---------------------------------------------------------------------------
# F010 — unit propagation.
# ---------------------------------------------------------------------------

F010 = only("F010")


def test_f010_flags_bytes_over_bit_rate():
    src = """
        def eta(size_bytes, rate_bps):
            return size_bytes / rate_bps
    """
    findings = run(src, SIM, F010)
    assert [f.code for f in findings] == ["F010"]
    assert "8x" in findings[0].message


def test_f010_accepts_converted_division():
    src = """
        from repro import units

        def eta(size_bytes, rate_bps):
            return size_bytes / units.bytes_per_second(rate_bps)
    """
    assert codes(src, SIM, F010) == []


def test_f010_flags_mixed_dimension_addition():
    src = """
        def f(dt, rate_bps):
            return dt + rate_bps
    """
    assert codes(src, SIM, F010) == ["F010"]


def test_f010_flags_mixed_scale_addition():
    src = """
        def f(delay_ms, dt):
            return delay_ms + dt
    """
    assert codes(src, SIM, F010) == ["F010"]


def test_f010_flags_cross_unit_comparison():
    src = """
        def f(dt, size_bytes):
            if dt > size_bytes:
                return 1
    """
    assert codes(src, SIM, F010) == ["F010"]


def test_f010_tags_flow_through_assignment():
    src = """
        def f(rate_bps, dt):
            r = rate_bps
            window = dt
            return r + window
    """
    assert codes(src, SIM, F010) == ["F010"]


def test_f010_flags_double_conversion():
    src = """
        from repro.units import gbps

        def f():
            return gbps(gbps(10))
    """
    assert codes(src, SIM, F010) == ["F010"]


def test_f010_flags_raw_literal_into_unit_keyword():
    src = """
        def f(configure):
            configure(timeout_s=5_000_000)
    """
    assert codes(src, SIM, F010) == ["F010"]


def test_f010_allows_same_unit_arithmetic():
    src = """
        def f(dt, rtt, size_bytes, chunk_bytes):
            total = dt + rtt
            left = size_bytes - chunk_bytes
            ratio = size_bytes / chunk_bytes
            return total, left, ratio
    """
    assert codes(src, SIM, F010) == []


def test_f010_dividing_by_unknown_scalar_keeps_unit():
    src = """
        def f(rate_bps, n, dt):
            share = rate_bps / n
            return share + dt
    """
    assert codes(src, SIM, F010) == ["F010"]


def test_f010_multiplication_algebra_time_times_rate():
    src = """
        def f(dt, rate_bps, size_bytes):
            moved_bits = dt * rate_bps
            return moved_bits + size_bytes
    """
    # bits + bytes: the algebra produced a bit size and the add mixes it.
    assert codes(src, SIM, F010) == ["F010"]


def test_f010_runs_in_extra_scope_but_not_elsewhere():
    src = """
        def f(dt, rate_bps):
            return dt + rate_bps
    """
    assert codes(src, "repro/obs/example.py", F010) == ["F010"]
    assert codes(src, "repro/analysis/example.py", F010) == []


# ---------------------------------------------------------------------------
# F011 — RNG provenance.
# ---------------------------------------------------------------------------

F011 = only("F011")


def test_f011_flags_hardcoded_seed():
    src = """
        import numpy as np
        rng = np.random.default_rng(42)
    """
    assert codes(src, SIM, F011) == ["F011"]


def test_f011_flags_literal_flowing_through_variable():
    src = """
        import numpy as np

        def f():
            chosen = 1234
            return np.random.default_rng(chosen)
    """
    assert codes(src, SIM, F011) == ["F011"]


def test_f011_flags_literal_through_int_and_seedsequence():
    src = """
        import numpy as np

        def f():
            return np.random.SeedSequence(int(7))
    """
    assert codes(src, SIM, F011) == ["F011"]


def test_f011_accepts_derive_seed():
    src = """
        import numpy as np
        from repro.runner.seeds import derive_seed

        def f(seed, name):
            return np.random.default_rng(derive_seed(seed, name))
    """
    assert codes(src, SIM, F011) == []


def test_f011_accepts_caller_supplied_seed_params():
    src = """
        import numpy as np

        def f(seed, worker_seed):
            a = np.random.default_rng(seed)
            b = np.random.default_rng(worker_seed * 2 + 1)
            return a, b
    """
    assert codes(src, SIM, F011) == []


def test_f011_accepts_seed_attributes():
    src = """
        import numpy as np

        def f(cfg):
            return np.random.default_rng(cfg.seed)
    """
    assert codes(src, SIM, F011) == []


def test_f011_flags_rngstreams_with_literal():
    src = """
        from repro.sim.rng import RngStreams
        streams = RngStreams(123)
    """
    assert codes(src, SIM, F011) == ["F011"]


def test_f011_accepts_rngstreams_from_seed():
    src = """
        from repro.sim.rng import RngStreams

        def f(seed):
            return RngStreams(seed)
    """
    assert codes(src, SIM, F011) == []


def test_f011_unknown_values_do_not_flag():
    src = """
        import numpy as np

        def f(source):
            return np.random.default_rng(source())
    """
    assert codes(src, SIM, F011) == []


def test_f011_only_runs_in_sim_scope():
    src = """
        import numpy as np
        rng = np.random.default_rng(42)
    """
    assert codes(src, "repro/analysis/example.py", F011) == []


# ---------------------------------------------------------------------------
# F012 — environment taint.
# ---------------------------------------------------------------------------

F012 = only("F012")


def test_f012_flags_wall_clock_stored_into_sim_state():
    src = """
        import time

        class Engine:
            def poke(self):
                self._jitter = time.time() % 1.0
    """
    assert codes(src, SIM, F012) == ["F012"]


def test_f012_flags_environ_reaching_sim_element():
    src = """
        import os

        def f(table):
            table["host"] = os.environ["HOST"]
    """
    assert codes(src, SIM, F012) == ["F012"]


def test_f012_flags_tainted_argument_into_sim_call():
    src = """
        import time
        from repro.sim.engine import schedule

        def f():
            wall = time.perf_counter()
            schedule(wall * 2)
    """
    assert codes(src, ANALYSIS, F012) == ["F012"]


def test_f012_flags_taint_through_fstring_keyword():
    src = """
        import os
        from repro.transfer.session import TransferSession

        def f():
            tag = f"run-{os.getpid()}"
            return TransferSession(name=tag)
    """
    assert codes(src, ANALYSIS, F012) == ["F012"]


def test_f012_allows_profiling_that_stays_in_reports():
    src = """
        import time

        def f(report):
            wall = time.perf_counter()
            report["wall_s"] = wall
            return report
    """
    assert codes(src, ANALYSIS, F012) == []


def test_f012_allows_untainted_sim_inputs():
    src = """
        from repro.sim.engine import schedule

        def f(dt):
            schedule(dt + 1.0)
    """
    assert codes(src, ANALYSIS, F012) == []


def test_f012_attribute_reads_keep_taint():
    src = """
        import os

        def f(engine):
            st = os.stat("data.bin")
            engine.offset = st.st_size
    """
    assert codes(src, SIM, F012) == ["F012"]
