"""Framework-level behaviour: registry, scoping, suppression, errors."""

from __future__ import annotations

import ast

import pytest

from repro.devtools import REGISTRY, Check, LintConfig, lint_source, register
from repro.devtools.framework import ImportMap, module_key, suppressions

SIM = "repro/sim/example.py"


def codes(findings):
    return [f.code for f in findings]


# ---------------------------------------------------------------------------
# Registry.
# ---------------------------------------------------------------------------


def test_all_twelve_checks_registered():
    assert set(REGISTRY) == {
        "F001", "F002", "F003", "F004", "F005", "F006", "F007", "F008",
        "F009", "F010", "F011", "F012",
    }


def test_registry_rejects_duplicate_codes():
    class Impostor(Check):
        code = "F001"

    with pytest.raises(ValueError, match="duplicate"):
        register(Impostor)


def test_checks_have_metadata():
    for code, cls in REGISTRY.items():
        assert cls.code == code
        assert cls.name
        assert cls.description


# ---------------------------------------------------------------------------
# module_key + scoping.
# ---------------------------------------------------------------------------


def test_module_key_strips_leading_directories():
    assert module_key("/root/repo/src/repro/sim/engine.py") == "repro/sim/engine.py"
    assert module_key("src/repro/units.py") == "repro/units.py"


def test_module_key_passes_through_foreign_paths():
    assert module_key("somewhere/else.py") == "somewhere/else.py"


def test_out_of_scope_module_is_not_checked():
    # experiments/ is presentation-layer: F001 does not apply there.
    src = "import random\n"
    assert lint_source(src, path="repro/experiments/plots.py") == []
    assert codes(lint_source(src, path=SIM)) == ["F001"]


# ---------------------------------------------------------------------------
# ImportMap.
# ---------------------------------------------------------------------------


def resolve(src: str, expr: str) -> str | None:
    tree = ast.parse(src + "\n" + expr)
    node = tree.body[-1].value
    return ImportMap(tree).resolve(node)


def test_importmap_resolves_aliases():
    assert resolve("import numpy as np", "np.random.rand") == "numpy.random.rand"
    assert resolve("import time", "time.perf_counter") == "time.perf_counter"
    assert (
        resolve("from numpy.random import default_rng", "default_rng")
        == "numpy.random.default_rng"
    )


def test_importmap_ignores_unimported_names():
    # A *local* variable called ``random`` is not the stdlib module.
    assert resolve("x = 1", "random.random") is None


# ---------------------------------------------------------------------------
# Suppression comments.
# ---------------------------------------------------------------------------


def test_same_line_suppression():
    src = "import time\nt = time.time()  # repro: lint-ok[F001]: test fixture\n"
    assert lint_source(src, path=SIM) == []


def test_suppression_requires_matching_code():
    src = "import time\nt = time.time()  # repro: lint-ok[F004]\n"
    assert codes(lint_source(src, path=SIM)) == ["F001"]


def test_bare_suppression_covers_all_codes():
    src = "import time\nt = time.time()  # repro: lint-ok\n"
    assert lint_source(src, path=SIM) == []


def test_standalone_comment_suppresses_next_statement():
    src = (
        "import time\n"
        "# repro: lint-ok[F001]: justification on its own line\n"
        "t = time.time()\n"
    )
    assert lint_source(src, path=SIM) == []


def test_suppression_on_any_line_of_multiline_statement():
    src = (
        "import time\n"
        "t = max(\n"
        "    time.time(),\n"
        "    0.0,\n"
        ")  # repro: lint-ok[F001]\n"
    )
    assert lint_source(src, path=SIM) == []


def test_file_level_suppression():
    src = (
        "# repro: lint-ok-file[F001]: whole module is a profiling fixture\n"
        "import time\n"
        "a = time.time()\n"
        "b = time.monotonic()\n"
    )
    assert lint_source(src, path=SIM) == []


def test_suppressions_parser_output():
    file_codes, line_codes = suppressions(
        "# repro: lint-ok-file[F001]\nx = 1  # repro: lint-ok[F003, F004]\n"
    )
    assert file_codes == {"F001"}
    assert line_codes[2] == {"F003", "F004"}


# ---------------------------------------------------------------------------
# select / ignore, syntax errors.
# ---------------------------------------------------------------------------


def test_select_limits_checks():
    src = "import random\nx = 1 * 10**9\n"
    config = LintConfig(select=("F004",))
    assert codes(lint_source(src, path=SIM, config=config)) == ["F004"]


def test_ignore_skips_checks():
    src = "import random\nx = 1 * 10**9\n"
    config = LintConfig(ignore=("F001",))
    assert codes(lint_source(src, path=SIM, config=config)) == ["F004"]


def test_syntax_error_becomes_f000():
    findings = lint_source("def broken(:\n", path=SIM)
    assert codes(findings) == ["F000"]
    assert findings[0].line == 1


def test_findings_are_sorted_and_carry_location():
    src = "x = 3 * 10**9\nimport random\n"
    findings = lint_source(src, path=SIM)
    assert codes(findings) == ["F004", "F001"]  # line order, not code order
    assert [f.line for f in findings] == [1, 2]
    rendered = findings[1].render()
    assert rendered.startswith(f"{SIM}:2:")
    assert "F001" in rendered
