"""The zero-findings gate over the real tree, plus mutation canaries.

The gate pins the repository invariant: ``repro lint src/repro`` is
clean.  The mutation tests prove the gate has teeth — deliberately
planting a violation in real source makes the linter report it at the
right place.
"""

from __future__ import annotations

from repro.devtools import lint_paths, lint_source, load_config
from repro.devtools.framework import iter_python_files


def test_src_tree_is_lint_clean(package_root):
    config = load_config(package_root)
    findings = lint_paths([package_root], config=config)
    assert findings == [], "\n" + "\n".join(f.render() for f in findings)


def test_every_source_file_is_visited(package_root):
    config = load_config(package_root)
    visited = set(iter_python_files([package_root], config))
    on_disk = set(package_root.rglob("*.py"))
    assert visited == on_disk


def test_planted_random_call_in_engine_is_caught(package_root):
    engine = package_root / "sim" / "engine.py"
    source = engine.read_text(encoding="utf-8")
    config = load_config(package_root)
    baseline = lint_source(source, path=str(engine), config=config)
    assert baseline == []

    lines = source.splitlines(keepends=True)
    mutated = "".join(lines) + "\nimport random\n_JITTER = random.random()\n"
    findings = lint_source(mutated, path=str(engine), config=config)
    assert [f.code for f in findings] == ["F001", "F001"]
    # The import lands two lines past the original file, the call three.
    assert [f.line for f in findings] == [len(lines) + 2, len(lines) + 3]


def test_planted_magnitude_literal_in_presets_is_caught(package_root):
    presets = package_root / "testbeds" / "presets.py"
    source = presets.read_text(encoding="utf-8")
    config = load_config(package_root)
    assert lint_source(source, path=str(presets), config=config) == []

    mutated = source + "\n_RAW_RATE = 5 * 10**9\n"
    findings = lint_source(mutated, path=str(presets), config=config)
    assert [f.code for f in findings] == ["F004"]
    assert findings[0].line == source.count("\n") + 2


def test_planted_unprotected_topology_write_is_caught(package_root):
    executor = package_root / "transfer" / "executor.py"
    source = executor.read_text(encoding="utf-8")
    config = load_config(package_root)
    assert lint_source(source, path=str(executor), config=config) == []

    mutated = source + (
        "\n\ndef _sneak(net, session):\n"
        "    net.sessions.append(session)\n"
    )
    findings = lint_source(mutated, path=str(executor), config=config)
    assert [f.code for f in findings] == ["F005"]


def test_planted_random_call_in_fault_injector_is_caught(package_root):
    # faults/ is part of the deterministic sim scope: chaos draws must
    # come from named RNG streams, never the stdlib.
    injector = package_root / "faults" / "injector.py"
    source = injector.read_text(encoding="utf-8")
    config = load_config(package_root)
    assert lint_source(source, path=str(injector), config=config) == []

    mutated = source + "\nimport random\n_JITTER = random.random()\n"
    findings = lint_source(mutated, path=str(injector), config=config)
    assert [f.code for f in findings] == ["F001", "F001"]


def test_planted_reentrant_callback_in_fault_injector_is_caught(package_root):
    # A fault handler that re-enters the engine run loop would deadlock
    # the simulation; F006 must cover the faults package.
    injector = package_root / "faults" / "injector.py"
    source = injector.read_text(encoding="utf-8")
    config = load_config(package_root)
    assert lint_source(source, path=str(injector), config=config) == []

    mutated = source + (
        "\n\ndef _bad_arm(engine):\n"
        "    engine.schedule_in(1.0, lambda: engine.run_for(5.0))\n"
    )
    findings = lint_source(mutated, path=str(injector), config=config)
    assert [f.code for f in findings] == ["F006"]

def test_planted_mutable_state_in_experiment_is_caught(package_root):
    module = package_root / "experiments" / "fig07_convergence.py"
    source = module.read_text(encoding="utf-8")
    config = load_config(package_root)
    assert lint_source(source, path=str(module), config=config) == []

    mutated = source + "\n_memo = {}\n"
    findings = lint_source(mutated, path=str(module), config=config)
    assert [f.code for f in findings] == ["F007"]
    assert findings[0].line == source.count("\n") + 2


def test_planted_lambda_task_in_experiment_is_caught(package_root):
    # A lambda handed to the task factory cannot be rebuilt in a pool
    # worker; F007 must flag it at the call site.
    module = package_root / "experiments" / "fig09_gd_networks.py"
    source = module.read_text(encoding="utf-8")
    config = load_config(package_root)
    assert lint_source(source, path=str(module), config=config) == []

    mutated = source + "\n_BAD = task(lambda: 0)\n"
    findings = lint_source(mutated, path=str(module), config=config)
    assert [f.code for f in findings] == ["F007"]


def test_planted_undocumented_public_def_in_obs_is_caught(package_root):
    # obs/ is API surface: a public function without a docstring must
    # trip F008 at its definition line.
    tracer = package_root / "obs" / "tracer.py"
    source = tracer.read_text(encoding="utf-8")
    config = load_config(package_root)
    assert lint_source(source, path=str(tracer), config=config) == []

    mutated = source + "\n\ndef sneak_emit(event):\n    return event\n"
    findings = lint_source(mutated, path=str(tracer), config=config)
    assert [f.code for f in findings] == ["F008"]
    assert findings[0].line == source.count("\n") + 3


def test_planted_unitless_duration_in_faults_is_caught(package_root):
    # A physical quantity documented without its unit must trip F008.
    plan = package_root / "faults" / "plan.py"
    source = plan.read_text(encoding="utf-8")
    config = load_config(package_root)
    assert lint_source(source, path=str(plan), config=config) == []

    mutated = source + (
        '\n\ndef sneak_outage(duration):\n    """Take the link down for a while."""\n'
    )
    findings = lint_source(mutated, path=str(plan), config=config)
    assert [f.code for f in findings] == ["F008"]


def test_planted_session_array_rebind_is_caught(package_root):
    # The F009 acceptance canary: a deliberate rebind of an adopted
    # session array in real source must be flagged at the right line.
    session = package_root / "transfer" / "session.py"
    source = session.read_text(encoding="utf-8")
    config = load_config(package_root)
    assert lint_source(source, path=str(session), config=config) == []

    mutated = source + (
        "\n\ndef _sneak_grow(session, extra):\n"
        "    session.rates = np.concatenate([session.rates, extra])\n"
    )
    findings = lint_source(mutated, path=str(session), config=config)
    assert [f.code for f in findings] == ["F009"]
    assert findings[0].line == source.count("\n") + 4


def test_planted_unit_mismatch_in_tcp_is_caught(package_root):
    # F010: a bytes/bps division (the 8x bug) planted in the TCP model.
    tcp = package_root / "network" / "tcp.py"
    source = tcp.read_text(encoding="utf-8")
    config = load_config(package_root)
    assert lint_source(source, path=str(tcp), config=config) == []

    mutated = source + (
        "\n\ndef _sneak_eta(size_bytes, rate_bps):\n"
        "    return size_bytes / rate_bps\n"
    )
    findings = lint_source(mutated, path=str(tcp), config=config)
    assert [f.code for f in findings] == ["F010"]


def test_planted_hardcoded_seed_in_rng_is_caught(package_root):
    # F011: F001 accepts any seeded generator, so a literal seed must be
    # caught by the provenance check instead.
    rng = package_root / "sim" / "rng.py"
    source = rng.read_text(encoding="utf-8")
    config = load_config(package_root)
    assert lint_source(source, path=str(rng), config=config) == []

    mutated = source + "\n_AMBIENT = np.random.default_rng(1234)\n"
    findings = lint_source(mutated, path=str(rng), config=config)
    assert [f.code for f in findings] == ["F011"]
    assert findings[0].line == source.count("\n") + 2


def test_planted_random_tiebreak_in_control_plane_is_caught(package_root):
    # The control plane's scheduler tie-breaks (ring order, job id) must
    # stay deterministic; a stdlib-random pick planted in real source
    # has to trip F001 — service/ is part of the sim scope.
    control = package_root / "service" / "control.py"
    source = control.read_text(encoding="utf-8")
    config = load_config(package_root)
    assert lint_source(source, path=str(control), config=config) == []

    mutated = source + (
        "\nimport random\n\n"
        "def _sneak_pick(plane):\n"
        "    return random.choice(plane.queued())\n"
    )
    findings = lint_source(mutated, path=str(control), config=config)
    assert [f.code for f in findings] == ["F001", "F001"]
    assert findings[0].line == source.count("\n") + 2


def test_planted_reentrant_dispatch_in_control_plane_is_caught(package_root):
    # A dispatch hook that re-enters the run loop would deadlock the
    # engine mid-pump; F006 must cover the control plane too.
    control = package_root / "service" / "control.py"
    source = control.read_text(encoding="utf-8")
    config = load_config(package_root)
    assert lint_source(source, path=str(control), config=config) == []

    mutated = source + (
        "\n\ndef _bad_wait(engine):\n"
        "    engine.schedule_in(1.0, lambda: engine.run_for(1.0))\n"
    )
    findings = lint_source(mutated, path=str(control), config=config)
    assert [f.code for f in findings] == ["F006"]


def test_planted_wall_clock_store_in_engine_is_caught(package_root):
    # F012: wall-clock taint flowing into engine state.  F001 also flags
    # the raw read; the taint check must flag the *store*.
    engine = package_root / "sim" / "engine.py"
    source = engine.read_text(encoding="utf-8")
    config = load_config(package_root)
    assert lint_source(source, path=str(engine), config=config) == []

    mutated = source + (
        "\nimport time\n\n"
        "def _sneak_jitter(engine):\n"
        "    engine._jitter = time.time() % 1.0\n"
    )
    findings = lint_source(mutated, path=str(engine), config=config)
    assert sorted(f.code for f in findings) == ["F001", "F012"]
