"""Docs cross-reference checker."""

from __future__ import annotations

from pathlib import Path

from repro.devtools.linkcheck import check_document, check_tree, main

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestCheckDocument:
    def make_repo(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "real.md").write_text("# real\n")
        (tmp_path / "src" / "repro" / "sim").mkdir(parents=True)
        (tmp_path / "src" / "repro" / "sim" / "engine.py").write_text("")
        return tmp_path

    def test_resolving_references_pass(self, tmp_path):
        root = self.make_repo(tmp_path)
        doc = root / "README.md"
        doc.write_text(
            "See [real](docs/real.md) and `src/repro/sim/engine.py`, "
            "package-relative `sim/engine.py`, and https://example.com.\n"
        )
        assert check_document(doc, root) == []

    def test_broken_markdown_link_is_reported(self, tmp_path):
        root = self.make_repo(tmp_path)
        doc = root / "README.md"
        doc.write_text("See [gone](docs/missing.md).\n")
        (finding,) = check_document(doc, root)
        assert "docs/missing.md" in finding

    def test_broken_backtick_path_is_reported(self, tmp_path):
        root = self.make_repo(tmp_path)
        doc = root / "README.md"
        doc.write_text("See `src/repro/gone.py`.\n")
        (finding,) = check_document(doc, root)
        assert "src/repro/gone.py" in finding

    def test_anchors_and_bare_names_are_ignored(self, tmp_path):
        root = self.make_repo(tmp_path)
        doc = root / "README.md"
        # Anchor suffix stripped; dotted module names and extensionless
        # prose like `a/b` never match the path pattern.
        doc.write_text(
            "See [real](docs/real.md#section), `repro.sim.engine`, a `n/p` ratio.\n"
        )
        assert check_document(doc, root) == []

    def test_missing_document_is_a_finding(self, tmp_path):
        assert check_tree(tmp_path, ("ABSENT.md",)) == ["ABSENT.md: document missing"]


class TestRepoDocs:
    def test_the_repos_own_docs_have_no_broken_references(self, capsys):
        # The same invariant the CI docs job enforces.
        assert main(["--root", str(REPO_ROOT)]) == 0
