"""[tool.repro-lint] configuration loading."""

from __future__ import annotations

import pytest

from repro.devtools.config import (
    LintConfig,
    config_from_table,
    find_pyproject,
    load_config,
)

try:
    import tomllib  # noqa: F401
except ImportError:  # pragma: no cover
    tomllib = None


def test_defaults_cover_repo_layout():
    config = LintConfig()
    assert "repro/sim/" in config.sim_scope
    assert "repro/units.py" in config.unit_modules
    assert "repro/transfer/executor.py" in config.topology_modules
    assert "_dirty" in config.dirty_attrs


def test_with_coerces_lists_to_tuples():
    config = LintConfig().with_(select=["F001"], exclude=["vendored/"])
    assert config.select == ("F001",)
    assert config.exclude == ("vendored/",)


def test_config_from_table_maps_dashes_and_ignores_unknown_keys():
    config = config_from_table(
        {
            "sim-scope": ["repro/sim/"],
            "topology-fields": ["sessions"],
            "some-future-knob": True,
        }
    )
    assert config.sim_scope == ("repro/sim/",)
    assert config.topology_fields == ("sessions",)


def test_find_pyproject_walks_upward(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[tool.repro-lint]\n")
    nested = tmp_path / "src" / "repro" / "sim"
    nested.mkdir(parents=True)
    assert find_pyproject(nested) == tmp_path / "pyproject.toml"


def test_load_config_defaults_when_no_pyproject(tmp_path):
    assert load_config(tmp_path) == LintConfig()


@pytest.mark.skipif(tomllib is None, reason="no TOML parser available")
def test_load_config_reads_table(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro-lint]\n"
        'sim-scope = ["repro/sim/"]\n'
        'ignore = ["F003"]\n'
    )
    config = load_config(tmp_path)
    assert config.sim_scope == ("repro/sim/",)
    assert config.ignore == ("F003",)


@pytest.mark.skipif(tomllib is None, reason="no TOML parser available")
def test_load_config_survives_malformed_toml(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[tool.repro-lint\n")
    assert load_config(tmp_path) == LintConfig()


@pytest.mark.skipif(tomllib is None, reason="no TOML parser available")
def test_repo_pyproject_parses_into_a_config(repo_root):
    config = load_config(repo_root)
    assert "repro/sim/" in config.sim_scope
    assert "repro/transfer/session.py" in config.topology_modules
