"""Tests for the shared experiment plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.globus import GlobusController
from repro.core.agent import FalconAgent
from repro.core.bayesian import BayesianOptimizer
from repro.core.gradient_descent import GradientDescent
from repro.core.hill_climbing import HillClimbing
from repro.experiments.common import (
    launch_controller,
    launch_falcon,
    make_context,
    optimizer_factory,
    retire_at,
    steady_window,
    sweep_concurrency,
    window_mean_bps,
)
from repro.testbeds.presets import emulab_fig4, hpclab
from repro.transfer.dataset import uniform_dataset


class TestContext:
    def test_contexts_are_isolated(self):
        a = make_context(seed=1)
        b = make_context(seed=1)
        assert a.engine is not b.engine
        assert a.network is not b.network

    def test_named_rngs_deterministic(self):
        a = make_context(seed=5).rng("x").random(4)
        b = make_context(seed=5).rng("x").random(4)
        assert np.allclose(a, b)


class TestOptimizerFactory:
    def test_kinds(self):
        assert isinstance(optimizer_factory("hc", hi=8), HillClimbing)
        assert isinstance(optimizer_factory("gd", hi=8), GradientDescent)
        assert isinstance(
            optimizer_factory("bo", hi=8, rng=np.random.default_rng(0)), BayesianOptimizer
        )

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            optimizer_factory("simulated-annealing", hi=8)

    def test_domain_passed_through(self):
        assert optimizer_factory("gd", hi=23).hi == 23


class TestSweep:
    def test_points_cover_grid(self):
        pts = sweep_concurrency(emulab_fig4, (1, 5, 10), measure_time=5.0, warmup=4.0)
        assert [p.concurrency for p in pts] == [1, 5, 10]

    def test_monotone_below_saturation(self):
        pts = sweep_concurrency(emulab_fig4, (1, 4, 8), measure_time=5.0, warmup=4.0)
        tputs = [p.throughput_bps for p in pts]
        assert tputs == sorted(tputs)


class TestLaunchers:
    def test_launch_falcon_defaults(self):
        ctx = make_context(0)
        launched = launch_falcon(ctx, hpclab())
        assert isinstance(launched.controller, FalconAgent)
        assert launched.session in ctx.network.sessions

    def test_launch_falcon_deferred_start(self):
        ctx = make_context(0)
        launched = launch_falcon(ctx, hpclab(), start_time=15.0)
        assert launched.session not in ctx.network.sessions
        ctx.engine.run_for(20.0)
        assert launched.session in ctx.network.sessions

    def test_launch_controller(self):
        ctx = make_context(0)
        ds = uniform_dataset(10)
        launched = launch_controller(
            ctx, hpclab(), lambda s: GlobusController(session=s, dataset=ds), dataset=ds
        )
        ctx.engine.run_for(10.0)
        assert launched.session.params.concurrency == 3  # Globus large-file tier

    def test_retire_at_removes_session(self):
        ctx = make_context(0)
        launched = launch_falcon(ctx, hpclab())
        retire_at(ctx, launched, 20.0)
        ctx.engine.run_for(30.0)
        assert not launched.session.active
        assert launched.session not in ctx.network.sessions

    def test_retire_idempotent_when_finished(self):
        from repro.units import MB

        ctx = make_context(0)
        launched = launch_falcon(
            ctx, hpclab(), dataset=uniform_dataset(2, 1 * MB), repeat=False
        )
        retire_at(ctx, launched, 60.0)  # session will already be done
        ctx.engine.run_for(90.0)
        assert not launched.session.active


class TestWindows:
    def test_window_mean(self):
        ctx = make_context(0)
        launched = launch_falcon(ctx, hpclab())
        ctx.engine.run_for(60.0)
        mean = window_mean_bps(launched.trace, 30.0, 60.0)
        assert mean > 0

    def test_steady_window_respects_start(self):
        ctx = make_context(0)
        launched = launch_falcon(ctx, hpclab(), start_time=100.0)
        t0, t1 = steady_window(launched, end=120.0, span=60.0)
        assert t0 == 100.0
        assert t1 == 120.0
