"""Smoke tests for every experiment module (short horizons).

These verify each figure's ``run()`` executes, returns a well-formed
result, and renders; the full-horizon shape assertions live in
``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig01_concurrency,
    fig02_state_of_art,
    fig04_overhead,
    fig06_utility_forms,
    fig07_convergence,
    fig09_gd_networks,
    fig10_bo_networks,
    fig11_gd_competition,
    fig13_concurrency_traces,
    table1_testbeds,
)


class TestTable1:
    def test_rows_and_render(self):
        result = table1_testbeds.run()
        assert len(result.rows) == 4
        text = result.render()
        for name, *_ in table1_testbeds.PAPER_TABLE1:
            assert name in text

    def test_matches_paper_columns(self):
        result = table1_testbeds.run()
        by_name = {r.name: r for r in result.rows}
        for name, _storage, _bw, rtt_ms, bottleneck in table1_testbeds.PAPER_TABLE1:
            assert by_name[name].rtt * 1e3 == pytest.approx(rtt_ms)
            assert by_name[name].bottleneck == bottleneck


class TestSweepFigures:
    def test_fig4_short(self):
        result = fig04_overhead.run(measure_time=6.0)
        assert result.saturation_concurrency == 10
        assert result.loss_at(32) > result.loss_at(4)
        assert "Loss" in result.render()

    def test_fig1_curve_shape(self):
        pts = fig01_concurrency.sweep_concurrency(
            fig01_concurrency._networks()["HPCLab"], (1, 8, 16), measure_time=6.0
        )
        assert pts[1].throughput_bps > 3 * pts[0].throughput_bps


class TestAnalyticFigures:
    def test_fig6_estimated_peaks(self):
        p001, p002, pnl = fig06_utility_forms.estimated_peaks()
        assert p002 < p001  # stronger linear penalty peaks earlier
        assert abs(pnl - 48) <= 2
        assert abs(p002 - 25) <= 2


class TestControllerFigures:
    def test_fig7_short(self):
        result = fig07_convergence.run(duration=120.0)
        assert set(result.runs) == {"hc", "gd", "bo"}
        assert result.runs["gd"].steady_throughput_bps > 0
        assert "Algorithm" in result.render()

    def test_fig9_single_network(self):
        result = fig09_gd_networks.run_networks("gd", seed=1, duration=90.0)
        assert set(result.runs) == set(fig09_gd_networks.NETWORKS)
        for run in result.runs.values():
            assert 0 < run.steady_throughput_bps <= run.achievable_bps * 1.05

    def test_fig10_is_bo(self):
        result = fig10_bo_networks.run(seed=1, duration=60.0)
        assert result.algorithm == "BO"

    def test_fig11_phases(self):
        result = fig11_gd_competition.run(seed=1, phase=60.0)
        labels = [p.label for p in result.phases]
        assert labels == ["one", "two", "three", "reclaim"]
        assert len(result.phase("three").shares_bps) == 3
        assert "Jain" in result.render()

    def test_fig13_phase_structure(self):
        result = fig13_concurrency_traces.run(seed=1, phase=60.0)
        assert result.saturation_concurrency == 50
        assert result.phase("two").total_concurrency > 0

    def test_fig2_render(self):
        result = fig02_state_of_art.run(seed=1, settle=60.0)
        assert result.globus_bps > 0
        assert result.harp_bps > result.globus_bps
        assert "Globus" in result.render()
