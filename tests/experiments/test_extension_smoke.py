"""Smoke tests for the extension experiments (short horizons)."""

from __future__ import annotations

import pytest

from repro.experiments import bbr_extension, overhead, related_work, robustness


class TestRelatedWork:
    def test_runs_all_tuners(self):
        result = related_work.run(seed=1, duration=120.0)
        assert set(result.runs) == {
            "falcon-gd",
            "falcon-bo",
            "pcp (HC)",
            "gridftp-apt (GSS)",
            "probdata (SA)",
        }
        assert "Tuner" in result.render()

    def test_all_make_progress(self):
        result = related_work.run(seed=1, duration=120.0)
        for run in result.runs.values():
            assert run.steady_throughput_bps > 0


class TestBbr:
    def test_result_structure(self):
        result = bbr_extension.run(seed=1, duration=120.0)
        assert result.single_cubic_bps > 0
        assert result.single_bbr_bps > 0
        assert result.mixed_bbr_bps > 0
        assert 0 < result.bbr_share_ratio < 10
        assert "competing pair" in result.render()


class TestRobustness:
    def test_phases_measured(self):
        result = robustness.run(seed=1, cycle=60.0, cycles=2)
        for run in result.runs.values():
            assert run.on_throughput_bps > 0
            assert run.off_throughput_bps > 0
        static = result.runs["static-20"]
        assert static.on_concurrency == pytest.approx(20.0)


class TestOverhead:
    def test_accounting_consistent(self):
        result = overhead.run(seed=1, duration=120.0)
        for run in result.runs.values():
            assert run.goodput_bytes > 0
            assert run.process_seconds > 0
            assert 0 <= run.loss_overhead < 0.3
        fixed = result.runs["fixed-32"]
        # 32 workers x two end-host processes each over the horizon.
        assert fixed.process_seconds == pytest.approx(2 * 32 * 120.0, rel=0.02)
